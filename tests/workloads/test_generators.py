"""Tests for the synthetic, row-vs-column, and TPC-H workload generators."""

import pytest

from repro import Database
from repro.storage.constants import BlockState
from repro.workloads.rowcol import make_table, run_inserts, run_updates
from repro.workloads.synthetic import SyntheticConfig, build_synthetic_table
from repro.workloads.tpch import (
    LINEITEM_COLUMNS,
    LineitemGenerator,
    TpchConfig,
)


class TestSynthetic:
    def test_emptiness_fraction(self):
        db = Database(logging_enabled=False)
        config = SyntheticConfig(n_blocks=3, percent_empty=25, seed=1)
        info = build_synthetic_table(db, "s", config)
        total = info.table.layout.num_slots * 3
        live = info.table.live_tuple_count()
        assert live == total - int(total * 0.25)

    def test_zero_empty(self):
        db = Database(logging_enabled=False)
        info = build_synthetic_table(
            db, "s", SyntheticConfig(n_blocks=1, percent_empty=0)
        )
        assert info.table.live_tuple_count() == info.table.layout.num_slots

    def test_column_mixes(self):
        for mix, expected_varlen in (("mixed", 1), ("fixed", 0), ("varlen", 2)):
            db = Database(logging_enabled=False)
            info = build_synthetic_table(
                db, "s", SyntheticConfig(n_blocks=1, percent_empty=5, column_mix=mix)
            )
            assert len(info.table.layout.varlen_column_ids()) == expected_varlen

    def test_varlen_length_bounds(self):
        db = Database(logging_enabled=False)
        info = build_synthetic_table(
            db, "s", SyntheticConfig(n_blocks=1, percent_empty=0, varlen_low=12, varlen_high=24)
        )
        reader = db.begin()
        for _, row in info.table.scan(reader, [1]):
            assert 12 <= len(row.get(1)) <= 24

    def test_transformable(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = build_synthetic_table(
            db, "s", SyntheticConfig(n_blocks=2, percent_empty=10)
        )
        db.freeze_table("s")
        assert info.table.block_states()[BlockState.FROZEN] >= 1


class TestRowCol:
    def test_row_model_single_wide_column(self):
        db = Database(logging_enabled=False)
        info = make_table(db, "r", "row", 8)
        assert info.table.layout.num_columns == 1
        assert info.table.layout.attr_sizes == [64]

    def test_column_model_n_columns(self):
        db = Database(logging_enabled=False)
        info = make_table(db, "c", "column", 8)
        assert info.table.layout.num_columns == 8
        assert info.table.layout.attr_sizes == [8] * 8

    def test_insert_measurement(self):
        db = Database(logging_enabled=False)
        result = run_inserts(db, "column", 4, 500)
        assert result.operations == 500
        assert result.ops_per_sec > 0

    def test_update_measurement(self):
        db = Database(logging_enabled=False)
        result = run_updates(db, "row", 4, 500)
        assert result.operations == 500
        assert result.model == "row"

    def test_row_data_roundtrip(self):
        db = Database(logging_enabled=False)
        info = make_table(db, "r", "row", 2)
        with db.transaction() as txn:
            slot = info.table.insert(txn, {0: b"A" * 8 + b"B" * 8})
        reader = db.begin()
        assert info.table.select(reader, slot).get(0) == b"A" * 8 + b"B" * 8


class TestTpch:
    def test_row_count_matches_scale(self):
        gen = LineitemGenerator(TpchConfig(scale_factor=0.0002))
        assert len(list(gen.rows())) == int(6_000_000 * 0.0002)

    def test_deterministic(self):
        a = list(LineitemGenerator(TpchConfig(scale_factor=0.0001, seed=9)).rows())
        b = list(LineitemGenerator(TpchConfig(scale_factor=0.0001, seed=9)).rows())
        assert a == b

    def test_sixteen_columns(self):
        gen = LineitemGenerator(TpchConfig(scale_factor=0.0001))
        row = next(gen.rows())
        assert len(row) == len(LINEITEM_COLUMNS) == 16

    def test_line_numbers_within_order(self):
        gen = LineitemGenerator(TpchConfig(scale_factor=0.0005))
        per_order: dict[int, list[int]] = {}
        for row in gen.rows():
            per_order.setdefault(row[0], []).append(row[3])
        for numbers in per_order.values():
            assert numbers == list(range(1, len(numbers) + 1))

    def test_csv_roundtrip_types(self):
        gen = LineitemGenerator(TpchConfig(scale_factor=0.0001))
        rows = list(gen.rows())
        back = gen.from_csv(gen.to_csv(iter(rows)))
        assert back == rows

    def test_load_into_engine(self):
        db = Database(logging_enabled=False)
        gen = LineitemGenerator(TpchConfig(scale_factor=0.0001, block_size=1 << 16))
        info = gen.load_into(db)
        assert info.table.live_tuple_count() == gen.config.row_count
