"""Tests for the TPC-C workload: generation rules, loader, transactions."""

import pytest

from repro import Database
from repro.workloads.tpcc import TpccConfig, TpccDriver, TpccTransactions
from repro.workloads.tpcc.loader import TpccLoader
from repro.workloads.tpcc.random_gen import SYLLABLES, TpccRandom
from repro.workloads.tpcc.schema import COLD_TABLES, TPCC_TABLES, create_tpcc_tables


@pytest.fixture(scope="module")
def loaded():
    """One loaded TPC-C database shared by read-mostly tests."""
    db = Database(cold_threshold_epochs=1)
    config = TpccConfig.small()
    driver = TpccDriver(db, config)
    driver.setup()
    return db, config, driver


class TestRandomGen:
    def test_nurand_in_range(self):
        r = TpccRandom(1)
        for _ in range(500):
            assert 1 <= r.nurand(1023, 1, 3000) <= 3000
            assert 1 <= r.nurand(8191, 1, 100_000) <= 100_000

    def test_last_name_syllables(self):
        r = TpccRandom(1)
        assert r.last_name(0) == "BARBARBAR"
        assert r.last_name(999) == "EINGEINGEING"
        assert r.last_name(371) == SYLLABLES[3] + SYLLABLES[7] + SYLLABLES[1]

    def test_a_string_lengths(self):
        r = TpccRandom(2)
        for _ in range(50):
            assert 8 <= len(r.a_string(8, 16)) <= 16

    def test_zip_format(self):
        r = TpccRandom(3)
        z = r.zip_code()
        assert len(z) == 9 and z.endswith("11111") and z.isdigit()

    def test_data_string_sometimes_original(self):
        r = TpccRandom(4)
        hits = sum("ORIGINAL" in r.data_string(26, 50) for _ in range(500))
        assert 20 <= hits <= 100  # ~10%

    def test_seeded_determinism(self):
        a, b = TpccRandom(7), TpccRandom(7)
        assert [a.uniform(0, 100) for _ in range(10)] == [
            b.uniform(0, 100) for _ in range(10)
        ]


class TestSchemaAndLoader:
    def test_all_nine_tables(self, loaded):
        db, _, _ = loaded
        assert set(db.catalog.table_names()) == set(TPCC_TABLES)

    def test_cardinalities(self, loaded):
        db, config, _ = loaded
        reader = db.begin()
        counts = {
            name: sum(1 for _ in db.catalog.table(name).scan(reader, [0]))
            for name in ("warehouse", "district", "customer", "item", "stock", "oorder")
        }
        db.commit(reader)
        assert counts["warehouse"] == config.warehouses
        assert counts["district"] == config.warehouses * config.districts_per_warehouse
        assert counts["customer"] == counts["district"] * config.customers_per_district
        assert counts["item"] == config.items
        assert counts["stock"] == config.warehouses * config.stock_per_warehouse
        assert counts["oorder"] == counts["district"] * min(
            config.initial_orders_per_district, config.customers_per_district
        )

    def test_customer_index_lookup(self, loaded):
        db, _, _ = loaded
        reader = db.begin()
        hits = db.catalog.index("customer", "pk").lookup(reader, (1, 1, 1))
        db.commit(reader)
        assert len(hits) == 1

    def test_new_order_backlog_exists(self, loaded):
        db, config, _ = loaded
        reader = db.begin()
        pending = sum(1 for _ in db.catalog.table("new_order").scan(reader, [0]))
        db.commit(reader)
        assert pending > 0  # ~30% of initial orders are undelivered

    def test_cold_tables_watched(self, loaded):
        db, _, _ = loaded
        watched = {t.name for t in db.access_observer._tables}
        assert set(COLD_TABLES) <= watched


class TestTransactions:
    @pytest.fixture()
    def fresh(self):
        db = Database(cold_threshold_epochs=1)
        config = TpccConfig.small()
        driver = TpccDriver(db, config)
        driver.setup()
        return db, config

    def test_new_order_creates_rows(self, fresh):
        db, config = fresh
        tx = TpccTransactions(db, config, seed=11)
        reader = db.begin()
        before = sum(1 for _ in db.catalog.table("oorder").scan(reader, [0]))
        db.commit(reader)
        committed = sum(tx.new_order(1) for _ in range(20))
        assert committed >= 15  # some may hit the 1% rollback
        reader = db.begin()
        after = sum(1 for _ in db.catalog.table("oorder").scan(reader, [0]))
        db.commit(reader)
        assert after == before + committed

    def test_new_order_rollback_rate(self, fresh):
        db, config = fresh
        from dataclasses import replace

        always_rollback = replace(config, new_order_rollback_rate=1.0)
        tx = TpccTransactions(db, always_rollback, seed=5)
        assert not tx.new_order(1)
        assert tx.counters.aborted["new_order"] == 1
        reader = db.begin()
        # The rolled-back order must not exist.
        orders = sum(1 for _ in db.catalog.table("new_order").scan(reader, [0]))
        db.commit(reader)

    def test_payment_updates_balances(self, fresh):
        db, config = fresh
        tx = TpccTransactions(db, config, seed=13)
        assert tx.payment(1)
        assert tx.counters.committed["payment"] == 1

    def test_payment_increments_history(self, fresh):
        db, config = fresh
        tx = TpccTransactions(db, config, seed=13)
        reader = db.begin()
        before = sum(1 for _ in db.catalog.table("history").scan(reader, [0]))
        db.commit(reader)
        runs = sum(tx.payment(1) for _ in range(10))
        reader = db.begin()
        after = sum(1 for _ in db.catalog.table("history").scan(reader, [0]))
        db.commit(reader)
        assert after - before == runs

    def test_order_status_read_only(self, fresh):
        db, config = fresh
        tx = TpccTransactions(db, config, seed=17)
        assert tx.order_status(1)

    def test_delivery_consumes_backlog(self, fresh):
        db, config = fresh
        tx = TpccTransactions(db, config, seed=19)
        reader = db.begin()
        before = sum(1 for _ in db.catalog.table("new_order").scan(reader, [0]))
        db.commit(reader)
        assert tx.delivery(1)
        reader = db.begin()
        after = sum(1 for _ in db.catalog.table("new_order").scan(reader, [0]))
        db.commit(reader)
        assert after < before

    def test_stock_level_read_only(self, fresh):
        db, config = fresh
        tx = TpccTransactions(db, config, seed=23)
        assert tx.stock_level(1)


class TestDriver:
    def test_mix_roughly_standard(self, loaded):
        db, config, driver = loaded
        run = driver.run(transactions_per_worker=300)
        share = run.per_profile["new_order"] / max(run.committed, 1)
        assert 0.3 < share < 0.6
        assert run.committed + run.aborted == 300
        assert run.throughput > 0

    def test_maintenance_freezes_cold_blocks(self):
        db = Database(cold_threshold_epochs=1)
        driver = TpccDriver(db, TpccConfig.small())
        driver.setup()
        driver.run(transactions_per_worker=150, maintenance_every=30)
        # Blocks froze during the run; Delivery may flip some back to HOT
        # (it rewrites old order lines), so assert on pipeline activity and
        # on coverage after the background thread catches up.
        assert db.transformer.stats.blocks_frozen > 0
        db.run_maintenance(passes=4)
        assert driver.cold_coverage() > 0

    def test_multi_worker_run(self):
        db = Database(cold_threshold_epochs=1)
        driver = TpccDriver(db, TpccConfig.small(warehouses=2))
        driver.setup()
        run = driver.run(transactions_per_worker=50, workers=2)
        assert run.committed + run.aborted == 100
