"""TPC-C consistency conditions after real transaction mixes.

The strongest end-to-end oracle in the suite: spec clause 3.3.2 invariants
must hold after any workload, with and without the transformation pipeline
interfering.
"""

import pytest

from repro import Database
from repro.workloads.tpcc import TpccConfig, TpccDriver, TpccTransactions
from repro.workloads.tpcc.consistency import check_consistency


def fresh_driver(**db_kwargs):
    db = Database(cold_threshold_epochs=1, **db_kwargs)
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    return db, driver


class TestConsistency:
    def test_freshly_loaded_database_consistent(self):
        db, _ = fresh_driver()
        report = check_consistency(db)
        assert report.consistent, report.violations

    def test_consistent_after_mixed_run(self):
        db, driver = fresh_driver()
        driver.run(transactions_per_worker=250)
        report = check_consistency(db)
        assert report.consistent, report.violations

    def test_consistent_with_transformation_running(self):
        db, driver = fresh_driver()
        driver.run(transactions_per_worker=250, maintenance_every=25)
        db.run_maintenance(passes=3)
        report = check_consistency(db)
        assert report.consistent, report.violations

    def test_consistent_after_forced_rollbacks(self):
        from dataclasses import replace

        db, driver = fresh_driver()
        config = replace(driver.config, new_order_rollback_rate=0.5)
        tx = TpccTransactions(db, config, seed=3)
        for _ in range(60):
            tx.new_order(1)
        assert tx.counters.aborted["new_order"] > 5
        report = check_consistency(db)
        assert report.consistent, report.violations

    def test_consistent_after_recovery(self):
        db, driver = fresh_driver()
        driver.run(transactions_per_worker=150)
        db.quiesce()
        log = db.log_contents()

        from repro.workloads.tpcc.schema import create_tpcc_tables

        fresh = Database()
        create_tpcc_tables(fresh, driver.config)
        fresh.recover_from(log)
        report = check_consistency(fresh)
        assert report.consistent, report.violations

    def test_violations_detected_when_injected(self):
        # Sanity-check the checker itself: break an invariant on purpose.
        db, driver = fresh_driver()
        warehouse = db.catalog.get("warehouse")
        with db.transaction() as txn:
            [(slot, row)] = list(warehouse.table.scan(txn))
        ytd_col = warehouse.column_id("w_ytd")
        with db.transaction() as txn:
            warehouse.table.update(txn, slot, {ytd_col: 1.0})
        report = check_consistency(db)
        assert not report.consistent
        assert any("condition 1" in v for v in report.violations)

    def test_multi_warehouse_consistency(self):
        db = Database(cold_threshold_epochs=1)
        driver = TpccDriver(db, TpccConfig.small(warehouses=2))
        driver.setup()
        driver.run(transactions_per_worker=60, workers=2)
        report = check_consistency(db)
        assert report.consistent, report.violations

    def test_concurrent_workers_on_shared_warehouse(self):
        # Real threads hammering ONE warehouse: conflicts abound, but the
        # invariants must survive every interleaving.
        db = Database(cold_threshold_epochs=1)
        driver = TpccDriver(db, TpccConfig.small(warehouses=1))
        driver.setup()
        run = driver.run(transactions_per_worker=80, workers=4)
        assert run.committed > 0
        report = check_consistency(db)
        assert report.consistent, report.violations

    def test_concurrent_workers_with_maintenance_thread(self):
        import threading

        db = Database(cold_threshold_epochs=1)
        driver = TpccDriver(db, TpccConfig.small(warehouses=2))
        driver.setup()
        stop = threading.Event()

        def maintenance():
            while not stop.is_set():
                db.run_maintenance()

        maintainer = threading.Thread(target=maintenance)
        maintainer.start()
        try:
            driver.run(transactions_per_worker=60, workers=3)
        finally:
            stop.set()
            maintainer.join()
        report = check_consistency(db)
        assert report.consistent, report.violations
