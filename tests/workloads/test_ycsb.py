"""Tests for the YCSB workload and the zipfian generator."""

import pytest

from repro import Database
from repro.errors import WorkloadError
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, ZipfianGenerator


class TestZipfian:
    def test_domain_respected(self):
        gen = ZipfianGenerator(100, theta=0.9, seed=1)
        samples = [gen.next() for _ in range(2000)]
        assert all(0 <= s < 100 for s in samples)

    def test_skew_concentrates_mass(self):
        gen = ZipfianGenerator(1000, theta=0.99, seed=2)
        samples = [gen.next() for _ in range(5000)]
        top_decile = sum(1 for s in samples if s < 100)
        assert top_decile > len(samples) * 0.5  # heavy head

    def test_theta_zero_is_uniform(self):
        gen = ZipfianGenerator(10, theta=0.0, seed=3)
        samples = [gen.next() for _ in range(5000)]
        counts = [samples.count(i) for i in range(10)]
        assert min(counts) > 300  # roughly uniform

    def test_deterministic_under_seed(self):
        a = ZipfianGenerator(50, seed=7)
        b = ZipfianGenerator(50, seed=7)
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, theta=1.0)


class TestYcsbConfig:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            YcsbConfig(read_proportion=0.5, update_proportion=0.5, insert_proportion=0.5)


class TestYcsbDriver:
    def test_load_and_run(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        driver = YcsbDriver(db, YcsbConfig(records=400), seed=1)
        driver.setup()
        driver.run(300)
        assert driver.reads + driver.updates + driver.inserts + driver.aborts == 300
        assert driver.info.table.live_tuple_count() == 400 + driver.inserts

    def test_run_requires_setup(self):
        db = Database(logging_enabled=False)
        driver = YcsbDriver(db, YcsbConfig(records=10))
        with pytest.raises(WorkloadError):
            driver.run(1)

    def test_skew_enables_freezing(self):
        # The paper's premise: skewed writes leave most blocks cold.
        def coverage(theta: float) -> float:
            db = Database(logging_enabled=False, cold_threshold_epochs=2)
            config = YcsbConfig(
                records=1500, zipf_theta=theta,
                read_proportion=0.5, update_proportion=0.5, insert_proportion=0.0,
            )
            driver = YcsbDriver(db, config, seed=4)
            driver.setup()
            for _ in range(6):
                driver.run(100)
                db.run_maintenance()
            return driver.frozen_fraction()

        skewed = coverage(0.99)
        assert skewed > 0  # hot head leaves the tail frozen

    def test_read_only_mix_freezes_everything(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        config = YcsbConfig(
            records=1200, read_proportion=1.0, update_proportion=0.0,
            insert_proportion=0.0,
        )
        driver = YcsbDriver(db, config, seed=5)
        driver.setup()
        driver.run(200)
        db.run_maintenance(passes=4)
        # All full blocks freeze; only the insertion block can stay hot.
        from repro.storage.constants import BlockState

        states = driver.info.table.block_states()
        assert states[BlockState.HOT] <= 1
