"""Property tests: log encoding and checkpointing round-trip any content."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.wal.records import decode_stream

value_strategies = {
    "i": st.one_of(st.none(), st.integers(-(2**62), 2**62)),
    "f": st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False, width=64)),
    "s": st.one_of(st.none(), st.text(max_size=40)),
}

row_strategy = st.fixed_dictionaries(
    {0: value_strategies["i"], 1: value_strategies["s"], 2: value_strategies["f"]}
)


def make_db():
    db = Database()
    db.create_table(
        "t",
        [ColumnSpec("i", INT64), ColumnSpec("s", UTF8), ColumnSpec("f", FLOAT64)],
        block_size=1 << 14,
    )
    return db


@settings(max_examples=25, deadline=None)
@given(st.lists(row_strategy, min_size=1, max_size=20))
def test_log_roundtrips_any_rows(rows):
    db = make_db()
    table = db.catalog.table("t")
    with db.transaction() as txn:
        for row in rows:
            table.insert(txn, row)
    db.quiesce()
    [decoded] = decode_stream(db.log_contents())
    assert [op.values for op in decoded.operations] == rows


@settings(max_examples=20, deadline=None)
@given(st.lists(row_strategy, min_size=1, max_size=15), st.data())
def test_checkpoint_roundtrips_any_state(rows, data):
    db = make_db()
    table = db.catalog.table("t")
    slots = []
    with db.transaction() as txn:
        for row in rows:
            slots.append(table.insert(txn, row))
    # Random deletions before the checkpoint.
    victims = data.draw(
        st.lists(st.sampled_from(range(len(slots))), unique=True, max_size=len(slots))
    )
    if victims:
        with db.transaction() as txn:
            for index in victims:
                table.delete(txn, slots[index])
    checkpoint = db.checkpoint()

    fresh = make_db()
    fresh.recover_with_checkpoint(checkpoint, b"")
    reader = fresh.begin()
    from collections import Counter

    recovered = Counter(
        tuple(sorted(row.to_dict().items()))
        for _, row in fresh.catalog.table("t").scan(reader)
    )
    expected = Counter(
        tuple(sorted(row.items()))
        for index, row in enumerate(rows)
        if index not in set(victims)
    )
    assert recovered == expected


@settings(max_examples=15, deadline=None)
@given(
    st.lists(row_strategy, min_size=1, max_size=10),
    st.lists(row_strategy, min_size=0, max_size=10),
)
def test_checkpoint_plus_suffix_equals_full_log(before, after):
    db = make_db()
    table = db.catalog.table("t")
    with db.transaction() as txn:
        for row in before:
            table.insert(txn, row)
    checkpoint = db.checkpoint()
    if after:
        with db.transaction() as txn:
            for row in after:
                table.insert(txn, row)
    db.quiesce()
    suffix = db.log_contents()

    fresh = make_db()
    fresh.recover_with_checkpoint(checkpoint, suffix)
    reader = fresh.begin()
    count = sum(1 for _ in fresh.catalog.table("t").scan(reader, [0]))
    assert count == len(before) + len(after)
