"""Tests for checkpointing and checkpoint + log-suffix recovery."""

import pytest

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.errors import RecoveryError
from repro.wal.checkpoint import MAGIC, load_checkpoint, write_checkpoint


def make_db():
    db = Database()
    db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("s", UTF8), ColumnSpec("f", FLOAT64)],
        block_size=1 << 14,
    )
    db.create_table("u", [ColumnSpec("k", INT64)], block_size=1 << 14)
    return db


def populate(db, rows=20):
    info = db.catalog.get("t")
    slots = []
    with db.transaction() as txn:
        for i in range(rows):
            slots.append(
                info.table.insert(txn, {0: i, 1: f"row-{i}-" + "x" * (i % 20), 2: i / 3})
            )
        db.catalog.table("u").insert(txn, {0: 99})
    return slots


class TestCheckpointFormat:
    def test_magic_prefix(self):
        db = make_db()
        assert db.checkpoint().startswith(MAGIC)

    def test_bad_magic_rejected(self):
        fresh = make_db()
        with pytest.raises(RecoveryError):
            load_checkpoint(fresh, b"NOTACKPT" + b"\x00" * 16)

    def test_truncated_rejected(self):
        db = make_db()
        populate(db)
        raw = db.checkpoint()
        fresh = make_db()
        with pytest.raises(RecoveryError):
            load_checkpoint(fresh, raw[: len(raw) // 2])

    def test_unknown_table_rejected(self):
        db = make_db()
        populate(db)
        raw = db.checkpoint()
        fresh = Database()
        fresh.create_table("other", [ColumnSpec("x", INT64)])
        with pytest.raises(RecoveryError):
            load_checkpoint(fresh, raw)

    def test_schema_mismatch_rejected(self):
        db = make_db()
        populate(db)
        raw = db.checkpoint()
        fresh = Database()
        fresh.create_table("t", [ColumnSpec("different", INT64)])
        fresh.create_table("u", [ColumnSpec("k", INT64)])
        with pytest.raises(RecoveryError):
            load_checkpoint(fresh, raw)


class TestCheckpointRecovery:
    def test_checkpoint_only_recovery(self):
        db = make_db()
        populate(db, rows=30)
        checkpoint = db.checkpoint()
        fresh = make_db()
        fresh.recover_with_checkpoint(checkpoint, b"")
        reader = fresh.begin()
        rows = {r.get(0): r.get(1) for _, r in fresh.catalog.table("t").scan(reader)}
        assert len(rows) == 30
        assert rows[7].startswith("row-7-")

    def test_checkpoint_truncates_log(self):
        db = make_db()
        populate(db)
        assert db.log_manager.bytes_written > 0
        db.checkpoint()
        assert db.log_contents() == b""

    def test_checkpoint_plus_log_suffix(self):
        db = make_db()
        slots = populate(db, rows=10)
        checkpoint = db.checkpoint()
        # Post-checkpoint activity touching pre-checkpoint tuples.
        info = db.catalog.get("t")
        with db.transaction() as txn:
            info.table.update(txn, slots[3], {1: "updated after checkpoint"})
            info.table.delete(txn, slots[5])
            info.table.insert(txn, {0: 100, 1: "new", 2: 0.0})
        db.quiesce()
        log_suffix = db.log_contents()

        fresh = make_db()
        replayed = fresh.recover_with_checkpoint(checkpoint, log_suffix)
        assert replayed == 1
        reader = fresh.begin()
        rows = {r.get(0): r.get(1) for _, r in fresh.catalog.table("t").scan(reader)}
        assert rows[3] == "updated after checkpoint"
        assert 5 not in rows
        assert rows[100] == "new"
        assert len(rows) == 10  # 10 - 1 deleted + 1 inserted

    def test_multiple_tables_roundtrip(self):
        db = make_db()
        populate(db)
        fresh = make_db()
        fresh.recover_with_checkpoint(db.checkpoint(), b"")
        reader = fresh.begin()
        [(_, row)] = list(fresh.catalog.table("u").scan(reader))
        assert row.get(0) == 99

    def test_deleted_tuples_not_checkpointed(self):
        db = make_db()
        slots = populate(db, rows=5)
        info = db.catalog.get("t")
        with db.transaction() as txn:
            info.table.delete(txn, slots[0])
        fresh = make_db()
        fresh.recover_with_checkpoint(db.checkpoint(), b"")
        reader = fresh.begin()
        assert len(list(fresh.catalog.table("t").scan(reader))) == 4

    def test_nulls_survive_checkpoint(self):
        db = make_db()
        info = db.catalog.get("t")
        with db.transaction() as txn:
            info.table.insert(txn, {0: 1, 1: None, 2: None})
        fresh = make_db()
        fresh.recover_with_checkpoint(db.checkpoint(), b"")
        reader = fresh.begin()
        [(_, row)] = list(fresh.catalog.table("t").scan(reader))
        assert row.get(1) is None and row.get(2) is None

    def test_checkpoint_after_transformation(self):
        # Frozen blocks must checkpoint like any others (reads go through
        # the same transactional path).
        db = Database(cold_threshold_epochs=1)
        info = db.create_table(
            "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 14, watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(info.table.layout.num_slots + 10):
                info.table.insert(txn, {0: i, 1: f"value-{i}-long-enough-to-spill"})
        db.freeze_table("t")
        checkpoint = db.checkpoint()
        fresh = Database()
        fresh.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
                           block_size=1 << 14)
        fresh.recover_with_checkpoint(checkpoint, b"")
        reader = fresh.begin()
        count = sum(1 for _ in fresh.catalog.table("t").scan(reader, [0]))
        assert count == info.table.layout.num_slots + 10
