"""Tests for torn-tail recovery and the transaction retry helper."""

import bisect

import pytest

from repro import ColumnSpec, Database, INT64, TransactionAborted, UTF8
from repro.errors import RecoveryError
from repro.wal.records import decode_stream


def make_db():
    db = Database()
    db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
    return db


def populated_log(txns=5):
    db = make_db()
    table = db.catalog.table("t")
    for i in range(txns):
        with db.transaction() as txn:
            table.insert(txn, {0: i, 1: f"row-{i}" * 4})
    db.quiesce()
    return db.log_contents()


class TestTornTail:
    def test_truncation_drops_only_final_txn(self):
        raw = populated_log(5)
        torn = raw[:-7]  # cut into the last transaction
        decoded = decode_stream(torn, tolerate_torn_tail=True)
        assert len(decoded) == 4

    def test_every_truncation_point_recovers_a_prefix(self):
        raw = populated_log(3)
        full = decode_stream(raw)
        for cut in range(0, len(raw), 17):
            decoded = decode_stream(raw[:cut], tolerate_torn_tail=True)
            assert len(decoded) <= len(full)
            for got, want in zip(decoded, full):
                assert got.commit_ts == want.commit_ts

    def test_strict_mode_still_raises(self):
        raw = populated_log(2)
        with pytest.raises(RecoveryError):
            decode_stream(raw[:-3])

    def test_mid_stream_damage_still_raises(self):
        raw = populated_log(4)
        # Corrupt a marker well before the tail.
        position = raw.index(b"TXN<", 4)
        damaged = raw[:position] + b"XXXX" + raw[position + 4 :]
        with pytest.raises(RecoveryError):
            decode_stream(damaged, tolerate_torn_tail=True)

    def test_replay_at_every_byte_offset_recovers_exact_durable_prefix(self):
        """The property behind the torture harness: truncate a multi-
        transaction log at EVERY byte offset and replay must (a) never
        raise, and (b) recover exactly the complete-transaction prefix."""
        from repro.wal.recovery import RecoveryManager

        db = make_db()
        table = db.catalog.table("t")
        slots = []
        boundaries = [0]  # log byte offset after each commit's flush
        for i in range(4):
            with db.transaction() as txn:
                slots.append(table.insert(txn, {0: i, 1: f"row-{i}" * 2}))
                if i >= 2:  # mix in updates and deletes, not just inserts
                    table.update(txn, slots[0], {1: f"upd-{i}"})
                if i == 3:
                    table.delete(txn, slots[1])
            boundaries.append(db.log_manager.bytes_written)
        raw = db.log_contents()
        assert boundaries[-1] == len(raw)

        for cut in range(len(raw) + 1):
            fresh = make_db()
            recovery = RecoveryManager(
                fresh.txn_manager, fresh.catalog.data_tables()
            )
            replayed = recovery.replay(raw[:cut], tolerate_torn_tail=True)
            expected = bisect.bisect_right(boundaries, cut) - 1
            assert replayed == expected, f"cut at byte {cut}"
            reader = fresh.begin()
            rows = {
                row.get(0) for _, row in fresh.catalog.table("t").scan(reader, [0])
            }
            fresh.commit(reader)
            want = set(range(expected))
            if expected == 4:
                want.discard(1)  # txn 3 deleted row 1
            assert rows == want, f"cut at byte {cut}"

    def test_database_recovery_tolerates_crash_mid_flush(self):
        raw = populated_log(5)
        fresh = make_db()
        replayed = fresh.recover_from(raw[: len(raw) - 5])
        assert replayed == 4
        reader = fresh.begin()
        assert sum(1 for _ in fresh.catalog.table("t").scan(reader, [0])) == 4


class TestRunTransaction:
    def test_commits_and_returns(self):
        db = make_db()
        table = db.catalog.table("t")
        slot = db.run_transaction(lambda txn: table.insert(txn, {0: 1, 1: "x"}))
        reader = db.begin()
        assert table.select(reader, slot).get(0) == 1

    def test_retries_on_conflict(self):
        db = make_db()
        table = db.catalog.table("t")
        slot = db.run_transaction(lambda txn: table.insert(txn, {0: 1, 1: "x"}))
        blocker = db.begin()
        table.update(blocker, slot, {0: 2})

        attempts = []

        def body(txn):
            attempts.append(1)
            if len(attempts) == 1:
                # First attempt collides with the blocker...
                assert not table.update(txn, slot, {0: 3})
                return None
            # ...which commits before the retry.
            assert table.update(txn, slot, {0: 3})
            return "done"

        def unblock_after_first():
            db.commit(blocker)

        # Commit the blocker between attempts by hooking into body above.
        result_holder = []

        def orchestrated(txn):
            out = body(txn)
            if len(attempts) == 1:
                unblock_after_first()
            return out

        assert db.run_transaction(orchestrated, retries=2) == "done"
        assert len(attempts) == 2

    def test_exhausted_retries_raise(self):
        db = make_db()
        table = db.catalog.table("t")
        slot = db.run_transaction(lambda txn: table.insert(txn, {0: 1, 1: "x"}))
        blocker = db.begin()
        table.update(blocker, slot, {0: 2})

        def body(txn):
            table.update(txn, slot, {0: 9})

        with pytest.raises(TransactionAborted):
            db.run_transaction(body, retries=2)
        db.commit(blocker)

    def test_user_exception_aborts_and_propagates(self):
        db = make_db()
        table = db.catalog.table("t")

        def body(txn):
            table.insert(txn, {0: 5, 1: "doomed"})
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            db.run_transaction(body)
        reader = db.begin()
        assert list(db.catalog.table("t").scan(reader)) == []
