"""Tests for log records, the log manager, and recovery."""

import io

import pytest

from repro.arrowfmt.datatypes import FLOAT64, INT64, UTF8
from repro.errors import RecoveryError
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.txn.manager import TransactionManager
from repro.wal.manager import LogManager
from repro.wal.records import decode_stream, encode_transaction
from repro.wal.recovery import RecoveryManager


def make_layout():
    return BlockLayout(
        [ColumnSpec("id", INT64), ColumnSpec("s", UTF8), ColumnSpec("f", FLOAT64)]
    )


@pytest.fixture
def setup():
    log = LogManager()
    tm = TransactionManager(log_manager=log)
    table = DataTable(BlockStore(), make_layout(), "t")
    return log, tm, table


class TestRecordEncoding:
    def test_roundtrip_all_value_types(self, setup):
        log, tm, table = setup
        txn = tm.begin()
        table.insert(txn, {0: -5, 1: "héllo", 2: 3.25})
        table.insert(txn, {0: 0, 1: None, 2: None})
        tm.commit(txn)
        [decoded] = decode_stream(log.contents())
        assert decoded.commit_ts == txn.commit_ts
        ops = decoded.operations
        assert ops[0].values == {0: -5, 1: "héllo", 2: 3.25}
        assert ops[1].values == {0: 0, 1: None, 2: None}

    def test_update_and_delete_ops(self, setup):
        log, tm, table = setup
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x", 2: 0.0})
        tm.commit(txn)
        txn = tm.begin()
        table.update(txn, slot, {2: 9.0})
        table.delete(txn, slot)
        tm.commit(txn)
        decoded = decode_stream(log.contents())
        assert [op.op for op in decoded[1].operations] == ["update", "delete"]
        assert decoded[1].operations[0].values == {2: 9.0}
        assert decoded[1].operations[1].values == {}

    def test_read_only_txn_encodes_to_nothing(self, setup):
        _, tm, _ = setup
        txn = tm.begin()
        tm.commit(txn)
        assert encode_transaction(txn) == b""

    def test_uncommitted_txn_rejected(self, setup):
        _, tm, table = setup
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "x", 2: 0.0})
        with pytest.raises(RecoveryError):
            encode_transaction(txn)

    def test_truncated_stream_detected(self, setup):
        log, tm, table = setup
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "x", 2: 0.0})
        tm.commit(txn)
        raw = log.contents()
        with pytest.raises(RecoveryError):
            decode_stream(raw[:-3])

    def test_commit_order_preserved(self, setup):
        log, tm, table = setup
        for i in range(5):
            txn = tm.begin()
            table.insert(txn, {0: i, 1: "v", 2: 0.0})
            tm.commit(txn)
        decoded = decode_stream(log.contents())
        timestamps = [t.commit_ts for t in decoded]
        assert timestamps == sorted(timestamps)


class TestLogManager:
    def test_group_commit_batches(self):
        log = LogManager(synchronous=False)
        tm = TransactionManager(log_manager=log)
        table = DataTable(BlockStore(), make_layout(), "t")
        txns = []
        for i in range(4):
            txn = tm.begin()
            table.insert(txn, {0: i, 1: "v", 2: 0.0})
            tm.commit(txn)
            txns.append(txn)
        assert log.pending_count == 4
        assert log.flush() == 4
        assert log.flush_count == 1
        assert all(t.is_durable for t in txns)

    def test_background_flusher(self):
        log = LogManager(synchronous=False)
        tm = TransactionManager(log_manager=log)
        table = DataTable(BlockStore(), make_layout(), "t")
        log.start_background(interval=0.002)
        try:
            txn = tm.begin()
            table.insert(txn, {0: 1, 1: "v", 2: 0.0})
            tm.commit(txn)
            assert txn.wait_durable(timeout=2.0)
        finally:
            log.stop_background()

    def test_custom_device(self):
        device = io.BytesIO()
        log = LogManager(device=device)
        tm = TransactionManager(log_manager=log)
        table = DataTable(BlockStore(), make_layout(), "t")
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "v", 2: 0.0})
        tm.commit(txn)
        assert len(device.getvalue()) == log.bytes_written > 0


class TestRecovery:
    def replay_into_fresh(self, raw):
        tm = TransactionManager()
        table = DataTable(BlockStore(), make_layout(), "t")
        recovery = RecoveryManager(tm, {"t": table})
        count = recovery.replay(raw)
        return tm, table, count

    def test_full_replay(self, setup):
        log, tm, table = setup
        txn = tm.begin()
        slots = [table.insert(txn, {0: i, 1: f"row{i}", 2: i / 2}) for i in range(10)]
        tm.commit(txn)
        txn = tm.begin()
        table.update(txn, slots[3], {1: "updated"})
        table.delete(txn, slots[7])
        tm.commit(txn)

        tm2, table2, count = self.replay_into_fresh(log.contents())
        assert count == 2
        reader = tm2.begin()
        rows = {row.get(0): row.get(1) for _, row in table2.scan(reader)}
        assert rows[3] == "updated"
        assert 7 not in rows
        assert len(rows) == 9

    def test_aborted_txn_absent_from_log(self, setup):
        log, tm, table = setup
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "keep", 2: 0.0})
        tm.commit(txn)
        loser = tm.begin()
        table.insert(loser, {0: 2, 1: "lost", 2: 0.0})
        tm.abort(loser)
        _, table2, count = self.replay_into_fresh(log.contents())
        assert count == 1
        tm2 = TransactionManager()
        # only the committed row survives

    def test_unknown_table_rejected(self, setup):
        log, tm, table = setup
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "x", 2: 0.0})
        tm.commit(txn)
        recovery = RecoveryManager(TransactionManager(), {"other": table})
        with pytest.raises(RecoveryError):
            recovery.replay(log.contents())

    def test_update_before_insert_rejected(self, setup):
        log, tm, table = setup
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x", 2: 0.0})
        tm.commit(txn)
        txn = tm.begin()
        table.update(txn, slot, {0: 2})
        tm.commit(txn)
        raw = log.contents()
        # Replay only the second transaction: its slot was never mapped.
        tm_f = TransactionManager()
        table_f = DataTable(BlockStore(), make_layout(), "t")
        recovery = RecoveryManager(tm_f, {"t": table_f})
        first_len = len(raw) - self._second_txn_length(raw)
        with pytest.raises(RecoveryError):
            recovery.replay(raw[first_len:])

    @staticmethod
    def _second_txn_length(raw):
        # Find the second 'TXN<' marker to split the stream.
        second = raw.index(b"TXN<", 4)
        return len(raw) - second

    def test_varlen_values_survive_replay(self, setup):
        log, tm, table = setup
        long_value = "<" * 500
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: long_value, 2: 0.0})
        tm.commit(txn)
        tm2, table2, _ = self.replay_into_fresh(log.contents())
        reader = tm2.begin()
        [(_, row)] = list(table2.scan(reader))
        assert row.get(1) == long_value
