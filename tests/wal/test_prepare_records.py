"""PREPARE/DECISION records under truncation: presumed-abort resolution.

Extends the every-byte-offset torn-tail property to logs carrying 2PC
records.  The log under test interleaves plain commits with two prepared
transactions — one that was decided commit on the participant, one that
was aborted after preparing — and asserts that *every* prefix of the log
recovers to a well-defined state:

- full records replay, the torn tail is dropped;
- a prepare whose decision record is missing is surfaced in doubt, and
  resolving it against a coordinator decision map commits exactly the
  gids the coordinator decided commit (everything else presumed abort).
"""

import pytest

from repro import INT64, UTF8, ColumnSpec, Database
from repro.errors import RecoveryError
from repro.wal.records import (
    DECISION_ABORT,
    DECISION_COMMIT,
    LoggedDecision,
    decode_entries,
    decode_with_indoubt,
    encode_decision,
)
from repro.wal.recovery import RecoveryManager


def _make_db():
    db = Database()
    db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
    return db


class TestDecisionCodec:
    def test_decision_round_trips(self):
        raw = encode_decision("node0.7", DECISION_COMMIT, commit_ts=99)
        (entry,) = decode_entries(raw)
        assert isinstance(entry, LoggedDecision)
        assert entry.gid == "node0.7"
        assert entry.is_commit
        assert entry.commit_ts == 99

    def test_invalid_decision_rejected_at_encode_time(self):
        with pytest.raises(RecoveryError):
            encode_decision("g", 2)

    def test_commit_decision_without_prepare_is_corruption(self):
        raw = encode_decision("ghost", DECISION_COMMIT)
        with pytest.raises(RecoveryError, match="unknown gid"):
            decode_with_indoubt(raw)

    def test_abort_decision_without_prepare_is_ignored(self):
        # What a lazily-logged abort looks like after an earlier recovery
        # already resolved the prepare.
        raw = encode_decision("ghost", DECISION_ABORT)
        committed, indoubt = decode_with_indoubt(raw)
        assert committed == [] and indoubt == []


class TestEveryOffsetWithPrepares:
    def _build_log(self):
        """A log mixing plain commits and both 2PC outcomes.

        Returns ``(raw, boundaries)`` where the boundaries are the
        ``bytes_written`` marks after each durability event.
        """
        db = _make_db()
        table = db.catalog.table("t")
        marks = {}

        with db.transaction() as txn:  # txn0: plain commit
            table.insert(txn, {0: 0, 1: "plain-0"})
        marks["b0"] = db.log_manager.bytes_written

        txn1 = db.begin()  # txn1: prepared, then decided commit
        table.insert(txn1, {0: 1, 1: "two-phase-commit"})
        db.txn_manager.prepare(txn1, "g.1")
        marks["b1_prepared"] = db.log_manager.bytes_written
        db.txn_manager.commit_prepared(txn1)
        db.log_manager.flush()
        marks["b1_decided"] = db.log_manager.bytes_written

        with db.transaction() as txn:  # txn2: plain commit
            table.insert(txn, {0: 2, 1: "plain-2"})
        marks["b2"] = db.log_manager.bytes_written

        txn3 = db.begin()  # txn3: prepared, then aborted
        table.insert(txn3, {0: 3, 1: "two-phase-abort"})
        db.txn_manager.prepare(txn3, "g.3")
        marks["b3_prepared"] = db.log_manager.bytes_written
        db.txn_manager.abort(txn3)
        db.log_manager.flush()
        marks["b3_decided"] = db.log_manager.bytes_written

        raw = db.log_contents()
        assert marks["b3_decided"] == len(raw)
        return raw, marks

    def test_every_truncation_point_resolves_presumed_abort(self):
        raw, m = self._build_log()
        # The coordinator decided commit for g.1; g.3 has no commit
        # decision anywhere, so every recovery presumes it aborted.
        coordinator_decisions = {"g.1": DECISION_COMMIT}

        for cut in range(len(raw) + 1):
            fresh = _make_db()
            recovery = RecoveryManager(
                fresh.txn_manager, fresh.catalog.data_tables()
            )
            replayed, indoubt = recovery.replay_with_indoubt(
                raw[:cut], tolerate_torn_tail=True
            )

            expected_replayed = sum(
                cut >= b for b in (m["b0"], m["b1_decided"], m["b2"])
            )
            assert replayed == expected_replayed, f"cut={cut}"

            expected_indoubt = set()
            if m["b1_prepared"] <= cut < m["b1_decided"]:
                expected_indoubt.add("g.1")
            if m["b3_prepared"] <= cut < m["b3_decided"]:
                expected_indoubt.add("g.3")
            assert set(indoubt) == expected_indoubt, f"cut={cut}"

            for gid, operations in indoubt.items():
                if coordinator_decisions.get(gid) == DECISION_COMMIT:
                    recovery.apply_operations(operations)

            reader = fresh.begin()
            rows = {
                r.get(0) for _, r in fresh.catalog.table("t").scan(reader)
            }
            fresh.abort(reader)
            expected_rows = set()
            if cut >= m["b0"]:
                expected_rows.add(0)
            if cut >= m["b1_prepared"]:  # committed outright or resolved
                expected_rows.add(1)
            if cut >= m["b2"]:
                expected_rows.add(2)
            # Row 3 never survives: its prepare is always presumed abort.
            assert rows == expected_rows, f"cut={cut}"
