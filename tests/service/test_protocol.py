"""Tests for the front-door wire protocol: framing and request/response."""

import asyncio

import pytest

from repro.errors import SerializationError
from repro.service import protocol
from repro.service.protocol import Request, Response


def _feed(*chunks: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


def _run(coro):
    return asyncio.run(coro)


class TestFraming:
    def test_frame_round_trip(self):
        frame = protocol.encode_frame(protocol.KIND_ROWS, b"payload")

        async def read():
            return await protocol.read_frame(_feed(frame))

        kind, payload = _run(read())
        assert kind == protocol.KIND_ROWS
        assert payload == b"payload"

    def test_clean_eof_is_none(self):
        async def read():
            return await protocol.read_frame(_feed())

        assert _run(read()) is None

    def test_mid_header_eof_raises(self):
        async def read():
            return await protocol.read_frame(_feed(b"Q\x01"))

        with pytest.raises(SerializationError, match="mid-frame-header"):
            _run(read())

    def test_unknown_kind_raises(self):
        frame = b"Z" + (0).to_bytes(4, "little")

        async def read():
            return await protocol.read_frame(_feed(frame))

        with pytest.raises(SerializationError, match="unknown frame kind"):
            _run(read())

    def test_oversized_length_refused_without_buffering(self):
        header = b"Q" + (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "little")

        async def read():
            return await protocol.read_frame(_feed(header))

        with pytest.raises(SerializationError, match="exceeds limit"):
            _run(read())

    def test_encode_frame_refuses_oversized_payload(self):
        with pytest.raises(SerializationError):
            protocol.encode_frame(protocol.KIND_ROWS, b"x" * (protocol.MAX_FRAME_BYTES + 1))


class TestRequest:
    def test_round_trip_all_fields(self):
        request = Request(
            op="write", table="t", index="by_key", key=(1, "a"),
            values={"field0": "v"}, columns=["field0"], limit=10,
            tenant="alpha", deadline_ms=250.0,
        )
        frame = request.encode()
        kind, length = protocol._HEADER.unpack(frame[:5])
        assert kind == protocol.KIND_REQUEST
        decoded = Request.decode(frame[5:])
        assert decoded == request

    def test_defaults_round_trip(self):
        frame = Request(op="ping").encode()
        decoded = Request.decode(frame[5:])
        assert decoded.op == "ping"
        assert decoded.tenant == "default"
        assert decoded.deadline_ms is None

    @pytest.mark.parametrize(
        "payload, match",
        [
            (b"not json", "not JSON"),
            (b"[1,2]", "JSON object"),
            (b'{"op": "drop"}', "unknown operation"),
            (b'{"op": "read", "key": 5}', "'key' must be"),
            (b'{"op": "read", "values": 5}', "'values' must be"),
            (b'{"op": "read", "columns": "a"}', "'columns' must be"),
            (b'{"op": "read", "deadline_ms": -1}', "'deadline_ms' must be"),
            (b'{"op": "scan", "limit": -2}', "'limit' must be"),
        ],
    )
    def test_rejects_malformed(self, payload, match):
        with pytest.raises(SerializationError, match=match):
            Request.decode(payload)


class TestResponse:
    def test_shed_codes_are_the_explicit_rejections(self):
        for code in protocol.SHED_CODES:
            assert Response(status="error", code=code).shed
        assert not Response(status="error", code="aborted").shed
        assert not Response(status="ok").shed
        assert protocol.SHED_CODES < protocol.ERROR_CODES

    def test_read_response_error_frame(self):
        frame = protocol.encode_error("too_busy", "queue full", retry_after_ms=50.0)

        async def read():
            return await protocol.read_response(_feed(frame))

        response = _run(read())
        assert response.shed
        assert response.code == "too_busy"
        assert response.retry_after_ms == 50.0

    def test_read_response_with_row_payload(self):
        from repro.export import postgres_wire

        payload, count = postgres_wire.encode_rows([(1, "a"), (2, "b")])
        stream = protocol.encode_result({"rows": count}) + protocol.encode_frame(
            protocol.KIND_ROWS, payload
        )

        async def read():
            return await protocol.read_response(_feed(stream))

        response = _run(read())
        assert response.ok
        assert response.rows() == [("1", "a"), ("2", "b")]

    def test_result_without_rows_reads_no_payload_frame(self):
        stream = protocol.encode_result({"rows": 0, "op": "ping"})

        async def read():
            return await protocol.read_response(_feed(stream))

        response = _run(read())
        assert response.ok
        assert response.meta["op"] == "ping"
        assert response.rows() == []
