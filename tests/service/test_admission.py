"""Tests for admission control: bounded slots, bounded queue, token buckets."""

import asyncio

import pytest

from repro.errors import ServiceOverload
from repro.obs.recorder import Recorder
from repro.obs.registry import MetricRegistry
from repro.service.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()
        clock.now += 0.1  # one token refilled
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.now += 100.0
        for _ in range(3):
            assert bucket.try_take()
        assert not bucket.try_take()

    def test_seconds_until_is_the_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        assert not bucket.try_take()
        assert bucket.seconds_until() == pytest.approx(0.5)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)


def _shed_count(registry, reason):
    return int(
        registry.counter("service.shed_total", labels={"reason": reason}).value
    )


class TestAdmissionController:
    def test_slots_then_queue_then_shed(self):
        async def scenario():
            controller = AdmissionController(max_inflight=2, max_queue=1)
            t1 = await controller.admit()
            t2 = await controller.admit()
            assert controller.inflight == 2
            # Third admit queues; fourth finds the queue full and sheds.
            queued = asyncio.ensure_future(controller.admit())
            await asyncio.sleep(0)
            assert controller.queue_depth == 1
            with pytest.raises(ServiceOverload) as exc:
                await controller.admit()
            assert exc.value.reason == "too_busy"
            # Releasing a slot hands it to the queued waiter, FIFO.
            t1.release()
            t3 = await queued
            assert controller.inflight == 2
            t2.release()
            t3.release()
            assert controller.inflight == 0
            return controller

        controller = asyncio.run(scenario())
        assert _shed_count(controller.registry, "too_busy") == 1
        assert int(controller.registry.counter("service.admitted_total").value) == 3

    def test_queue_is_fifo(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=4)
            first = await controller.admit()
            order = []

            async def waiter(tag):
                ticket = await controller.admit()
                order.append(tag)
                ticket.release()

            tasks = [asyncio.ensure_future(waiter(i)) for i in range(3)]
            await asyncio.sleep(0)
            first.release()
            await asyncio.gather(*tasks)
            return order

        assert asyncio.run(scenario()) == [0, 1, 2]

    def test_queued_waiter_sheds_at_deadline_without_stealing_a_slot(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=4)
            held = await controller.admit()
            loop = asyncio.get_running_loop()
            with pytest.raises(ServiceOverload) as exc:
                await controller.admit(deadline=loop.time() + 0.02)
            assert exc.value.reason == "deadline"
            assert controller.queue_depth == 0
            # The held slot is unaffected and still releasable.
            held.release()
            assert controller.inflight == 0
            return controller

        controller = asyncio.run(scenario())
        assert _shed_count(controller.registry, "deadline") == 1

    def test_expired_deadline_sheds_before_consuming_anything(self):
        async def scenario():
            controller = AdmissionController(
                max_inflight=4, tenant_rate=1.0, tenant_burst=1.0
            )
            loop = asyncio.get_running_loop()
            with pytest.raises(ServiceOverload) as exc:
                await controller.admit(deadline=loop.time() - 1.0)
            assert exc.value.reason == "deadline"
            # The tenant's single token was not consumed by the dead request.
            ticket = await controller.admit()
            ticket.release()

        asyncio.run(scenario())

    def test_tenant_rate_isolates_tenants(self):
        async def scenario():
            controller = AdmissionController(
                max_inflight=8, tenant_rate=1.0, tenant_burst=1.0
            )
            (await controller.admit("alpha")).release()
            with pytest.raises(ServiceOverload) as exc:
                await controller.admit("alpha")
            assert exc.value.reason == "tenant_rate"
            assert getattr(exc.value, "retry_after") > 0
            # A different tenant has its own bucket.
            (await controller.admit("beta")).release()
            return controller

        controller = asyncio.run(scenario())
        assert _shed_count(controller.registry, "tenant_rate") == 1
        by_tenant = controller.registry.counter(
            "service.shed_by_tenant_total",
            labels={"tenant": "alpha", "reason": "tenant_rate"},
        )
        assert int(by_tenant.value) == 1

    def test_connection_limit(self):
        controller = AdmissionController(max_connections=2)
        assert controller.try_connection()
        assert controller.try_connection()
        assert not controller.try_connection()
        assert _shed_count(controller.registry, "connections") == 1
        controller.release_connection()
        assert controller.try_connection()

    def test_ticket_release_is_idempotent(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1)
            ticket = await controller.admit()
            ticket.release()
            ticket.release()
            assert controller.inflight == 0
            with await controller.admit():
                assert controller.inflight == 1
            assert controller.inflight == 0

        asyncio.run(scenario())

    def test_shed_events_reach_the_recorder(self):
        registry = MetricRegistry()
        recorder = Recorder(registry=registry)

        async def scenario():
            controller = AdmissionController(
                max_inflight=1, max_queue=0, registry=registry, recorder=recorder
            )
            ticket = await controller.admit()
            with pytest.raises(ServiceOverload):
                await controller.admit()
            ticket.release()

        asyncio.run(scenario())
        events = recorder.events(kind="service.shed")
        assert len(events) == 1
        assert events[0].attrs["reason"] == "too_busy"

    def test_unregister_metrics_is_idempotent(self):
        registry = MetricRegistry()
        controller = AdmissionController(registry=registry)
        assert registry.unregister("service.inflight") is True
        controller.unregister_metrics()  # remaining gauges + repeat is a no-op
        controller.unregister_metrics()
        assert registry.unregister("service.queue_depth") is False
