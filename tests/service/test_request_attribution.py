"""Forensic request attribution end to end.

The acceptance story of the tail-latency work: a slow disk is injected
under live service load, and the observability surface must *name the
culprit* without any code changes — the p99 latency bucket carries an
exemplar trace id, the trace id resolves to a request breakdown, and the
breakdown says the time went to ``wal.fsync_wait``.  A healthy control
run attributes the same requests to ``engine``, and a shed request is
attributed to the ``admission`` terminal phase without ever holding a
slot.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import ColumnSpec, Database, obs
from repro.arrowfmt.datatypes import INT64, UTF8
from repro.fault import FaultyDevice
from repro.service import ServiceClient
from repro.service.server import ServerThread, ServiceConfig

COLUMNS = [ColumnSpec("key", INT64), ColumnSpec("field0", UTF8)]


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


def make_db(**db_kwargs):
    db = Database(**db_kwargs)
    db.create_table("usertable", COLUMNS)
    db.create_index("usertable", "by_key", ["key"])
    info = db.catalog.get("usertable")
    with db.transaction() as txn:
        for key in range(20):
            info.table.insert(txn, {0: key, 1: f"v{key}"})
    return db


def wait_until(predicate, timeout=5.0, interval=0.005):
    """Completion bookkeeping runs *after* the response bytes ship, so a
    client that just got its answer may be microseconds ahead of the log."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def p99_bucket_index(snapshot):
    """Index of the bucket holding the 99th percentile observation."""
    target = 0.99 * snapshot.count
    for index, (_, cumulative) in enumerate(snapshot.cumulative()):
        if cumulative >= target:
            return index
    return len(snapshot.bounds)


class TestForensicAttribution:
    def test_fsync_stall_shows_up_as_wal_fsync_wait(self):
        """Slow disk under load → p99 exemplar → /request/trace:<id> →
        a breakdown dominated by ``wal.fsync_wait``."""
        device = FaultyDevice(fsync_stall=0.04)
        db = make_db(log_device=device)
        # Group commit in the background is what turns commit durability
        # into a *wait* on the request thread (and the stall into pure
        # critical-path fsync latency).
        db.start_background(log_interval=0.002)
        server = ServerThread(db, ServiceConfig(exemplars=True)).start()
        obs_server = db.serve_obs()
        try:
            with ServiceClient(port=server.port) as client:
                responses = [
                    client.write(
                        "usertable", "by_key", (k,), {"key": k, "field0": "slow"}
                    )
                    for k in range(6)
                ]
            assert all(r.ok for r in responses)
            assert all(r.trace_id for r in responses)
            assert wait_until(
                lambda: db.request_log.by_trace(responses[-1].trace_id) is not None
            )

            # The latency histogram's p99 bucket names an offender.
            latency = db.obs.get("service.request_seconds")
            p99 = p99_bucket_index(latency.snapshot())
            exemplars = {
                index: ex
                for index, ex in latency.exemplars().items()
                if index >= p99
            }
            assert exemplars, "p99 bucket carries no exemplar"
            trace_hex = exemplars[max(exemplars)].trace_id
            assert trace_hex in {r.trace_id for r in responses}

            # The exemplar's trace id resolves to a breakdown, in-process
            # and over HTTP alike, and the breakdown blames the disk.
            lifecycle = db.request_log.by_trace(trace_hex)
            assert lifecycle is not None
            breakdown = lifecycle.breakdown()
            assert breakdown["wal.fsync_wait"] >= 0.01
            assert breakdown["wal.fsync_wait"] > breakdown.get("engine", 0.0)
            assert lifecycle.dominant_phase() == "wal.fsync_wait"

            status, body = fetch(f"{obs_server.url}/request/trace:{trace_hex}")
            assert status == 200
            payload = json.loads(body)
            assert payload["dominant_phase"] == "wal.fsync_wait"
            assert payload["trace_id"] == trace_hex
            phases = {p["phase"] for p in payload["waterfall"]}
            assert {"slot_wait", "engine", "wal.fsync_wait"} <= phases

            # And the OpenMetrics exposition carries the same trace id as
            # a spec-shaped exemplar on a histogram bucket.
            status, om = fetch(f"{obs_server.url}/metrics?format=openmetrics")
            assert status == 200
            assert f'# {{trace_id="{trace_hex}"}}' in om
        finally:
            server.stop()
            db.close()

    def test_healthy_control_attributes_to_engine(self):
        """Same requests on a healthy synchronous WAL: the breakdown says
        ``engine``, not the disk."""
        db = make_db()
        server = ServerThread(db, ServiceConfig(exemplars=True)).start()
        try:
            with ServiceClient(port=server.port) as client:
                response = client.write(
                    "usertable", "by_key", (3,), {"key": 3, "field0": "fine"}
                )
            assert response.ok and response.trace_id
            assert wait_until(
                lambda: db.request_log.by_trace(response.trace_id) is not None
            )
            lifecycle = db.request_log.by_trace(response.trace_id)
            assert lifecycle is not None
            assert lifecycle.request_id == response.request_id
            assert lifecycle.dominant_phase() == "engine"
            # A synchronous commit is durable before wait_durable runs, so
            # no fsync wait ever lands on the critical path.
            assert lifecycle.breakdown().get("wal.fsync_wait", 0.0) < 0.001
        finally:
            server.stop()
            db.close()

    def test_shed_request_attributes_to_admission(self):
        """A rate-limited request never executes; its lifecycle records
        the admission terminal phase and the shed outcome."""
        db = make_db()
        config = ServiceConfig(tenant_rate=1.0, tenant_burst=1.0)
        server = ServerThread(db, config).start()
        try:
            with ServiceClient(port=server.port) as client:
                first = client.read("usertable", "by_key", (1,))
                second = client.read("usertable", "by_key", (2,))
            assert first.ok
            assert second.shed and second.code == "tenant_rate"
            assert second.request_id is not None

            assert wait_until(
                lambda: db.request_log.get(second.request_id) is not None
            )
            lifecycle = db.request_log.get(second.request_id)
            assert lifecycle is not None
            assert lifecycle.outcome == "tenant_rate"
            assert lifecycle.terminal_phase == "admission"
            assert lifecycle.dominant_phase() == "admission"
            # It never held a slot, so no engine phase was ever stamped.
            assert all(name != "engine" for name, _, _ in lifecycle.phases)
        finally:
            server.stop()
            db.close()
