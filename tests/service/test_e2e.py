"""End-to-end service tests over real sockets.

Covers the acceptance story of the front door: request round-trips on
both engine flavours, explicit sheds under overload at 2x the admission
limit, WAL-failure backpressure (writes rejected, reads served, health
endpoint consistent, recovery un-rejects), deadline enforcement, graceful
drain with zero acknowledged-commit loss, and idempotent metric/thread
teardown.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import ColumnSpec, Database
from repro.arrowfmt.datatypes import INT64, UTF8
from repro.cluster import ShardedDatabase
from repro.fault import FaultSchedule, FaultSpec, FaultyDevice
from repro.service import ServiceClient
from repro.service.loadgen import LoadgenConfig, run_loadgen_sync
from repro.service.server import ServerThread, ServiceConfig

COLUMNS = [ColumnSpec("key", INT64), ColumnSpec("field0", UTF8)]


def make_db(shards=1, keys=50, **db_kwargs):
    if shards > 1:
        db = ShardedDatabase(n_shards=shards, **db_kwargs)
        db.create_table("usertable", COLUMNS, shard_key="key")
    else:
        db = Database(**db_kwargs)
        db.create_table("usertable", COLUMNS)
    db.create_index("usertable", "by_key", ["key"])
    info = db.catalog.get("usertable")
    with db.transaction() as txn:
        for key in range(keys):
            info.table.insert(txn, {0: key, 1: f"v{key}"})
    return db


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


@pytest.mark.parametrize("shards", [1, 2])
class TestRequestRoundTrips:
    def test_all_operations(self, shards):
        db = make_db(shards=shards)
        server = ServerThread(db).start()
        try:
            with ServiceClient(port=server.port) as client:
                assert client.ping().ok
                row = client.read("usertable", "by_key", (7,))
                assert row.meta["rows"] == 1
                assert row.rows() == [("7", "v7")]

                projected = client.read(
                    "usertable", "by_key", (7,), columns=["field0"]
                )
                assert projected.rows() == [("v7",)]

                wrote = client.write(
                    "usertable", "by_key", (7,), {"key": 7, "field0": "w7"}
                )
                assert wrote.ok and wrote.meta["action"] == "updated"
                assert wrote.meta["durable"] is True
                assert client.read("usertable", "by_key", (7,)).rows() == [
                    ("7", "w7")
                ]

                inserted = client.write(
                    "usertable", "by_key", (1000,), {"key": 1000, "field0": "new"}
                )
                assert inserted.meta["action"] == "inserted"

                scanned = client.scan("usertable", limit=10)
                assert scanned.meta["rows"] == 10

                exported = client.export("usertable")
                table = exported.arrow_table()
                assert table.num_rows == 51  # 50 preloaded + 1 inserted

                deleted = client.delete("usertable", "by_key", (1000,))
                assert deleted.ok and deleted.meta["deleted"] == 1
                assert client.read("usertable", "by_key", (1000,)).meta["rows"] == 0
        finally:
            server.stop()
            db.close()

    def test_bad_requests_answer_instead_of_killing_the_connection(self, shards):
        db = make_db(shards=shards)
        server = ServerThread(db).start()
        try:
            with ServiceClient(port=server.port) as client:
                missing = client.read("usertable", "nope", (1,))
                assert missing.code == "bad_request"
                no_table = client.scan("missing_table")
                assert no_table.code == "bad_request"
                # The connection survives request-level errors.
                assert client.ping().ok
        finally:
            server.stop()
            db.close()


class TestOverload:
    def test_2x_admission_limit_sheds_explicitly_with_bounded_p99(self):
        db = make_db(keys=200)
        config = ServiceConfig(
            max_inflight=2, max_queue=4,
            tenant_rate=150.0, tenant_burst=20.0,
        )
        server = ServerThread(db, config).start()
        try:
            result = run_loadgen_sync(LoadgenConfig(
                port=server.port, rate=300.0, duration=1.0,  # 2x the limit
                connections=8, keys=200, deadline_ms=500.0, seed=13,
            ))
            assert result.ok > 0
            assert result.shed > 0
            assert result.errors == 0
            assert result.shed_reasons.get("tenant_rate", 0) > 0
            # Admitted requests stay fast: the queue is bounded, so p99
            # cannot absorb the rejected half of the offered load.
            assert result.p99_ms < 500.0
            assert server.server.unhandled_exceptions == 0
            shed_metric = db.obs.counter(
                "service.shed_total", labels={"reason": "tenant_rate"}
            )
            assert int(shed_metric.value) == result.shed_reasons["tenant_rate"]
        finally:
            server.stop()
            db.close()

    def test_full_queue_sheds_too_busy(self):
        db = make_db()
        config = ServiceConfig(max_inflight=1, max_queue=1)
        server = ServerThread(db, config).start()
        # Slow the engine down deterministically so concurrent requests
        # pile into the bounded queue.
        inner = server.server
        original = inner._do_scan

        def slow_scan(request, lifecycle):
            time.sleep(0.3)
            return original(request, lifecycle)

        inner._do_scan = slow_scan
        try:
            barrier = threading.Barrier(6)
            outcomes = []
            lock = threading.Lock()

            def one_scan():
                with ServiceClient(port=server.port) as client:
                    barrier.wait()
                    response = client.scan("usertable", deadline_ms=5000.0)
                    with lock:
                        outcomes.append(response.code or "ok")

            threads = [threading.Thread(target=one_scan) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert outcomes.count("ok") >= 2  # slot + queue both served
            assert outcomes.count("too_busy") >= 1
            assert set(outcomes) <= {"ok", "too_busy"}
        finally:
            server.stop()
            db.close()

    def test_connection_limit_sheds_at_accept(self):
        db = make_db()
        config = ServiceConfig(max_connections=1)
        server = ServerThread(db, config).start()
        try:
            with ServiceClient(port=server.port) as first:
                assert first.ping().ok
                with ServiceClient(port=server.port) as second:
                    with pytest.raises(Exception):
                        # The server writes one "connections" error frame
                        # and closes; the request then fails.
                        response = second.ping()
                        assert response.code == "connections"
                        raise RuntimeError("shed")
        finally:
            server.stop()
            db.close()


class TestDeadlines:
    def test_queued_request_sheds_when_deadline_expires(self):
        db = make_db()
        config = ServiceConfig(max_inflight=1, max_queue=4)
        server = ServerThread(db, config).start()
        inner = server.server
        original = inner._do_scan

        def slow_scan(request, lifecycle):
            time.sleep(0.4)
            return original(request, lifecycle)

        inner._do_scan = slow_scan
        try:
            started = threading.Event()

            def hog():
                with ServiceClient(port=server.port) as client:
                    started.set()
                    client.scan("usertable", deadline_ms=5000.0)

            thread = threading.Thread(target=hog)
            thread.start()
            started.wait()
            time.sleep(0.05)  # let the hog occupy the single slot
            with ServiceClient(port=server.port) as client:
                response = client.read(
                    "usertable", "by_key", (1,), deadline_ms=50.0
                )
            thread.join()
            assert response.code == "deadline"
            assert response.shed
        finally:
            server.stop()
            db.close()

    def test_expired_deadline_rejected_at_admission(self):
        db = make_db()
        server = ServerThread(db).start()
        inner = server.server
        original = inner._do_scan

        def slow_scan(request, lifecycle):
            time.sleep(0.2)
            return original(request, lifecycle)

        inner._do_scan = slow_scan
        try:
            with ServiceClient(port=server.port) as client:
                # The scan outlives its own deadline; write-out enforcement
                # sheds the stale result.
                response = client.scan("usertable", deadline_ms=100.0)
                assert response.code == "deadline"
        finally:
            server.stop()
            db.close()


class TestWalBackpressure:
    """Satellite: WAL flush failures must flip the service to reject
    writes while reads and the health endpoint stay consistent, and
    recovery must un-reject."""

    def test_backlog_closes_writes_reads_flow_recovery_unrejects(self):
        device = FaultyDevice(
            schedule=FaultSchedule(
                [FaultSpec("fsync", i, "io_error") for i in range(1, 10_000)]
            )
        )
        db = Database(log_device=device)
        db.log_manager.synchronous = False  # commits enqueue; flush is async
        db.log_manager.degrade_after = 10_000_000  # keep degraded-mode out
        db.create_table("usertable", COLUMNS)
        db.create_index("usertable", "by_key", ["key"])
        info = db.catalog.get("usertable")
        with db.transaction() as txn:
            for key in range(20):
                info.table.insert(txn, {0: key, 1: f"v{key}"})
        db.log_manager.start_background(0.005)

        config = ServiceConfig(
            backlog_high=4, backlog_low=0, reopen_after=2,
            health_interval=0.01, durability_timeout=10.0,
        )
        server = ServerThread(db, config).start()
        obs = db.serve_obs(port=0)
        try:
            # Build WAL backlog: commits pile up while every fsync fails.
            for key in range(100, 106):
                with db.transaction() as txn:
                    info.table.insert(txn, {0: key, 1: "backlog"})
            assert wait_until(lambda: not server.server.gate.open)

            with ServiceClient(port=server.port) as client:
                shed = client.write(
                    "usertable", "by_key", (1,), {"key": 1, "field0": "no"}
                )
                assert shed.code == "degraded"
                assert shed.shed
                # Reads keep flowing while writes shed.
                assert client.read("usertable", "by_key", (1,)).rows() == [
                    ("1", "v1")
                ]
                # /healthz tells the same story the gate acted on.
                status, raw = fetch(f"{obs.url}/healthz")
                health = json.loads(raw)
                assert status == 200 and health["status"] == "ok"
                assert health["wal"]["backlog"] >= config.backlog_high
                gate_metric = db.obs.gauge("service.write_gate_open")
                assert gate_metric.value == 0.0

            # Recovery: the device heals, the background flush drains the
            # backlog, hysteresis reopens the gate, writes flow again.
            device.schedule = FaultSchedule()
            assert wait_until(lambda: server.server.gate.open, timeout=10.0)
            with ServiceClient(port=server.port) as client:
                recovered = client.write(
                    "usertable", "by_key", (1,), {"key": 1, "field0": "yes"}
                )
                assert recovered.ok and recovered.meta["durable"] is True
        finally:
            server.stop()
            obs.stop()
            db._obs_server = None
            db.close()

    def test_sticky_degraded_rejects_writes_healthz_503(self):
        device = FaultyDevice(
            schedule=FaultSchedule(
                [FaultSpec("fsync", i, "io_error") for i in range(1, 100)]
            )
        )
        db = Database(log_device=device)
        db.log_manager.synchronous = False
        db.log_manager.degrade_after = 2
        db.create_table("usertable", COLUMNS)
        db.create_index("usertable", "by_key", ["key"])
        info = db.catalog.get("usertable")
        with db.transaction() as txn:
            info.table.insert(txn, {0: 1, 1: "v1"})
        server = ServerThread(db, ServiceConfig(health_interval=0.01)).start()
        obs = db.serve_obs(port=0)
        try:
            # Drive the log into sticky degraded read-only mode.
            for _ in range(3):
                try:
                    db.log_manager.flush()
                except OSError:
                    pass
            assert db.degraded
            assert wait_until(lambda: not server.server.gate.open)
            with ServiceClient(port=server.port) as client:
                shed = client.write(
                    "usertable", "by_key", (1,), {"key": 1, "field0": "x"}
                )
                assert shed.code == "degraded"
                # Reads are still served from the consistent snapshot.
                assert client.read("usertable", "by_key", (1,)).rows() == [
                    ("1", "v1")
                ]
            status, raw = fetch(f"{obs.url}/healthz")
            assert status == 503
            assert json.loads(raw)["status"] == "degraded"
        finally:
            server.stop()
            obs.stop()
            db._obs_server = None
            db.stop_background()


class TestGracefulDrain:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_drain_under_load_loses_no_acknowledged_commit(self, shards):
        db = make_db(shards=shards)
        server = ServerThread(db, ServiceConfig(max_inflight=4)).start()
        acked = []
        stop = threading.Event()

        def writer(base):
            with ServiceClient(port=server.port) as client:
                key = base
                while not stop.is_set():
                    try:
                        response = client.write(
                            "usertable", "by_key", (key,),
                            {"key": key, "field0": f"drain-{key}"},
                        )
                    except Exception:
                        return  # connection closed by the drain: expected
                    if response.ok:
                        acked.append(key)
                    elif response.code == "draining":
                        return
                    key += 1

        threads = [
            threading.Thread(target=writer, args=(10_000 * (i + 1),))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.25)
        port = server.port
        server.stop(timeout=20.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)

        assert len(acked) > 0
        index = db.catalog.index("usertable", "by_key")
        with db.transaction() as txn:
            missing = [k for k in acked if not index.lookup(txn, (k,), [0])]
        assert missing == []
        # After the drain the port no longer accepts connections.
        with pytest.raises(OSError):
            ServiceClient(port=port, timeout=0.5)
        db.close()

    def test_requests_during_drain_get_the_draining_code(self):
        db = make_db()
        server = ServerThread(db).start()
        inner = server.server
        client = ServiceClient(port=server.port)
        try:
            assert client.ping().ok
            inner._draining = True  # what drain() sets before closing
            response = client.read("usertable", "by_key", (1,))
            assert response.code == "draining"
            assert response.shed
        finally:
            inner._draining = False
            client.close()
            server.stop()
            db.close()


class TestMetricsLifecycle:
    """Satellite: ObsServer.stop() and the service must unregister gauges
    and threads idempotently."""

    def test_service_start_stop_leaves_registry_clean(self):
        db = make_db()
        service_gauges = [
            "service.inflight", "service.queue_depth", "service.connections",
            "service.write_gate_open", "service.draining", "service.up",
        ]
        before = threading.active_count()
        server = ServerThread(db).start()
        for name in service_gauges:
            assert db.obs.gauge(name) is not None
        server.stop()
        server.stop()  # idempotent
        for name in service_gauges:
            assert db.obs.unregister(name) is False, name
        assert wait_until(lambda: threading.active_count() <= before)
        # A fresh server re-registers cleanly on the same registry.
        second = ServerThread(db).start()
        with ServiceClient(port=second.port) as client:
            assert client.ping().ok
        second.stop()
        db.close()

    def test_obs_server_stop_is_idempotent_and_unregisters(self):
        db = make_db()
        obs = db.serve_obs(port=0)
        assert db.obs.gauge("obs.server_up").value == 1.0
        db.stop_serving_obs()
        db.stop_serving_obs()  # idempotent
        assert db.obs.unregister("obs.server_up") is False
        # Restart re-registers and still reports up.
        obs2 = db.serve_obs(port=0)
        assert db.obs.gauge("obs.server_up").value == 1.0
        status, _ = fetch(f"{obs2.url}/healthz")
        assert status == 200
        db.close()
