"""Tests for the hysteretic write gate over health reports."""

from repro.obs.recorder import Recorder
from repro.obs.registry import MetricRegistry
from repro.service.gate import HealthGate, wal_backlog

import pytest


def report(status="ok", backlog=0):
    return {"status": status, "wal": {"backlog": backlog}}


def sharded_report(status="ok", backlogs=(0, 0)):
    return {
        "status": status,
        "wal": None,
        "shards": {
            str(i): {"wal": {"backlog": b}} for i, b in enumerate(backlogs)
        },
    }


class TestWalBacklog:
    def test_single_node(self):
        assert wal_backlog(report(backlog=7)) == 7

    def test_sharded_takes_the_worst_shard(self):
        assert wal_backlog(sharded_report(backlogs=(3, 11))) == 11

    def test_logging_disabled_is_zero(self):
        assert wal_backlog({"status": "ok", "wal": None}) == 0
        assert wal_backlog({"status": "ok", "wal": None, "shards": {}}) == 0


class TestHealthGate:
    def test_closes_at_high_watermark(self):
        gate = HealthGate(backlog_high=10, backlog_low=2, reopen_after=2)
        assert gate.observe(report(backlog=9))
        assert not gate.observe(report(backlog=10))
        assert "backlog" in gate.reason

    def test_degraded_status_closes_regardless_of_backlog(self):
        gate = HealthGate(backlog_high=10)
        assert not gate.observe(report(status="degraded", backlog=0))
        assert "degraded" in gate.reason

    def test_hysteresis_no_flap_at_the_boundary(self):
        gate = HealthGate(backlog_high=10, backlog_low=2, reopen_after=2)
        gate.observe(report(backlog=10))
        # Draining below high but above low must NOT reopen.
        assert not gate.observe(report(backlog=9))
        assert not gate.observe(report(backlog=3))
        # At/below low, reopen only after `reopen_after` consecutive checks.
        assert not gate.observe(report(backlog=2))
        assert gate.observe(report(backlog=1))

    def test_unhealthy_check_resets_the_reopen_streak(self):
        gate = HealthGate(backlog_high=10, backlog_low=2, reopen_after=2)
        gate.observe(report(backlog=10))
        assert not gate.observe(report(backlog=0))
        assert not gate.observe(report(backlog=5))  # streak broken
        assert not gate.observe(report(backlog=0))
        assert gate.observe(report(backlog=0))

    def test_sharded_one_bad_shard_closes_the_cluster_gate(self):
        gate = HealthGate(backlog_high=4, backlog_low=0, reopen_after=1)
        assert gate.observe(sharded_report(backlogs=(0, 0)))
        assert not gate.observe(sharded_report(backlogs=(0, 4)))
        assert gate.observe(sharded_report(backlogs=(0, 0)))

    def test_transition_counters_and_events(self):
        registry = MetricRegistry()
        recorder = Recorder(registry=registry)
        gate = HealthGate(
            backlog_high=4, backlog_low=0, reopen_after=1,
            registry=registry, recorder=recorder,
        )
        gate.observe(report(backlog=4))
        gate.observe(report(backlog=4))  # still closed: no second transition
        gate.observe(report(backlog=0))
        closed = registry.counter("service.write_gate_closed_total")
        reopened = registry.counter("service.write_gate_reopened_total")
        assert int(closed.value) == 1
        assert int(reopened.value) == 1
        states = [e.attrs["state"] for e in recorder.events(kind="service.write_gate")]
        assert states == ["closed", "open"]

    def test_gauge_tracks_state_and_unregisters_idempotently(self):
        registry = MetricRegistry()
        gate = HealthGate(backlog_high=4, backlog_low=0, reopen_after=1,
                          registry=registry)
        gauge = registry.gauge("service.write_gate_open")
        assert gauge.value == 1.0
        gate.observe(report(backlog=99))
        assert gauge.value == 0.0
        gate.unregister_metrics()
        gate.unregister_metrics()
        assert registry.unregister("service.write_gate_open") is False

    def test_validates_watermarks(self):
        with pytest.raises(ValueError):
            HealthGate(backlog_high=0)
        with pytest.raises(ValueError):
            HealthGate(backlog_high=4, backlog_low=4)
        with pytest.raises(ValueError):
            HealthGate(reopen_after=0)
