"""Tests for the reporting helpers and the thread-scaling model."""

import pytest

from repro.bench.reporting import format_series, format_table
from repro.bench.scaling_model import MachineModel, ScalingModel


class TestFormatting:
    def test_table_alignment(self):
        text = format_table("T", ["a", "bbb"], [[1, 2.5], [100, 0.001]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "a" in lines[2] and "bbb" in lines[2]
        assert len(lines) == 6

    def test_series_layout(self):
        text = format_series("S", "x", [1, 2], {"y1": [10, 20], "y2": [30, 40]})
        lines = text.splitlines()
        assert "x" in lines[2] and "y1" in lines[2] and "y2" in lines[2]
        assert "10" in lines[4] and "30" in lines[4]

    def test_float_formatting(self):
        text = format_table("T", ["v"], [[1234.5], [0.1234], [3.5], [0.0]])
        assert "1,234" in text or "1,235" in text
        assert "0.1234" in text
        assert "3.50" in text

    def test_empty_rows(self):
        text = format_table("T", ["a"], [])
        assert "a" in text


class TestScalingModel:
    def test_single_worker_identity(self):
        model = ScalingModel(1000.0)
        assert model.throughput(1) == pytest.approx(1000.0)

    def test_near_linear_within_cores(self):
        model = ScalingModel(1000.0)
        t8 = model.throughput(8)
        assert 7000 < t8 < 8000

    def test_cliff_beyond_physical_cores(self):
        model = ScalingModel(1000.0)
        # 20 workers + background threads oversubscribe the 20 cores.
        assert model.throughput(20) < model.throughput(16)

    def test_transform_overhead_scales_rate(self):
        base = ScalingModel(1000.0)
        loaded = ScalingModel(1000.0, transform_overhead=0.1)
        for workers in (1, 4, 16):
            assert loaded.throughput(workers) == pytest.approx(
                base.throughput(workers) * 0.9
            )

    def test_zero_workers(self):
        assert ScalingModel(1000.0).throughput(0) == 0.0

    def test_curve_matches_pointwise(self):
        model = ScalingModel(500.0)
        axis = [1, 2, 4]
        assert model.curve(axis) == [model.throughput(w) for w in axis]

    def test_custom_machine(self):
        tiny = MachineModel(physical_cores=4)
        model = ScalingModel(1000.0, machine=tiny)
        # 4 workers + 2 background threads already oversubscribe 4 cores.
        assert model.throughput(4) < 4000 * 0.9

    def test_efficiency_floor(self):
        model = ScalingModel(1000.0)
        # Even absurd oversubscription never goes below the 30% floor.
        assert model.throughput(60) > 0
