"""Tests for the catalog and the Database facade."""

import pytest

from repro import Database, ColumnSpec, INT64, TransactionAborted, UTF8
from repro.catalog.catalog import Catalog
from repro.errors import CatalogError
from repro.storage.constants import BlockState


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        catalog.create_table("t", [ColumnSpec("id", INT64)])
        assert "t" in catalog
        assert catalog.get("t").name == "t"
        assert catalog.table("t").layout.num_columns == 1

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", [ColumnSpec("id", INT64)])
        with pytest.raises(CatalogError):
            catalog.create_table("t", [ColumnSpec("id", INT64)])

    def test_missing_table(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_index_by_column_name(self):
        catalog = Catalog()
        catalog.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
        index = catalog.create_index("t", "pk", ["id"])
        assert catalog.index("t", "pk") is index
        with pytest.raises(CatalogError):
            catalog.index("t", "nope")

    def test_data_tables_mapping(self):
        catalog = Catalog()
        catalog.create_table("a", [ColumnSpec("x", INT64)])
        catalog.create_table("b", [ColumnSpec("y", INT64)])
        assert set(catalog.data_tables()) == {"a", "b"}


class TestDatabaseFacade:
    def test_transaction_context_manager_commits(self):
        db = Database()
        info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
        with db.transaction() as txn:
            info.table.insert(txn, {0: 1, 1: "x"})
        reader = db.begin()
        assert len(list(info.table.scan(reader))) == 1

    def test_transaction_context_manager_aborts_on_error(self):
        db = Database()
        info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
        with pytest.raises(ValueError):
            with db.transaction() as txn:
                info.table.insert(txn, {0: 1, 1: "x"})
                raise ValueError("boom")
        reader = db.begin()
        assert list(info.table.scan(reader)) == []

    def test_freeze_table_pipeline(self):
        db = Database(cold_threshold_epochs=1)
        info = db.create_table(
            "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 14, watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(info.table.layout.num_slots * 2):
                info.table.insert(txn, {0: i, 1: f"value-{i}"})
        db.freeze_table("t")
        states = info.table.block_states()
        assert states[BlockState.FROZEN] >= 2

    def test_recovery_roundtrip(self):
        db = Database()
        info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
        with db.transaction() as txn:
            for i in range(10):
                info.table.insert(txn, {0: i, 1: f"row{i}"})
        db.quiesce()
        log = db.log_contents()

        fresh = Database()
        fresh.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
        assert fresh.recover_from(log) == 1
        reader = fresh.begin()
        assert len(list(fresh.catalog.table("t").scan(reader))) == 10

    def test_logging_disabled(self):
        db = Database(logging_enabled=False)
        info = db.create_table("t", [ColumnSpec("id", INT64)])
        with db.transaction() as txn:
            info.table.insert(txn, {0: 1})
        assert db.log_contents() == b""

    def test_commit_conflict_surfaces(self):
        db = Database()
        info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
        with db.transaction() as txn:
            slot = info.table.insert(txn, {0: 1, 1: "x"})
        a, b = db.begin(), db.begin()
        assert info.table.update(a, slot, {0: 2})
        assert not info.table.update(b, slot, {0: 3})
        db.commit(a)
        with pytest.raises(TransactionAborted):
            db.commit(b)

    def test_index_through_facade(self):
        db = Database()
        info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
        with db.transaction() as txn:
            info.table.insert(txn, {0: 42, 1: "answer"})
        index = db.create_index("t", "pk", ["id"])
        reader = db.begin()
        [(_, row)] = index.lookup(reader, (42,))
        assert row.get(1) == "answer"
