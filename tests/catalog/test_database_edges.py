"""Edge-case tests for the Database facade."""

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.errors import CatalogError
from repro.storage.constants import BlockState


class TestFacadeEdges:
    def test_freeze_unknown_table(self):
        with pytest.raises(CatalogError):
            Database().freeze_table("ghost")

    def test_freeze_auto_watches(self):
        db = Database(cold_threshold_epochs=1)
        info = db.create_table(
            "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13, watch_cold=False,  # not watched initially
        )
        with db.transaction() as txn:
            for i in range(800):
                info.table.insert(txn, {0: i, 1: "v"})
        db.freeze_table("t")  # must opt the table in on demand
        assert info.table.block_states()[BlockState.FROZEN] >= 1

    def test_quiesce_idempotent(self):
        db = Database()
        db.quiesce()
        db.quiesce()
        assert db.txn_manager.pending_gc_count == 0

    def test_transaction_context_no_double_abort(self):
        db = Database()
        info = db.create_table("t", [ColumnSpec("id", INT64)])
        with pytest.raises(ValueError):
            with db.transaction() as txn:
                info.table.insert(txn, {0: 1})
                db.abort(txn)  # user aborts inside the context...
                raise ValueError("then raises")
        # ...and the context manager must not abort again.
        assert db.txn_manager.active_count == 0

    def test_commit_inside_context_not_repeated(self):
        db = Database()
        info = db.create_table("t", [ColumnSpec("id", INT64)])
        with db.transaction() as txn:
            info.table.insert(txn, {0: 1})
            db.commit(txn)
        assert db.txn_manager.active_count == 0

    def test_metrics_on_empty_database(self):
        metrics = Database().metrics()
        assert metrics["tables"] == 0
        assert metrics["live_tuples"] == 0
        assert metrics["blocks_live"] == 0

    def test_run_maintenance_on_idle_database(self):
        db = Database()
        assert db.run_maintenance(passes=2) == 0

    def test_create_index_on_populated_table_backfills(self):
        db = Database()
        info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
        with db.transaction() as txn:
            for i in range(20):
                info.table.insert(txn, {0: i, 1: f"v{i}"})
        index = db.create_index("t", "late_pk", ["id"])
        assert len(index) == 20

    def test_checkpoint_on_empty_database(self):
        db = Database()
        db.create_table("t", [ColumnSpec("id", INT64)])
        checkpoint = db.checkpoint()
        fresh = Database()
        fresh.create_table("t", [ColumnSpec("id", INT64)])
        assert fresh.recover_with_checkpoint(checkpoint, b"") == 0
