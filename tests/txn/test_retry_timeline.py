"""Retry-chain timelines: the flight recorder, the slow-transaction log,
and the request lifecycle must agree about one retried transaction.

The scenario is the service deadline path end to end: a request-scoped
:class:`RequestLifecycle` is active, ``retry_transaction`` runs a body
that conflicts before committing, and afterwards every observer tells the
same story — the recorder's ``timeline`` reconstructs the whole
begin→retry→retry→commit chain, the slow-txn log captured that chain, and
the lifecycle breakdown charges the backoff sleeps to ``retry.backoff``
rather than to ``engine`` time.
"""

import time

import pytest

from repro import ColumnSpec, Database, INT64, TransactionAborted, UTF8, obs
from repro.obs.slo import RequestLifecycle
from repro.txn.retry import retry_transaction


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


def make_db(**kwargs):
    db = Database(**kwargs)
    db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
    return db


class FixedRng:
    def random(self):
        return 0.0


class FakeClock:
    """A clock whose time advances only when the retry loop sleeps."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, delay):
        self.sleeps.append(delay)
        self.now += delay


class TestRetryChainTimeline:
    def test_timeline_slow_log_and_breakdown_agree(self):
        db = make_db(slow_txn_threshold=0.0)
        table = db.catalog.table("t")
        attempt_ids = []
        backoffs = [0.012, 0.012]  # jitter=0 with a flat base: fixed sleeps

        def body(txn):
            attempt_ids.append(txn.txn_id)
            if len(attempt_ids) <= 2:
                txn.must_abort = True  # write-write conflict, twice
                return None
            return table.insert(txn, {0: 1, 1: "x"})

        lifecycle = RequestLifecycle(11, op="write", tenant="acme")
        with lifecycle.activate():
            with lifecycle.phase("engine"):
                retry_transaction(
                    db,
                    body,
                    retries=4,
                    base_backoff=0.012,
                    max_backoff=0.012,
                    jitter=0.0,
                    rng=FixedRng(),
                    sleep=time.sleep,
                )
        lifecycle.finish("ok")
        lifecycle.close()

        assert len(attempt_ids) == 3

        # The recorder reconstructs the full chain from *any* attempt id.
        for probe in (attempt_ids[0], attempt_ids[-1]):
            timeline = db.recorder.timeline(probe)
            assert timeline["chain"] == attempt_ids
            assert timeline["retries"] == 2
        final = db.recorder.timeline(attempt_ids[-1])
        assert final["status"] == "committed"
        assert final["complete"] is True

        # The txn.retry link events were recorded under the active
        # lifecycle, so each carries the request id (satellite: request
        # ids in flight-recorder events).
        retry_events = [e for e in final["events"] if e["kind"] == "txn.retry"]
        assert len(retry_events) == 2
        assert all(e["request_id"] == 11 for e in retry_events)
        assert [e["attrs"]["prev_txn_id"] for e in retry_events] == attempt_ids[:2]

        # The slow-txn log (threshold 0) captured the committed attempt
        # with the same chain.
        slow = [
            entry
            for entry in db.recorder.slow_transactions()
            if entry["txn_id"] == attempt_ids[-1]
        ]
        assert slow and slow[-1]["chain"] == attempt_ids
        assert slow[-1]["captured_status"] == "committed"

        # The lifecycle breakdown charges the two backoff sleeps to
        # retry.backoff, carved *out of* the engine window: engine
        # exclusive time plus backoff must not exceed the engine wall
        # time, and backoff must cover the sleeps actually taken.
        breakdown = lifecycle.breakdown()
        slept = sum(backoffs)
        assert breakdown["retry.backoff"] >= slept * 0.9
        engine_wall = sum(
            end - start for name, start, end in lifecycle.phases if name == "engine"
        )
        assert breakdown["engine"] + breakdown["retry.backoff"] <= engine_wall + 1e-6
        assert breakdown["engine"] <= engine_wall - slept * 0.9
        assert lifecycle.dominant_phase() == "retry.backoff"

    def test_deadline_stops_retry_chain_early(self):
        db = make_db()
        clock = FakeClock()

        def body(txn):
            txn.must_abort = True  # never resolves

        # Budget fits exactly one backoff step: delay_0 = 0.01 fits the
        # 0.015 deadline, delay_1 = 0.02 would cross it, so the loop must
        # re-raise after the second attempt instead of sleeping on.
        with pytest.raises(TransactionAborted):
            retry_transaction(
                db,
                body,
                retries=5,
                base_backoff=0.01,
                max_backoff=0.05,
                jitter=0.0,
                rng=FixedRng(),
                sleep=clock.sleep,
                deadline=0.015,
                clock=clock,
            )
        assert clock.sleeps == [0.01]

        # Two attempts ran; the recorder linked them into one chain even
        # though the chain ends in an abort.
        retry_events = [e for e in db.recorder.events() if e.kind == "txn.retry"]
        assert len(retry_events) == 1
        aborted_attempt = retry_events[0].txn_id
        timeline = db.recorder.timeline(aborted_attempt)
        assert timeline["retries"] == 1
        assert len(timeline["chain"]) == 2
        assert timeline["status"] == "aborted"

    def test_service_deadline_path_stamps_backoff_phase(self):
        """A deadline-bounded retry under an active lifecycle stamps each
        backoff it *does* take; the skipped final backoff leaves nothing."""
        db = make_db()
        clock = FakeClock()
        lifecycle = RequestLifecycle(12, op="write")

        def body(txn):
            txn.must_abort = True

        with lifecycle.activate():
            with lifecycle.phase("engine"):
                with pytest.raises(TransactionAborted):
                    retry_transaction(
                        db,
                        body,
                        retries=5,
                        base_backoff=0.01,
                        max_backoff=0.05,
                        jitter=0.0,
                        rng=FixedRng(),
                        sleep=clock.sleep,
                        deadline=0.035,
                        clock=clock,
                    )
        lifecycle.finish("aborted")
        lifecycle.close()

        # delays 0.01 and 0.02 fit the 0.035 budget; 0.04 would not.
        assert clock.sleeps == [0.01, 0.02]
        stamped = [name for name, _, _ in lifecycle.phases]
        assert stamped.count("retry.backoff") == 2
