"""Tests for the transaction manager lifecycle."""

import threading

import pytest

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.errors import TransactionAborted
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.txn.manager import TransactionManager
from repro.txn.timestamps import is_aborted
from repro.wal.manager import LogManager


@pytest.fixture
def tm():
    return TransactionManager()


@pytest.fixture
def table():
    layout = BlockLayout([ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
    return DataTable(BlockStore(), layout, "t")


class TestLifecycle:
    def test_commit_stamps_all_records(self, tm, table):
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "a"})
        table.insert(txn, {0: 2, 1: "b"})
        commit_ts = tm.commit(txn)
        assert all(r.timestamp == commit_ts for r in txn.undo_buffer)
        assert txn.commit_ts == commit_ts

    def test_double_commit_rejected(self, tm):
        txn = tm.begin()
        tm.commit(txn)
        with pytest.raises(TransactionAborted):
            tm.commit(txn)

    def test_commit_after_abort_rejected(self, tm):
        txn = tm.begin()
        tm.abort(txn)
        with pytest.raises(TransactionAborted):
            tm.commit(txn)

    def test_must_abort_commit_rolls_back(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "a"})
        txn.must_abort = True
        with pytest.raises(TransactionAborted):
            tm.commit(txn)
        assert table.select(tm.begin(), slot) is None

    def test_abort_marks_records_aborted(self, tm, table):
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "a"})
        tm.abort(txn)
        assert all(is_aborted(r.timestamp) for r in txn.undo_buffer)

    def test_active_tracking(self, tm):
        a = tm.begin()
        b = tm.begin()
        assert tm.active_count == 2
        tm.commit(a)
        tm.abort(b)
        assert tm.active_count == 0


class TestGcInterface:
    def test_oldest_active_start(self, tm):
        a = tm.begin()
        b = tm.begin()
        assert tm.oldest_active_start() == a.start_ts
        tm.commit(a)
        assert tm.oldest_active_start() == b.start_ts
        tm.commit(b)
        assert tm.oldest_active_start() > b.start_ts

    def test_drain_respects_horizon(self, tm):
        a = tm.begin()
        holder = tm.begin()  # keeps the horizon low
        tm.commit(a)
        assert tm.drain_completed(tm.oldest_active_start()) == []
        tm.commit(holder)
        drained = tm.drain_completed(tm.oldest_active_start())
        assert {t.start_ts for t in drained} == {a.start_ts, holder.start_ts}

    def test_pending_gc_count(self, tm):
        txn = tm.begin()
        tm.commit(txn)
        assert tm.pending_gc_count == 1


class TestDurability:
    def test_no_log_manager_is_immediately_durable(self, tm):
        txn = tm.begin()
        tm.commit(txn)
        assert txn.is_durable

    def test_callback_fires_after_flush(self, table):
        log = LogManager(synchronous=False)
        tm = TransactionManager(log_manager=log)
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "a"})
        fired = []
        tm.commit(txn, callback=lambda: fired.append(True))
        assert not fired  # speculative: commit record queued, not flushed
        assert not txn.is_durable
        log.flush()
        assert fired == [True]
        assert txn.is_durable

    def test_read_only_txn_gets_commit_record_but_no_bytes(self, table):
        log = LogManager(synchronous=True)
        tm = TransactionManager(log_manager=log)
        txn = tm.begin()
        tm.commit(txn)
        assert txn.is_durable
        assert log.bytes_written == 0
        assert txn.redo_buffer.commit_record is not None

    def test_wait_durable(self, table):
        log = LogManager(synchronous=False)
        tm = TransactionManager(log_manager=log)
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "a"})
        tm.commit(txn)
        flusher = threading.Timer(0.02, log.flush)
        flusher.start()
        assert txn.wait_durable(timeout=2.0)
        flusher.join()

    def test_abort_is_trivially_durable(self, table):
        log = LogManager(synchronous=False)
        tm = TransactionManager(log_manager=log)
        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "a"})
        tm.abort(txn)
        assert txn.is_durable
        log.flush()
        assert log.bytes_written == 0
