"""Tests for the timestamp scheme (Section 3.1)."""

import threading

from repro.txn.timestamps import (
    ABORTED_TIMESTAMP,
    UNCOMMITTED_FLAG,
    TimestampManager,
    is_aborted,
    is_uncommitted,
    start_of,
)


class TestFlagScheme:
    def test_txn_id_is_start_with_sign_bit(self):
        tsm = TimestampManager()
        start, txn_id = tsm.begin()
        assert txn_id == start | UNCOMMITTED_FLAG
        assert start_of(txn_id) == start

    def test_uncommitted_never_visible_unsigned(self):
        # The core trick: flagged ids compare greater than any start ts.
        tsm = TimestampManager()
        _, txn_id = tsm.begin()
        huge_start = 2**62
        assert txn_id > huge_start

    def test_is_uncommitted(self):
        assert is_uncommitted(5 | UNCOMMITTED_FLAG)
        assert not is_uncommitted(5)

    def test_aborted_sentinel_distinct(self):
        assert is_aborted(ABORTED_TIMESTAMP)
        assert is_uncommitted(ABORTED_TIMESTAMP)  # also never visible
        assert not is_aborted(7 | UNCOMMITTED_FLAG)


class TestTimestampManager:
    def test_monotonic(self):
        tsm = TimestampManager()
        values = [tsm.begin()[0] for _ in range(5)]
        values.append(tsm.commit_timestamp())
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_begin_and_commit_share_counter(self):
        tsm = TimestampManager()
        start, _ = tsm.begin()
        commit = tsm.commit_timestamp()
        start2, _ = tsm.begin()
        assert start < commit < start2

    def test_thread_safety_no_duplicates(self):
        tsm = TimestampManager()
        seen = []
        lock = threading.Lock()

        def worker():
            local = [tsm.begin()[0] for _ in range(300)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 2400
