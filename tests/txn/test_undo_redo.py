"""Tests for undo/redo buffers and their segment accounting."""

import pytest

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.errors import StorageError
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.storage.projection import ProjectedRow
from repro.storage.tuple_slot import TupleSlot
from repro.txn.manager import TransactionManager
from repro.txn.redo import CommitRecord, RedoBuffer, RedoRecord
from repro.txn.undo import UNDO_SEGMENT_SIZE, UndoBuffer, UpdateUndoRecord


@pytest.fixture
def table():
    layout = BlockLayout([ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
    return DataTable(BlockStore(), layout, "t")


@pytest.fixture
def tm():
    return TransactionManager()


def make_update_record(tm, table):
    txn = tm.begin()
    slot = table.insert(txn, {0: 1, 1: "x"})
    tm.commit(txn)
    txn2 = tm.begin()
    record = UpdateUndoRecord(
        txn2, table, slot, ProjectedRow({0: 1}), {}
    )
    return txn2, record


class TestUndoBuffer:
    def test_segments_grow_incrementally(self, tm, table):
        txn, record = make_update_record(tm, table)
        buffer = UndoBuffer()
        per_segment = UNDO_SEGMENT_SIZE // record.modeled_size()
        for _ in range(per_segment + 1):
            buffer.append(record)
        assert buffer.segment_count == 2

    def test_first_append_creates_segment(self, tm, table):
        txn, record = make_update_record(tm, table)
        buffer = UndoBuffer()
        assert buffer.segment_count == 0
        buffer.append(record)
        assert buffer.segment_count == 1

    def test_reverse_iter_is_newest_first(self, tm, table):
        txn = tm.begin()
        slots = [table.insert(txn, {0: i, 1: "v"}) for i in range(3)]
        records = list(txn.undo_buffer)
        assert [r.slot for r in records] == slots
        assert [r.slot for r in txn.undo_buffer.reverse_iter()] == slots[::-1]

    def test_modeled_bytes_accumulate(self, tm, table):
        txn, record = make_update_record(tm, table)
        buffer = UndoBuffer()
        buffer.append(record)
        buffer.append(record)
        assert buffer.modeled_bytes() == 2 * record.modeled_size()

    def test_tiny_segment_rejected(self):
        with pytest.raises(StorageError):
            UndoBuffer(segment_size=8)

    def test_update_record_size_scales_with_columns(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x"})
        narrow = UpdateUndoRecord(txn, table, slot, ProjectedRow({0: 1}), {})
        wide = UpdateUndoRecord(
            txn, table, slot, ProjectedRow({0: 1, 1: "x"}), {}
        )
        assert wide.modeled_size() > narrow.modeled_size()


class TestRedoBuffer:
    def test_records_kept_in_order(self):
        buffer = RedoBuffer()
        for i in range(3):
            buffer.append(
                RedoRecord("t", TupleSlot(0, i), RedoRecord.INSERT, ProjectedRow({0: i}))
            )
        assert [r.slot.offset for r in buffer] == [0, 1, 2]

    def test_incremental_flush_when_segment_full(self):
        buffer = RedoBuffer(segment_size=64)
        big_row = ProjectedRow({0: "x" * 40})
        for _ in range(3):
            buffer.append(RedoRecord("t", TupleSlot(0, 0), RedoRecord.UPDATE, big_row))
        assert buffer.flushed_segments >= 1

    def test_commit_record_sealing(self):
        buffer = RedoBuffer()
        buffer.seal(CommitRecord(42, None, is_read_only=False))
        assert buffer.commit_record.commit_ts == 42
        assert buffer.modeled_bytes() == 16

    def test_read_only_commit_record_costs_nothing(self):
        assert CommitRecord(1, None, is_read_only=True).modeled_size() == 0

    def test_varlen_payload_sizing(self):
        short = RedoRecord("t", TupleSlot(0, 0), RedoRecord.UPDATE, ProjectedRow({0: "ab"}))
        long = RedoRecord("t", TupleSlot(0, 0), RedoRecord.UPDATE, ProjectedRow({0: "ab" * 50}))
        assert long.modeled_size() > short.modeled_size()

    def test_delete_record_has_header_only(self):
        record = RedoRecord("t", TupleSlot(0, 0), RedoRecord.DELETE, None)
        assert record.modeled_size() == 24
