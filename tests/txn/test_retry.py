"""Tests for the bounded backoff-with-jitter retry helper."""

import pytest

from repro import ColumnSpec, Database, DegradedError, INT64, TransactionAborted, UTF8
from repro.txn.retry import retry_transaction


def make_db():
    db = Database()
    db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
    return db


class FixedRng:
    def __init__(self, value=0.5):
        self.value = value
        self.draws = 0

    def random(self):
        self.draws += 1
        return self.value


class TestRetryTransaction:
    def test_commits_and_returns_result(self):
        db = make_db()
        table = db.catalog.table("t")
        slot = retry_transaction(db, lambda txn: table.insert(txn, {0: 1, 1: "x"}))
        reader = db.begin()
        assert table.select(reader, slot).get(0) == 1

    def test_backoff_is_exponential_jittered_and_capped(self):
        db = make_db()
        sleeps = []
        rng = FixedRng(1.0)
        attempts = []

        def body(txn):
            attempts.append(1)
            txn.must_abort = True  # every attempt "conflicts"

        with pytest.raises(TransactionAborted):
            retry_transaction(
                db,
                body,
                retries=4,
                base_backoff=0.01,
                max_backoff=0.05,
                jitter=1.0,
                rng=rng,
                sleep=sleeps.append,
            )
        assert len(attempts) == 5
        # delay_i = min(cap, base * 2^i) * (1 + jitter * 1.0)
        assert sleeps == [0.02, 0.04, 0.08, 0.1]
        assert rng.draws == 4

    def test_retry_counter_and_hook_fire_per_retry(self):
        db = make_db()
        counter = db.obs.counter("workload.txn_retries_total", "test")
        seen = []

        def body(txn):
            if len(seen) < 2:
                txn.must_abort = True
            return "ok"

        result = retry_transaction(
            db,
            body,
            retries=5,
            base_backoff=0.0,
            retry_counter=counter,
            on_retry=lambda attempt: seen.append(attempt),
        )
        assert result == "ok"
        assert seen == [0, 1]
        assert int(counter.value) == 2

    def test_zero_backoff_never_sleeps(self):
        db = make_db()
        sleeps = []

        def body(txn):
            if not sleeps_done[0]:
                sleeps_done[0] = True
                txn.must_abort = True
            return 1

        sleeps_done = [False]
        retry_transaction(db, body, base_backoff=0.0, jitter=0.0, sleep=sleeps.append)
        assert sleeps == []

    def test_degraded_error_is_not_retried(self):
        db = make_db()
        attempts = []

        def body(txn):
            attempts.append(1)
            raise DegradedError("read-only")

        with pytest.raises(DegradedError):
            retry_transaction(db, body, retries=5)
        assert len(attempts) == 1

    def test_user_exception_aborts_and_propagates(self):
        db = make_db()
        table = db.catalog.table("t")

        def body(txn):
            table.insert(txn, {0: 5, 1: "doomed"})
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            retry_transaction(db, body)
        reader = db.begin()
        assert list(table.scan(reader)) == []

    def test_exhaustion_raises_transaction_aborted(self):
        db = make_db()

        def body(txn):
            txn.must_abort = True

        with pytest.raises(TransactionAborted, match="3 attempts"):
            retry_transaction(db, body, retries=2, base_backoff=0.0)

    def test_body_that_aborts_itself_is_final(self):
        db = make_db()
        attempts = []

        def body(txn):
            attempts.append(1)
            db.abort(txn)
            return None

        assert retry_transaction(db, body, retries=5) is None
        assert len(attempts) == 1


class FakeClock:
    """A clock the sleep function advances (deterministic deadlines)."""

    def __init__(self):
        self.now = 100.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestRetryDeadline:
    """The wall-clock budget: stop retrying when the next sleep would
    cross the deadline (never the first attempt)."""

    def _always_conflicts(self, attempts):
        def body(txn):
            attempts.append(1)
            txn.must_abort = True

        return body

    def test_deadline_stops_retries_without_sleeping_past_it(self):
        db = make_db()
        clock = FakeClock()
        attempts = []
        # base 0.04s, no jitter: sleeps would be 0.04, 0.08, ... but the
        # deadline allows only the first.
        with pytest.raises(TransactionAborted):
            retry_transaction(
                db,
                self._always_conflicts(attempts),
                retries=10,
                base_backoff=0.04,
                max_backoff=1.0,
                jitter=0.0,
                sleep=clock.sleep,
                deadline=clock.now + 0.05,
                clock=clock,
            )
        assert len(attempts) == 2  # first attempt + the one retry that fit
        assert clock.sleeps == [0.04]
        assert clock.now <= 100.0 + 0.05

    def test_max_elapsed_is_a_relative_deadline(self):
        db = make_db()
        clock = FakeClock()
        attempts = []
        with pytest.raises(TransactionAborted):
            retry_transaction(
                db,
                self._always_conflicts(attempts),
                retries=10,
                base_backoff=0.04,
                max_backoff=1.0,
                jitter=0.0,
                sleep=clock.sleep,
                max_elapsed=0.13,
                clock=clock,
            )
        # 0.04 + 0.08 fit inside 0.13; the next 0.16 would cross.
        assert clock.sleeps == [0.04, 0.08]
        assert len(attempts) == 3

    def test_tighter_of_deadline_and_max_elapsed_wins(self):
        db = make_db()
        clock = FakeClock()
        attempts = []
        with pytest.raises(TransactionAborted):
            retry_transaction(
                db,
                self._always_conflicts(attempts),
                retries=10,
                base_backoff=0.04,
                jitter=0.0,
                sleep=clock.sleep,
                deadline=clock.now + 0.05,
                max_elapsed=10.0,
                clock=clock,
            )
        assert clock.sleeps == [0.04]

    def test_first_attempt_runs_even_past_deadline(self):
        db = make_db()
        table = db.catalog.table("t")
        clock = FakeClock()
        slot = retry_transaction(
            db,
            lambda txn: table.insert(txn, {0: 9, 1: "late"}),
            deadline=clock.now - 1.0,  # already expired
            clock=clock,
        )
        reader = db.begin()
        assert table.select(reader, slot).get(0) == 9

    def test_expired_deadline_skips_counter_and_hook(self):
        db = make_db()
        clock = FakeClock()
        counter = db.obs.counter("workload.txn_retries_total", "test")
        hooks = []
        attempts = []
        with pytest.raises(TransactionAborted):
            retry_transaction(
                db,
                self._always_conflicts(attempts),
                retries=10,
                base_backoff=1.0,
                max_backoff=1.0,
                jitter=0.0,
                sleep=clock.sleep,
                retry_counter=counter,
                on_retry=hooks.append,
                deadline=clock.now + 0.5,  # no 1s sleep ever fits
                clock=clock,
            )
        assert len(attempts) == 1
        assert int(counter.value) == 0
        assert hooks == []
        assert clock.sleeps == []
