"""Tests for the crash-safe WAL hardening: failure-atomic flush, background
survival, degraded read-only mode, and shutdown semantics."""

import threading
import time

import pytest

from repro import ColumnSpec, Database, DegradedError, INT64, UTF8
from repro.fault import FaultSchedule, FaultSpec, FaultyDevice
from repro.wal.manager import LogManager
from repro.wal.records import decode_stream


def make_db(device=None, degrade_after=5):
    db = Database(log_device=device)
    db.log_manager.degrade_after = degrade_after
    db.log_manager.synchronous = False
    db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
    return db


def insert_txn(db, i):
    table = db.catalog.table("t")
    txn = db.begin()
    table.insert(txn, {0: i, 1: f"row-{i}"})
    db.commit(txn)
    return txn


class TestFailureAtomicFlush:
    def test_failed_flush_persists_nothing_and_fires_no_callbacks(self):
        device = FaultyDevice(
            schedule=FaultSchedule([FaultSpec("write", 1, "short_write")])
        )
        db = make_db(device)
        fired = []
        for i in range(2):
            insert_txn(db, i).on_durable(lambda i=i: fired.append(i))
        with pytest.raises(OSError):
            db.log_manager.flush()
        assert fired == []
        assert db.log_manager.pending_count == 2
        assert db.log_manager.transactions_persisted == 0
        # The partial bytes were rewound: the device holds no torn record.
        assert device.image() == b""

    def test_retry_after_failure_yields_a_clean_ordered_log(self):
        device = FaultyDevice(
            schedule=FaultSchedule([FaultSpec("write", 2, "short_write")])
        )
        db = make_db(device)
        committed = [insert_txn(db, i).commit_ts for i in range(2)]
        with pytest.raises(OSError):
            db.log_manager.flush()
        # A transaction submitted between failure and retry must flush
        # *after* the re-queued batch.
        committed.append(insert_txn(db, 2).commit_ts)
        assert db.log_manager.flush() == 3
        decoded = decode_stream(db.log_contents())
        assert [t.commit_ts for t in decoded] == committed
        assert db.log_manager.consecutive_flush_failures == 0

    def test_callback_error_is_isolated_and_counted(self):
        db = make_db()
        fired = []
        txn1 = insert_txn(db, 1)
        txn2 = insert_txn(db, 2)
        txn1.on_durable(lambda: (_ for _ in ()).throw(RuntimeError("client died")))
        txn1.on_durable(lambda: fired.append("txn1-second"))
        txn2.on_durable(lambda: fired.append("txn2"))
        assert db.log_manager.flush() == 2  # does not raise
        assert fired == ["txn1-second", "txn2"]
        assert int(db.obs.counter("wal.callback_errors_total").value) == 1

    def test_unrewindable_device_degrades_immediately(self):
        class AppendOnly:
            def __init__(self):
                self.calls = 0

            def write(self, data):
                raise OSError("dead disk")

            def flush(self):
                pass

        manager = LogManager(device=AppendOnly(), synchronous=False)
        from repro.txn.context import TransactionContext

        txn = TransactionContext(start_ts=1, txn_id=-1)
        from repro.txn.redo import CommitRecord, RedoRecord
        from repro.storage.projection import ProjectedRow
        from repro.storage.tuple_slot import TupleSlot

        txn.redo_buffer.append(
            RedoRecord("t", TupleSlot(0, 0), "insert", ProjectedRow({0: 1}))
        )
        txn.redo_buffer.seal(CommitRecord(1, None, False))
        txn.commit_ts = 1
        manager.submit(txn)
        with pytest.raises(OSError):
            manager.flush()
        assert manager.degraded
        assert "unrewindable" in manager.degraded_reason


class TestBackgroundThread:
    def test_survives_flush_failures_and_recovers(self):
        device = FaultyDevice(
            schedule=FaultSchedule(
                [FaultSpec("fsync", 1, "io_error"), FaultSpec("fsync", 2, "io_error")]
            )
        )
        db = make_db(device)
        txn = insert_txn(db, 1)
        db.log_manager.start_background(interval=0.001, max_backoff=0.02)
        assert txn.wait_durable(timeout=5.0)
        db.log_manager.stop_background()
        assert db.log_manager.flush_failures >= 1
        assert not db.log_manager.degraded
        assert db.obs.gauge("wal.healthy").value == 1.0

    def test_stop_background_is_idempotent(self):
        db = make_db()
        db.log_manager.start_background(interval=0.001)
        db.log_manager.stop_background()
        db.log_manager.stop_background()  # second call is a no-op
        assert db.log_manager._background is None

    def test_stop_background_from_durability_callback(self):
        """A callback stopping the manager runs on the flusher thread; the
        self-join guard must prevent a deadlock."""
        db = make_db()
        txn = insert_txn(db, 1)
        stopped = threading.Event()

        def stop_from_callback():
            db.log_manager.stop_background()
            stopped.set()

        txn.on_durable(stop_from_callback)
        db.log_manager.start_background(interval=0.001)
        assert stopped.wait(timeout=5.0)
        db.log_manager.stop_background()  # idempotent cleanup


class TestDegradedMode:
    def persistent_failure_db(self):
        specs = [FaultSpec("fsync", i, "io_error") for i in range(1, 30)]
        device = FaultyDevice(schedule=FaultSchedule(specs))
        return make_db(device, degrade_after=2)

    def test_persistent_failures_trip_read_only_mode(self):
        db = self.persistent_failure_db()
        insert_txn(db, 1)
        for _ in range(2):
            with pytest.raises(OSError):
                db.log_manager.flush()
        assert db.degraded
        assert db.health()["status"] == "degraded"
        assert db.health()["wal"]["healthy"] is False
        assert db.obs.gauge("db.degraded").value == 1.0

    def test_degraded_mode_rejects_writers_but_serves_reads(self):
        db = self.persistent_failure_db()
        insert_txn(db, 1)
        for _ in range(2):
            with pytest.raises(OSError):
                db.log_manager.flush()
        table = db.catalog.table("t")
        txn = db.begin()
        with pytest.raises(DegradedError):
            table.insert(txn, {0: 99, 1: "rejected"})
        db.abort(txn)
        reader = db.begin()
        assert sum(1 for _ in table.scan(reader)) == 1
        db.commit(reader)
        assert db.run_maintenance() == 0

    def test_commit_of_in_flight_writer_raises_degraded(self):
        db = self.persistent_failure_db()
        table = db.catalog.table("t")
        txn = db.begin()
        table.insert(txn, {0: 1, 1: "in flight"})
        # The device dies while the writer is open.
        insert_txn(db, 2)
        for _ in range(2):
            with pytest.raises(OSError):
                db.log_manager.flush()
        with pytest.raises(DegradedError):
            db.commit(txn)
        assert not txn.is_active

    def test_degraded_reason_is_sticky(self):
        db = self.persistent_failure_db()
        insert_txn(db, 1)
        for _ in range(2):
            with pytest.raises(OSError):
                db.log_manager.flush()
        first = db.health()["degraded_reason"]
        db.txn_manager.enter_degraded("a later, different reason")
        assert db.health()["degraded_reason"] == first


class TestShutdown:
    def test_close_surfaces_a_failed_final_flush(self):
        specs = [FaultSpec("fsync", i, "io_error") for i in range(1, 10)]
        device = FaultyDevice(schedule=FaultSchedule(specs))
        db = make_db(device)
        insert_txn(db, 1)
        with pytest.raises(OSError):
            db.close()

    def test_close_surfaces_background_drain_error(self):
        specs = [FaultSpec("fsync", i, "io_error") for i in range(1, 50)]
        device = FaultyDevice(schedule=FaultSchedule(specs))
        db = make_db(device, degrade_after=1000)
        db.log_manager.start_background(interval=0.001, max_backoff=0.01)
        insert_txn(db, 1)
        time.sleep(0.02)
        with pytest.raises(OSError):
            db.close()

    def test_clean_close_is_silent(self):
        db = make_db()
        insert_txn(db, 1)
        db.start_background(log_interval=0.001)
        db.close()
        assert db.log_manager.pending_count == 0
