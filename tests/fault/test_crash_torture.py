"""Seeded crash-torture schedules as part of the tier-1 suite.

A small fleet runs per PR (the CI ``crash-torture`` job runs more); every
schedule must uphold the durability invariant — see
:mod:`repro.fault.harness` for its exact statement.
"""

from repro.fault import run_schedule, run_torture
from repro.fault.harness import ScheduleReport


class TestCrashTorture:
    def test_ten_seeded_schedules_uphold_the_invariant(self):
        reports = run_torture(schedules=10, seed=0, txns=30, tpcc_every=0)
        assert [r.violations for r in reports] == [[]] * 10
        # The fleet must actually exercise crashes, not just clean runs.
        assert any(r.crashed for r in reports)
        assert len({r.crash_site for r in reports}) >= 3

    def test_kv_schedule_is_deterministic(self):
        a = run_schedule(3, mode="kv", txns=25)
        b = run_schedule(3, mode="kv", txns=25)
        assert (a.crashed, a.txns_committed, a.txns_acked, a.txns_recovered) == (
            b.crashed,
            b.txns_committed,
            b.txns_acked,
            b.txns_recovered,
        )

    def test_transient_faults_lose_nothing(self):
        report = run_schedule(104, mode="transient", txns=30)
        assert report.ok, report.violations
        assert report.faults_injected > 0
        assert report.txns_recovered == report.txns_committed

    def test_tpcc_schedule_recovers_consistent(self):
        report = run_schedule(9, mode="tpcc", txns=15)
        assert report.ok, report.violations
        assert report.mode == "tpcc"
        assert report.txns_recovered >= report.txns_acked

    def test_report_renders_a_reproducible_line(self):
        report = ScheduleReport(
            seed=42,
            mode="kv",
            crash_site="wal.flush.pre_fsync",
            crashed=True,
            txns_committed=10,
            txns_acked=8,
            txns_recovered=9,
            faults_injected=1,
        )
        line = str(report)
        assert "seed=   42" in line and "ok" in line
        bad = ScheduleReport(
            seed=1, mode="kv", crash_site=None, crashed=False,
            txns_committed=1, txns_acked=1, txns_recovered=0,
            faults_injected=0, violations=["acked transactions lost"],
        )
        assert not bad.ok
        assert "FAIL" in str(bad)


class TestTpccRetryIntegration:
    def test_driver_reports_retries_and_acks(self):
        from repro import Database
        from repro.workloads.tpcc.driver import TpccDriver
        from repro.workloads.tpcc.schema import TpccConfig

        db = Database()
        config = TpccConfig(
            warehouses=1, districts_per_warehouse=2, customers_per_district=12,
            items=40, initial_orders_per_district=8, stock_per_warehouse=40,
            block_size=1 << 12,
        )
        driver = TpccDriver(db, config=config, seed=5)
        driver.setup()
        run = driver.run(transactions_per_worker=20)
        assert run.committed > 0
        # Single-worker runs cannot conflict: zero resubmissions.
        assert run.retried == 0
        assert int(db.obs.counter("workload.txn_retries_total").value) == 0

    def test_conflicting_workers_resubmit_instead_of_failing(self):
        from repro import Database
        from repro.workloads.tpcc.driver import TpccDriver
        from repro.workloads.tpcc.schema import TpccConfig

        db = Database()
        config = TpccConfig(
            warehouses=1, districts_per_warehouse=2, customers_per_district=12,
            items=40, initial_orders_per_district=8, stock_per_warehouse=40,
            block_size=1 << 12,
        )
        driver = TpccDriver(db, config=config, seed=11)
        driver.setup()
        # Two workers on one warehouse: Payment/NewOrder collide on the
        # warehouse and district rows, forcing write-write conflicts.
        run = driver.run(transactions_per_worker=25, workers=2)
        assert run.committed > 0
        assert run.retried == int(
            db.obs.counter("workload.txn_retries_total").value
        )
