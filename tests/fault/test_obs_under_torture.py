"""Flight-recorder forensics under crash injection.

The journal's reason to exist is the post-incident question: *what was the
engine doing when it died?*  These tests crash a live engine at a seeded
WAL crash point and assert the journal supports the investigation — the
crash fire is recorded, it orders correctly against the durability events
around it, and the timelines of transactions committed before the crash
still reconstruct completely.
"""

import json

import pytest

from repro import ColumnSpec, Database, INT64, UTF8, obs
from repro.fault.crashpoints import CrashPointInjector, armed
from repro.fault.device import SimulatedCrash
from repro.obs.recorder import render_chrome_trace


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


def _run_until_crash(db, info, crash_site, skip):
    """Commit+flush until the armed crash point fires; returns the commit
    timestamps that were fully flushed before the crash."""
    flushed = []
    db.log_manager.synchronous = False
    with armed(CrashPointInjector(crash_site, skip=skip)):
        with pytest.raises(SimulatedCrash):
            for i in range(50):
                txn = db.begin()
                info.table.insert(txn, {0: i, 1: f"row-{i}"})
                db.commit(txn)
                db.log_manager.flush()
                flushed.append(txn.txn_id)
    return flushed


def test_crash_fire_journaled_and_ordered_against_wal_events():
    db = Database()
    info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)])
    _run_until_crash(db, info, "wal.flush.pre_fsync", skip=3)

    fires = db.recorder.events(kind="fault.crash_point")
    assert len(fires) == 1
    assert fires[0].attrs["point"] == "wal.flush.pre_fsync"
    # Three flushes completed before the fatal fourth: their fsync events
    # precede the crash fire on the global sequence.
    fsyncs = db.recorder.events(kind="wal.fsync")
    assert len(fsyncs) == 3
    assert all(e.seq < fires[0].seq for e in fsyncs)
    # pre_fsync means the fatal batch never fsynced — no fsync after it.
    assert not [e for e in fsyncs if e.seq > fires[0].seq]
    db.close()


def test_timelines_of_pre_crash_transactions_reconstruct_complete():
    db = Database()
    info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)])
    flushed = _run_until_crash(db, info, "wal.flush.post_fsync", skip=4)
    assert len(flushed) >= 4

    for txn_id in flushed[:4]:  # durably flushed before the crash
        timeline = db.timeline(txn_id)
        assert timeline["complete"], f"txn {txn_id} timeline incomplete"
        assert timeline["status"] == "committed"
        kinds = [e["kind"] for e in timeline["events"]]
        assert kinds[0] == "txn.begin" and kinds[-1] == "txn.commit"
        assert timeline["duration_seconds"] >= 0
    db.close()


def test_chrome_trace_renders_the_incident():
    db = Database()
    info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)])
    _run_until_crash(db, info, "wal.flush.pre_fsync", skip=2)

    doc = json.loads(render_chrome_trace(recorder=db.recorder))
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    names = {e["name"] for e in instants}
    assert "fault.crash_point" in names
    assert "txn.commit" in names and "wal.fsync" in names
    crash = next(e for e in instants if e["name"] == "fault.crash_point")
    assert crash["args"]["point"] == "wal.flush.pre_fsync"
    db.close()


def test_degraded_flip_is_journaled():
    """Repeated flush failures flip degraded mode; the journal must hold
    the failure streak and the flip, in order."""
    import io

    class _BrokenDevice(io.BytesIO):
        def write(self, data):
            raise OSError("device gone")

    db = Database(log_device=_BrokenDevice())
    db.log_manager.synchronous = False
    info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)])
    txn = db.begin()
    info.table.insert(txn, {0: 1, 1: "x"})
    db.commit(txn)
    for _ in range(db.log_manager.degrade_after + 1):
        with pytest.raises(OSError):
            db.log_manager.flush()
        if db.degraded:
            break
    assert db.degraded

    failures = db.recorder.events(kind="wal.flush_failure")
    assert failures
    assert failures[-1].attrs["streak"] >= db.log_manager.degrade_after
    flips = db.recorder.events(kind="wal.degraded")
    assert len(flips) == 1
    assert flips[0].seq > failures[0].seq
    health = db.health()
    assert health["status"] == "degraded"
    assert health["wal"]["backlog"] >= 1  # the unflushable commit
    import contextlib

    with contextlib.suppress(OSError):  # close() drains onto the dead device
        db.close()
