"""Tests for the fault-injecting log device."""

import io
import random

import pytest

from repro.fault import (
    FaultSchedule,
    FaultSpec,
    FaultyDevice,
    SimulatedCrash,
)


def make_device(*specs, seed=7):
    return FaultyDevice(schedule=FaultSchedule(list(specs), seed=seed))


class TestFaultSpec:
    def test_rejects_unknown_op_and_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("read", 1, "io_error")
        with pytest.raises(ValueError):
            FaultSpec("write", 1, "meltdown")

    def test_rejects_partial_fsync(self):
        with pytest.raises(ValueError):
            FaultSpec("fsync", 1, "short_write")

    def test_rejects_zero_based_index(self):
        with pytest.raises(ValueError):
            FaultSpec("write", 0, "io_error")


class TestFaultyDevice:
    def test_clean_writes_pass_through(self):
        device = make_device()
        device.write(b"hello ")
        device.write(b"world")
        device.flush()
        assert device.image() == b"hello world"
        assert device.durable_image() == b"hello world"

    def test_io_error_writes_nothing(self):
        device = make_device(FaultSpec("write", 2, "io_error"))
        device.write(b"aaaa")
        with pytest.raises(OSError):
            device.write(b"bbbb")
        assert device.image() == b"aaaa"
        # The device survives an io_error: the next write goes through.
        device.write(b"cccc")
        assert device.image() == b"aaaacccc"

    def test_short_write_leaves_strict_prefix(self):
        device = make_device(FaultSpec("write", 1, "short_write"))
        with pytest.raises(OSError):
            device.write(b"0123456789")
        assert len(device.image()) < 10
        assert b"0123456789".startswith(device.image())
        assert device.synced_len == 0

    def test_torn_write_kills_the_device(self):
        device = make_device(FaultSpec("write", 1, "torn_write"))
        with pytest.raises(SimulatedCrash):
            device.write(b"0123456789")
        assert device.crashed
        with pytest.raises(OSError):
            device.write(b"more")
        with pytest.raises(OSError):
            device.flush()

    def test_fsync_crash_freezes_the_durable_horizon(self):
        device = make_device(FaultSpec("fsync", 2, "crash"))
        device.write(b"aaaa")
        device.flush()
        device.write(b"bbbb")
        with pytest.raises(SimulatedCrash):
            device.flush()
        assert device.synced_len == 4
        assert device.durable_image() == b"aaaa"

    def test_crash_image_is_durable_prefix_plus_torn_tail(self):
        device = make_device()
        device.write(b"synced")
        device.flush()
        device.write(b"unsynced")
        for seed in range(10):
            image = device.crash_image(random.Random(seed))
            assert image.startswith(b"synced")
            assert b"syncedunsynced".startswith(image)
        # Deterministic for a given rng seed.
        assert device.crash_image(random.Random(3)) == device.crash_image(
            random.Random(3)
        )

    def test_schedule_replays_identically(self):
        def run(seed):
            device = make_device(
                FaultSpec("write", 2, "short_write"), seed=seed
            )
            device.write(b"a" * 16)
            try:
                device.write(b"b" * 16)
            except OSError:
                pass
            return device.image(), device.faults_injected

        assert run(11) == run(11)
        # A different seed cuts the short write at a different length
        # (eventually; seeds 0-19 must not all collide).
        assert len({run(s)[0] for s in range(20)}) > 1

    def test_truncate_clamps_the_synced_horizon(self):
        device = make_device()
        device.write(b"abcdef")
        device.flush()
        device.seek(3)
        device.truncate(3)
        assert device.synced_len == 3
        assert device.durable_image() == b"abc"

    def test_image_requires_memory_base(self):
        class FakeFile(io.RawIOBase):
            def write(self, data):
                return len(data)

        device = FaultyDevice(base=FakeFile())
        with pytest.raises(TypeError):
            device.image()
