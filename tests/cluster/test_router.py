"""Routing unit tests: shard placement of rows, keys, and indexes."""

import pytest

from repro.cluster.router import Router
from repro.errors import CatalogError


@pytest.fixture
def router():
    r = Router(4)
    r.register_table("orders", shard_column=1, shard_column_name="w_id")
    r.register_table("item", None, None)  # replicated
    return r


class TestShardOf:
    def test_integers_route_by_modulo(self, router):
        assert [router.shard_of(v) for v in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_negative_integers_stay_in_range(self, router):
        assert 0 <= router.shard_of(-17) < 4

    def test_bools_route_as_integers(self, router):
        assert router.shard_of(True) == router.shard_of(1)

    def test_strings_and_bytes_route_by_crc32(self, router):
        assert router.shard_of("w-7") == router.shard_of(b"w-7")
        assert 0 <= router.shard_of("anything") < 4

    def test_unhashable_type_raises(self, router):
        with pytest.raises(CatalogError):
            router.shard_of(3.14)


class TestTableRoutes:
    def test_row_routes_by_shard_column(self, router):
        assert router.shard_for_row("orders", {0: 99, 1: 6}) == 6 % 4

    def test_missing_shard_column_raises(self, router):
        with pytest.raises(CatalogError, match="omits shard column"):
            router.shard_for_row("orders", {0: 99})

    def test_replicated_table_has_no_row_shard(self, router):
        assert router.route("item").replicated
        with pytest.raises(CatalogError, match="replicated"):
            router.shard_for_row("item", {0: 1})

    def test_unknown_table_raises(self, router):
        with pytest.raises(CatalogError):
            router.route("nope")

    def test_duplicate_registration_raises(self, router):
        with pytest.raises(CatalogError):
            router.register_table("orders", 0, "other")


class TestIndexRoutes:
    def test_index_routable_iff_leading_column_is_shard_column(self, router):
        assert router.register_index("orders", "pk", ["w_id", "o_id"]) is True
        assert router.register_index("orders", "by_o", ["o_id", "w_id"]) is False
        assert router.is_routable("orders", "pk")
        assert not router.is_routable("orders", "by_o")

    def test_replicated_table_indexes_never_route(self, router):
        assert router.register_index("item", "pk", ["i_id"]) is False

    def test_shard_for_key_uses_leading_component(self, router):
        router.register_index("orders", "pk", ["w_id", "o_id"])
        assert router.shard_for_key("orders", "pk", (6, 123)) == 6 % 4

    def test_shard_for_key_on_unroutable_index_raises(self, router):
        router.register_index("orders", "by_o", ["o_id"])
        with pytest.raises(CatalogError, match="cannot route"):
            router.shard_for_key("orders", "by_o", (1,))
