"""Two-phase commit under coordinator faults and crash points.

Covers the four interesting failure shapes one at a time:

- the commit-decision write fails but rewinds → ``CoordinationAbort``,
  which ``retry_transaction`` treats as retryable;
- crash *before* the decision is forced → recovery presumes abort;
- crash *after* the decision is forced → recovery commits everywhere;
- the decision write fails *and* cannot be rewound → ``TwoPhaseInDoubt``,
  participants stay prepared, the coordinator log is poisoned.
"""

import io
import random

import pytest

from repro import INT64, UTF8, ColumnSpec, CoordinationAbort, TwoPhaseInDoubt
from repro.cluster import ShardedDatabase
from repro.fault import FaultSchedule, FaultSpec, FaultyDevice, SimulatedCrash
from repro.fault.crashpoints import CrashPointInjector, armed
from repro.txn.context import TxnState


def _make_cluster(coordinator_device=None, log_devices=None):
    cluster = ShardedDatabase(
        n_shards=2,
        log_devices=log_devices,
        coordinator_device=coordinator_device,
    )
    cluster.create_table(
        "kv",
        [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)],
        shard_key="id",
    )
    return cluster


def _insert_both_shards(cluster, txn, base=0):
    table = cluster.catalog.table("kv")
    table.insert(txn, {0: base, 1: "a"})  # shard base % 2
    table.insert(txn, {0: base + 1, 1: "b"})  # the other shard


def _rows(cluster):
    reader = cluster.begin()
    rows = {r.get(0) for _, r in cluster.catalog.table("kv").scan(reader)}
    cluster.abort(reader)
    return rows


class TestCoordinationAbort:
    def test_failed_decision_write_aborts_both_shards(self):
        device = FaultyDevice(
            schedule=FaultSchedule([FaultSpec("write", 1, "io_error")], seed=7)
        )
        cluster = _make_cluster(coordinator_device=device)
        txn = cluster.begin()
        _insert_both_shards(cluster, txn)
        with pytest.raises(CoordinationAbort):
            cluster.commit(txn)
        assert txn.state is TxnState.ABORTED
        assert _rows(cluster) == set()
        # The failed commit record was rewound; only the lazy abort
        # decision reached the log.
        assert cluster.coordinator_log.commits_logged == 0
        assert cluster.coordinator_log.aborts_logged == 1
        assert not cluster.coordinator_log.degraded

    def test_retry_transaction_retries_a_coordination_abort(self):
        device = FaultyDevice(
            schedule=FaultSchedule([FaultSpec("write", 1, "io_error")], seed=7)
        )
        cluster = _make_cluster(coordinator_device=device)

        attempts = []

        def body(txn):
            attempts.append(txn)
            _insert_both_shards(cluster, txn)
            return "done"

        # Attempt 1 hits the one-shot io_error at decision time and
        # aborts; attempt 2 commits cleanly.
        assert cluster.run_transaction(body) == "done"
        assert len(attempts) == 2
        assert _rows(cluster) == {0, 1}
        assert cluster.coordinator_log.commits_logged == 1


class TestCrashAroundDecision:
    def _crash_images(self, skip):
        """Run one cross-shard commit that crashes at ``coordinator.decide``
        (``skip`` visits in), and return the crash-time log images."""
        shard_devices = [FaultyDevice(), FaultyDevice()]
        coord_device = FaultyDevice()
        cluster = _make_cluster(
            coordinator_device=coord_device, log_devices=shard_devices
        )
        txn = cluster.begin()
        _insert_both_shards(cluster, txn)
        with pytest.raises(SimulatedCrash):
            with armed(CrashPointInjector("coordinator.decide", skip=skip)):
                cluster.commit(txn)
        rng = random.Random(42)
        return (
            [d.crash_image(rng) for d in shard_devices],
            coord_device.crash_image(rng),
        )

    def _recover(self, shard_logs, coordinator_log):
        fresh = _make_cluster()
        stats = fresh.recover_from(shard_logs, coordinator_log)
        return fresh, stats

    def test_crash_before_decision_presumes_abort(self):
        shard_logs, coord_log = self._crash_images(skip=0)
        fresh, stats = self._recover(shard_logs, coord_log)
        # Both participants were durably prepared, no decision survived.
        assert stats["in_doubt"] == 2
        assert stats["resolved_abort"] == 2
        assert stats["resolved_commit"] == 0
        assert _rows(fresh) == set()

    def test_crash_after_decision_commits_everywhere(self):
        # skip=1 lands on the second ``coordinator.decide`` visit — the
        # commit decision is forced, phase 2 never runs.
        shard_logs, coord_log = self._crash_images(skip=1)
        fresh, stats = self._recover(shard_logs, coord_log)
        assert stats["in_doubt"] == 2
        assert stats["resolved_commit"] == 2
        assert stats["resolved_abort"] == 0
        assert _rows(fresh) == {0, 1}


class _UnrewindableDevice(io.BytesIO):
    """Fails every decision write *and* the rewind that would undo it."""

    def write(self, data):
        raise OSError("decision write failed")

    def seek(self, *args):
        raise OSError("seek failed")


class TestInDoubt:
    def test_unrewindable_decision_failure_poisons_the_coordinator(self):
        cluster = _make_cluster(coordinator_device=_UnrewindableDevice())
        txn = cluster.begin()
        _insert_both_shards(cluster, txn)
        with pytest.raises(TwoPhaseInDoubt):
            cluster.commit(txn)
        # Participants stay prepared for recovery to resolve — nothing
        # was committed, nothing was rolled back.
        assert txn.state is TxnState.PREPARED
        assert all(
            p.state is TxnState.PREPARED for p in txn.participants.values()
        )
        assert cluster.coordinator_log.degraded
        assert cluster.degraded
        health = cluster.health()
        assert health["status"] == "degraded"
        assert not health["coordinator"]["healthy"]
        # The poisoned log refuses further 2PC traffic outright.
        txn2 = cluster.begin()
        _insert_both_shards(cluster, txn2, base=10)
        with pytest.raises(TwoPhaseInDoubt):
            cluster.commit(txn2)
