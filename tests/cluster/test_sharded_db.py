"""ShardedDatabase facade: routing, commit paths, health, recovery."""

import json
import urllib.error
import urllib.request

import pytest

from repro import INT64, UTF8, ColumnSpec, TransactionAborted, obs
from repro.cluster import ShardedDatabase


@pytest.fixture
def cluster():
    c = ShardedDatabase(n_shards=2)
    c.create_table(
        "kv",
        [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)],
        shard_key="id",
    )
    c.create_index("kv", "pk", ["id"], kind="hash")
    c.create_index("kv", "by_id", ["id"], kind="bplus")
    c.create_table("ref", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)])
    yield c
    c.close()


def _insert(cluster, txn, row_id, value="x"):
    return cluster.catalog.table("kv").insert(txn, {0: row_id, 1: value})


class TestCommitPaths:
    def test_single_shard_commit_bypasses_2pc(self, cluster):
        with cluster.transaction() as txn:
            slot = _insert(cluster, txn, 4)  # 4 % 2 == shard 0
        assert slot.shard_id == 0
        assert list(txn.participants) == [0]
        assert txn.gid is None
        assert cluster.coordinator_log.commits_logged == 0

    def test_cross_shard_commit_goes_through_2pc(self, cluster):
        with cluster.transaction() as txn:
            _insert(cluster, txn, 4)  # shard 0
            _insert(cluster, txn, 5)  # shard 1
        assert sorted(txn.participants) == [0, 1]
        assert txn.gid is not None
        assert cluster.coordinator_log.commits_logged == 1
        reader = cluster.begin()
        rows = {r.get(0) for _, r in cluster.catalog.table("kv").scan(reader)}
        cluster.abort(reader)
        assert rows == {4, 5}

    def test_read_only_participants_do_not_vote(self, cluster):
        with cluster.transaction() as txn:
            _insert(cluster, txn, 4)
            _insert(cluster, txn, 5)
        with cluster.transaction() as txn:
            # Writes shard 0, reads shard 1: still the single-shard path.
            _insert(cluster, txn, 6)
            cluster.catalog.index("kv", "pk").lookup(txn, (5,))
        assert sorted(txn.participants) == [0, 1]
        assert txn.gid is None

    def test_abort_rolls_back_every_shard(self, cluster):
        txn = cluster.begin()
        _insert(cluster, txn, 4)
        _insert(cluster, txn, 5)
        cluster.abort(txn)
        reader = cluster.begin()
        assert list(cluster.catalog.table("kv").scan(reader)) == []
        cluster.abort(reader)

    def test_commit_after_abort_raises(self, cluster):
        txn = cluster.begin()
        cluster.abort(txn)
        with pytest.raises(TransactionAborted):
            cluster.commit(txn)

    def test_durability_ack_fires_once_all_shards_flush(self, cluster):
        txn = cluster.begin()
        _insert(cluster, txn, 4)
        _insert(cluster, txn, 5)
        fired = []
        txn.on_durable(lambda: fired.append(True))
        cluster.commit(txn)  # synchronous WAL: durable at commit return
        assert fired == [True]
        assert txn.is_durable


class TestRoutingSurfaces:
    def test_routed_lookup_stays_on_one_shard(self, cluster):
        with cluster.transaction() as txn:
            _insert(cluster, txn, 5)
        reader = cluster.begin()
        hits = cluster.catalog.index("kv", "pk").lookup(reader, (5,))
        assert [slot.shard_id for slot, _ in hits] == [1]
        assert list(reader.participants) == [1]  # no fan-out participant
        cluster.abort(reader)

    def test_range_scan_merges_shards_in_key_order(self, cluster):
        with cluster.transaction() as txn:
            for i in (3, 0, 5, 2):
                _insert(cluster, txn, i)
        reader = cluster.begin()
        keys = [
            k for k, _, _ in cluster.catalog.index("kv", "by_id").range_scan(reader)
        ]
        cluster.abort(reader)
        assert keys == sorted(keys)
        assert len(keys) == 4

    def test_replicated_table_broadcasts_writes(self, cluster):
        with cluster.transaction() as txn:
            cluster.catalog.table("ref").insert(txn, {0: 1, 1: "r"})
        for shard in cluster.shards:
            reader = shard.begin()
            rows = list(shard.catalog.table("ref").scan(reader))
            shard.abort(reader)
            assert len(rows) == 1

    def test_replicated_scan_reads_one_replica(self, cluster):
        with cluster.transaction() as txn:
            cluster.catalog.table("ref").insert(txn, {0: 1, 1: "r"})
        reader = cluster.begin()
        rows = list(cluster.catalog.table("ref").scan(reader))
        cluster.abort(reader)
        assert len(rows) == 1
        assert cluster.catalog.table("ref").live_tuple_count() == 1


class TestHealthAndObs:
    @pytest.fixture(autouse=True)
    def _obs_enabled(self):
        was = obs.is_enabled()
        obs.configure(enabled=True)
        yield
        obs.configure(enabled=was)

    def test_health_aggregates_shards(self, cluster):
        health = cluster.health()
        assert health["status"] == "ok"
        assert sorted(health["shards"]) == ["0", "1"]
        assert health["coordinator"]["healthy"]

    def test_any_degraded_shard_degrades_the_cluster(self, cluster):
        cluster.shards[1].txn_manager.enter_degraded("disk gone")
        health = cluster.health()
        assert health["status"] == "degraded"
        assert health["degraded_shards"] == [1]
        assert "shard 1" in health["degraded_reason"]
        assert cluster.degraded

    def test_healthz_returns_503_when_a_shard_degrades(self, cluster):
        server = cluster.serve_obs()
        cluster.shards[0].txn_manager.enter_degraded("disk gone")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/healthz", timeout=5)
        assert err.value.code == 503
        payload = json.loads(err.value.read().decode())
        assert payload["status"] == "degraded"
        assert payload["degraded_shards"] == [0]

    def test_cluster_metrics_exported(self, cluster):
        with cluster.transaction() as txn:
            _insert(cluster, txn, 4)
            _insert(cluster, txn, 5)
        server = cluster.serve_obs()
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as resp:
            body = resp.read().decode()
        assert "cluster_shards 2" in body
        assert "cluster_txn_cross_shard_total 1" in body
        assert 'cluster_shard_healthy{shard="0"} 1' in body
        assert 'cluster_shard_healthy{shard="1"} 1' in body

    def test_recorder_sees_2pc_events(self, cluster):
        with cluster.transaction() as txn:
            _insert(cluster, txn, 4)
            _insert(cluster, txn, 5)
        kinds = {e.kind for e in cluster.recorder.events()}
        assert {"cluster.prepare", "cluster.decide"} <= kinds


class TestRecovery:
    def test_round_trip_recovers_all_commits(self, cluster):
        with cluster.transaction() as txn:
            _insert(cluster, txn, 0, "a")
        with cluster.transaction() as txn:
            _insert(cluster, txn, 1, "b")
            _insert(cluster, txn, 2, "c")
        cluster.flush_all()

        fresh = ShardedDatabase(n_shards=2)
        fresh.create_table(
            "kv", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)], shard_key="id"
        )
        stats = fresh.recover_from(
            cluster.shard_log_contents(), cluster.coordinator_log_contents()
        )
        assert stats["transactions_replayed"] >= 3  # per-shard participants
        assert stats["in_doubt"] == 0
        reader = fresh.begin()
        rows = {
            r.get(0): r.get(1) for _, r in fresh.catalog.table("kv").scan(reader)
        }
        fresh.abort(reader)
        fresh.close()
        assert rows == {0: "a", 1: "b", 2: "c"}

    def test_shard_log_count_mismatch_raises(self, cluster):
        fresh = ShardedDatabase(n_shards=2)
        fresh.create_table(
            "kv", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)], shard_key="id"
        )
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            fresh.recover_from([b""], b"")
        fresh.close()
