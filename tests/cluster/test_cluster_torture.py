"""Cluster crash-torture smoke: seeded schedules must hold atomicity.

The full 200-schedule sweep runs in CI's ``cluster-torture`` job
(``python -m repro.cluster``); this suite keeps a small always-on sample
in the tier-1 run so a regression in the 2PC recovery path fails fast.
"""

from repro.cluster.harness import run_cluster_schedule, run_cluster_torture


class TestKvSchedules:
    def test_a_dozen_seeded_schedules_hold_atomicity(self):
        reports = run_cluster_torture(schedules=12, seed=0, txns=25)
        assert len(reports) == 12
        failures = [r for r in reports if not r.ok]
        assert failures == [], "\n".join(str(r) for r in failures)
        # The sample must actually exercise the interesting machinery.
        assert any(r.crashed for r in reports)
        assert sum(r.txns_cross_shard for r in reports) > 0

    def test_single_schedule_is_deterministic(self):
        first = run_cluster_schedule(seed=3, txns=25)
        second = run_cluster_schedule(seed=3, txns=25)
        assert first.ok and second.ok
        assert str(first) == str(second)


class TestTpccSchedules:
    def test_tpcc_consistency_at_two_shards(self):
        report = run_cluster_schedule(seed=2, mode="tpcc", txns=20, n_shards=2)
        assert report.ok, str(report)
        assert report.n_shards == 2

    def test_tpcc_consistency_at_four_shards(self):
        report = run_cluster_schedule(seed=5, mode="tpcc", txns=20, n_shards=4)
        assert report.ok, str(report)
        assert report.n_shards == 4
