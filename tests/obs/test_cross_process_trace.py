"""Acceptance: one distributed trace spanning coordinator, shards, workers.

A two-shard cluster with two parallel workers per shard runs a TPC-C
cross-shard payment (2PC) and a parallel scan under one root span.  The
single ``render_chrome_trace()`` document must then contain coordinator
spans, participant-shard 2PC spans, and worker-process spans all linked by
the root's trace id — and the shard's ``/metrics`` exposition must carry
nonzero worker-labeled counter series relayed from the worker processes.
"""

import json
import urllib.request

import pytest

from repro import obs
from repro.cluster import ShardedDatabase
from repro.obs.relay import HAVE_SHARED_MEMORY
from repro.query.scan import TableScanner
from repro.workloads.tpcc.driver import TpccDriver
from repro.workloads.tpcc.schema import TPCC_SHARD_KEYS, TpccConfig
from repro.workloads.tpcc.transactions import TpccTransactions

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    obs.get_tracer().reset()
    yield
    obs.configure(enabled=was)


def _tiny_config() -> TpccConfig:
    return TpccConfig(
        warehouses=2,
        districts_per_warehouse=2,
        customers_per_district=12,
        items=80,
        initial_orders_per_district=8,
        stock_per_warehouse=40,
        payment_remote_rate=1.0,  # every payment pays a remote warehouse
        block_size=1 << 12,
    )


@pytest.fixture
def cluster():
    config = _tiny_config()
    db = ShardedDatabase(
        n_shards=2,
        shard_keys=TPCC_SHARD_KEYS,
        cold_threshold_epochs=1,
        parallel_workers=2,
        logging_enabled=False,
    )
    TpccDriver(db, config).setup()
    yield db, config
    db.close()


def test_cross_shard_payment_and_parallel_scan_share_one_trace(cluster):
    db, config = cluster
    executor = TpccTransactions(db, config, seed=7)

    with obs.span("acceptance.root") as root:
        trace_id = root.trace_id
        assert executor.payment(1), "cross-shard payment must commit"
        # A parallel scan on shard 0's stock table rides the same trace.
        shard = db.shards[0]
        shard.freeze_table("stock")
        table = shard.catalog.table("stock")
        scanner = TableScanner(
            shard.txn_manager, table, pool=shard.parallel_pool
        )
        rows = sum(batch.num_rows for batch in scanner.batches())
        assert rows > 0

    # The pool really dispatched fragments to worker processes.
    completed = shard.obs.counter("parallel.tasks_completed_total").value
    assert completed >= 1, "no fragments reached the workers"

    doc = json.loads(obs.render_chrome_trace(db.recorder))
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    in_trace = [
        e for e in slices if e["args"].get("trace_id") == trace_id
    ]
    names = {e["name"] for e in in_trace}

    # Coordinator 2PC spans.
    assert "cluster.2pc" in names
    assert "cluster.2pc.decide" in names
    # Participant-shard spans: one prepare + one commit_prepared per shard.
    prepares = [e for e in in_trace if e["name"] == "cluster.2pc.prepare"]
    assert {e["args"]["shard"] for e in prepares} == {0, 1}
    assert "cluster.2pc.commit_prepared" in names
    # The scan root and its dispatch joined the same trace.
    assert "query.scan" in names
    # Worker-process spans: rendered on their own process tracks (pid != 1
    # = not the coordinator) and parented into the same trace.
    worker_spans = [
        e
        for e in in_trace
        if e["name"] == "parallel.scan_fragment" and e["pid"] != 1
    ]
    assert worker_spans, "no worker-process spans joined the trace"
    assert all(e["args"].get("parent_id") is not None for e in worker_spans)

    # Worker processes render as named Perfetto process tracks.
    processes = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "coordinator" in processes
    assert processes & {"worker0", "worker1"}

    # The 2PC journal events carry the trace id too, so db.timeline()
    # attaches the remote spans.
    decide = db.recorder.events(kind="cluster.decide")[-1]
    assert decide.attrs["trace_id"] == trace_id


def test_shard_metrics_expose_worker_labeled_series(cluster):
    db, config = cluster
    shard = db.shards[0]
    shard.freeze_table("stock")
    table = shard.catalog.table("stock")
    scanner = TableScanner(shard.txn_manager, table, pool=shard.parallel_pool)
    assert sum(batch.num_rows for batch in scanner.batches()) > 0

    server = shard.serve_obs()
    try:
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as resp:
            body = resp.read().decode()
    finally:
        shard.stop_serving_obs()

    worker_lines = [
        line
        for line in body.splitlines()
        if 'process="worker"' in line and 'worker_id="' in line
        and not line.startswith("#")
    ]
    assert worker_lines, "no worker-labeled series in /metrics"
    nonzero = [
        line
        for line in worker_lines
        if line.startswith("parallel_fragment_blocks_total")
        and float(line.rsplit(" ", 1)[1]) > 0
    ]
    assert nonzero, f"no nonzero relayed worker counters: {worker_lines[:10]}"


def test_cluster_health_reports_worker_pools(cluster):
    db, config = cluster
    shard = db.shards[0]
    shard.freeze_table("stock")
    table = shard.catalog.table("stock")
    scanner = TableScanner(shard.txn_manager, table, pool=shard.parallel_pool)
    assert sum(batch.num_rows for batch in scanner.batches()) > 0

    health = shard.health()
    workers = health["workers"]
    assert workers["configured"] == 2
    assert workers["alive"] == 2
    assert workers["restarts"] == 0
    assert workers["outstanding_tasks"] == 0

    rollup = db.health()["workers"]
    assert rollup is not None
    assert rollup["alive"] >= 2
