"""Database.metrics() is a thin view over the obs registry: keys and semantics
must match the pre-registry implementation exactly."""

import pytest

from repro import ColumnSpec, Database, INT64, UTF8, obs

# The public metrics() contract. Adding a key is fine (append here); renaming
# or dropping one breaks benchmarks and dashboards — this test is the tripwire.
EXPECTED_KEYS = {
    "tables",
    "blocks_live",
    "blocks_freed",
    "block_states",
    "live_tuples",
    "txns_active",
    "txns_pending_gc",
    "gc_passes",
    "gc_records_unlinked",
    "gc_deferred_pending",
    "transform_groups_compacted",
    "transform_tuples_moved",
    "transform_blocks_frozen",
    "transform_freezes_preempted",
    "transform_queue_depth",
    "index_maintenance_ops",
    "wal_bytes_written",
    "wal_flushes",
}


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


def _make_db(**kwargs):
    db = Database(**kwargs)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("name", UTF8)],
        block_size=1 << 14,
        watch_cold=True,
    )
    return db, info


def test_key_stability():
    db, _ = _make_db()
    assert set(db.metrics()) == EXPECTED_KEYS


def test_fresh_database_zero_state():
    db = Database()
    m = db.metrics()
    assert m["tables"] == 0
    assert m["txns_active"] == 0
    assert m["gc_passes"] == 0
    assert m["wal_bytes_written"] == 0
    assert m["transform_queue_depth"] == 0


def test_counts_track_engine_activity():
    db, info = _make_db(cold_threshold_epochs=1)
    rows = info.table.layout.num_slots * 2
    with db.transaction() as txn:
        for i in range(rows):
            info.table.insert(txn, {0: i, 1: f"row-{i}"})
    m = db.metrics()
    assert m["tables"] == 1
    assert m["live_tuples"] == rows
    assert m["txns_active"] == 0
    assert m["wal_bytes_written"] == db.log_manager.bytes_written > 0
    assert m["wal_flushes"] == db.log_manager.flush_count >= 1

    before = db.metrics()["gc_passes"]
    db.gc.run()
    assert db.metrics()["gc_passes"] == before + 1

    db.freeze_table("t")
    m = db.metrics()
    assert m["transform_blocks_frozen"] == db.transformer.stats.blocks_frozen > 0
    assert m["gc_records_unlinked"] == db.gc.stats.records_unlinked


def test_txns_active_is_live():
    db, info = _make_db()
    txn = db.begin()
    assert db.metrics()["txns_active"] == 1
    db.commit(txn)
    assert db.metrics()["txns_active"] == 0


def test_transform_queue_depth_is_live():
    db, info = _make_db(cold_threshold_epochs=1)
    with db.transaction() as txn:
        for i in range(info.table.layout.num_slots * 2):
            info.table.insert(txn, {0: i, 1: "x"})
    # Advance epochs without touching the blocks so the observer queues them.
    for _ in range(3):
        db.gc.run()
    depth = db.metrics()["transform_queue_depth"]
    assert depth == len(db.access_observer.queue)
    assert depth >= 1
    db.transformer.process_queue()
    assert db.metrics()["transform_queue_depth"] == 0


def test_checkpoint_resets_wal_bytes():
    db, info = _make_db()
    with db.transaction() as txn:
        info.table.insert(txn, {0: 1, 1: "a"})
    assert db.metrics()["wal_bytes_written"] > 0
    db.checkpoint()
    assert db.metrics()["wal_bytes_written"] == 0
    assert db.metrics()["wal_bytes_written"] == db.log_manager.bytes_written


def test_logging_disabled_reports_zero_wal():
    db = Database(logging_enabled=False)
    info = db.create_table("t", [ColumnSpec("id", INT64)])
    with db.transaction() as txn:
        info.table.insert(txn, {0: 1})
    m = db.metrics()
    assert m["wal_bytes_written"] == 0
    assert m["wal_flushes"] == 0


def test_metrics_backed_by_per_db_registry():
    a, info_a = _make_db()
    b, _ = _make_db()
    with a.transaction() as txn:
        info_a.table.insert(txn, {0: 1, 1: "a"})
    assert a.obs.counter("txn.commit_total").value >= 1
    assert b.obs.counter("txn.commit_total").value == 0
