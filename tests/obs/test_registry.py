"""Registry primitives: sharded counters, gauges, fixed-bucket histograms."""

import threading

import pytest

from repro import obs
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)


@pytest.fixture(autouse=True)
def _obs_enabled():
    """Every test in this module runs with recording on, and restores it."""
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


class TestCounter:
    def test_concurrent_increments_sum_exactly(self):
        """≥8 real threads hammering one counter lose no increments."""
        counter = Counter("t.hits_total")
        threads_n, per_thread = 10, 25_000
        barrier = threading.Barrier(threads_n)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == threads_n * per_thread

    def test_concurrent_mixed_amounts(self):
        counter = Counter("t.bytes")
        def worker(amount):
            for _ in range(10_000):
                counter.inc(amount)
        threads = [threading.Thread(target=worker, args=(a,)) for a in range(1, 9)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 10_000 * sum(range(1, 9))

    def test_reset(self):
        counter = Counter("t.n_total")
        counter.inc(5)
        counter.reset()
        assert counter.value == 0
        counter.inc(2)
        assert counter.value == 2

    def test_disabled_is_noop(self):
        counter = Counter("t.n_total")
        counter.inc(3)
        obs.configure(enabled=False)
        counter.inc(100)
        assert counter.value == 3
        obs.configure(enabled=True)
        counter.inc()
        assert counter.value == 4

    def test_dead_thread_contribution_survives(self):
        counter = Counter("t.n_total")
        t = threading.Thread(target=lambda: counter.inc(7))
        t.start(); t.join()
        counter.inc(1)
        assert counter.value == 8

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("Bad Name!")
        with pytest.raises(ValueError):
            Counter(".leading.dot")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("t.depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_callback_gauge_tracks_live_state(self):
        items = []
        gauge = Gauge("t.depth", callback=lambda: len(items))
        assert gauge.value == 0
        items.extend([1, 2, 3])
        assert gauge.value == 3


class TestHistogram:
    def test_bucket_boundaries_le_semantics(self):
        """A value equal to an upper bound lands in that bucket (le=...)."""
        hist = Histogram("t.lat_seconds", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 5.1, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.counts == [2, 2, 2, 2]  # le=1, le=2, le=5, +Inf
        assert snap.count == 8
        assert snap.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 5.1 + 100.0)
        cumulative = snap.cumulative()
        assert cumulative == [(1.0, 2), (2.0, 4), (5.0, 6), (float("inf"), 8)]

    def test_default_buckets_sorted_and_mean(self):
        hist = Histogram("t.lat_seconds")
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert hist.snapshot().mean is None
        hist.observe(0.25)
        hist.observe(0.75)
        assert hist.snapshot().mean == pytest.approx(0.5)

    def test_concurrent_observations_sum_exactly(self):
        hist = Histogram("t.lat_seconds", buckets=(0.5,))
        def worker():
            for _ in range(10_000):
                hist.observe(0.25)
        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = hist.snapshot()
        assert snap.count == 80_000
        assert snap.counts[0] == 80_000

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("t.x_seconds", buckets=())
        with pytest.raises(ValueError):
            Histogram("t.x_seconds", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t.x_seconds", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a.b_total") is reg.counter("a.b_total")
        assert reg.gauge("a.depth") is reg.gauge("a.depth")
        assert reg.histogram("a.lat_seconds") is reg.histogram("a.lat_seconds")

    def test_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("a.b_total")
        with pytest.raises(TypeError):
            reg.gauge("a.b_total")
        with pytest.raises(TypeError):
            reg.histogram("a.b_total")

    def test_iteration_is_name_sorted(self):
        reg = MetricRegistry()
        reg.counter("z.last_total")
        reg.gauge("a.first")
        reg.histogram("m.mid_seconds")
        assert [i.name for i in reg] == ["a.first", "m.mid_seconds", "z.last_total"]
        assert len(reg) == 3
        assert "a.first" in reg and "nope" not in reg

    def test_reset_zeroes_counters_and_histograms(self):
        reg = MetricRegistry()
        reg.counter("a.n_total").inc(9)
        reg.histogram("a.lat_seconds").observe(0.1)
        reg.gauge("a.depth").set(4)
        live = reg.gauge("a.live", callback=lambda: 11)
        reg.reset()
        assert reg.counter("a.n_total").value == 0
        assert reg.histogram("a.lat_seconds").snapshot().count == 0
        assert reg.gauge("a.depth").value == 0
        assert live.value == 11  # callback gauges are live state, not samples

    def test_registries_are_isolated(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("x.n_total").inc(5)
        assert b.counter("x.n_total").value == 0
