"""Flight recorder: journal semantics, timelines, slow log, Chrome trace."""

import json

import pytest

from repro import ColumnSpec, Database, INT64, UTF8, obs
from repro.errors import TransactionAborted
from repro.obs.recorder import Event, Recorder, broadcast, render_chrome_trace
from repro.obs.registry import MetricRegistry
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


@pytest.fixture
def recorder():
    # local_buffer=1 spills every event immediately: deterministic reads.
    return Recorder(capacity=64, registry=MetricRegistry(), local_buffer=1)


# ---------------------------------------------------------------------- #
# journal semantics                                                       #
# ---------------------------------------------------------------------- #


def test_record_and_read_back(recorder):
    recorder.record("txn.begin", txn_id=7, start_ts=123)
    recorder.record("wal.fsync", offset=100, bytes=50)
    events = recorder.events()
    assert [e.kind for e in events] == ["txn.begin", "wal.fsync"]
    assert events[0].txn_id == 7
    assert events[0].attrs == {"start_ts": 123}
    assert events[0].component == "txn"
    assert events[0].seq < events[1].seq
    assert events[0].ts <= events[1].ts


def test_events_filters_compose(recorder):
    recorder.record("txn.begin", txn_id=1)
    recorder.record("txn.commit", txn_id=1)
    recorder.record("txn.begin", txn_id=2)
    recorder.record("block.frozen", block_id=9)
    assert len(recorder.events(component="txn")) == 3
    assert len(recorder.events(kind="txn.begin")) == 2
    assert len(recorder.events(txn_id=1)) == 2
    assert len(recorder.events(block_id=9)) == 1
    assert [e.kind for e in recorder.events(component="txn", txn_id=1)] == [
        "txn.begin",
        "txn.commit",
    ]


def test_limit_keeps_newest(recorder):
    for i in range(10):
        recorder.record("gc.pass", epoch=i)
    kept = recorder.events(limit=3)
    assert [e.attrs["epoch"] for e in kept] == [7, 8, 9]


def test_thread_local_buffer_visible_before_spill():
    recorder = Recorder(capacity=64, registry=MetricRegistry(), local_buffer=32)
    recorder.record("txn.begin", txn_id=1)
    # Not yet spilled into the ring, but reads must still see it.
    assert len(recorder) == 1
    assert recorder.events()[0].txn_id == 1


def test_drop_oldest_with_exact_accounting():
    registry = MetricRegistry()
    recorder = Recorder(capacity=8, registry=registry, local_buffer=1)
    for i in range(20):
        recorder.record("gc.pass", epoch=i)
    events = recorder.events()
    assert len(events) == 8
    # Newest survive, oldest evicted.
    assert [e.attrs["epoch"] for e in events] == list(range(12, 20))
    assert recorder.events_dropped == 12
    assert registry.counter("obs.events_dropped_total").value == 12


def test_disabled_records_nothing(recorder):
    obs.configure(enabled=False)
    recorder.record("txn.begin", txn_id=1)
    obs.configure(enabled=True)
    assert len(recorder) == 0


def test_clear_empties_journal_and_slow_log(recorder):
    recorder.slow_txn_threshold = 0.0
    recorder.record("txn.begin", txn_id=1)
    recorder.note_txn_complete(1, 1.0, "committed")
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.slow_transactions() == []


def test_event_to_dict_omits_absent_ids():
    event = Event(1, 0.5, "gc.pass", "MainThread", None, None, None)
    assert event.to_dict() == {
        "seq": 1,
        "ts": 0.5,
        "kind": "gc.pass",
        "thread": "MainThread",
    }
    event = Event(2, 0.6, "txn.commit", "MainThread", 7, 3, {"writes": 2})
    d = event.to_dict()
    assert d["txn_id"] == 7 and d["block_id"] == 3 and d["attrs"] == {"writes": 2}


def test_broadcast_reaches_live_recorders(recorder):
    other = Recorder(capacity=16, registry=MetricRegistry(), local_buffer=1)
    broadcast("block.reheated", block_id=4, from_state="FROZEN")
    for r in (recorder, other):
        hits = r.events(kind="block.reheated")
        assert len(hits) == 1 and hits[0].block_id == 4


def test_capacity_validation():
    with pytest.raises(ValueError):
        Recorder(capacity=0)
    with pytest.raises(ValueError):
        Recorder(local_buffer=0)


# ---------------------------------------------------------------------- #
# timelines                                                               #
# ---------------------------------------------------------------------- #


def test_timeline_single_attempt(recorder):
    recorder.record("txn.begin", txn_id=5, start_ts=10)
    recorder.record("wal.flush", txns=1)
    recorder.record("txn.commit", txn_id=5, commit_ts=11)
    tl = recorder.timeline(5, tracer=Tracer())
    assert tl["chain"] == [5]
    assert tl["retries"] == 0
    assert tl["status"] == "committed"
    assert tl["complete"] is True
    assert tl["duration_seconds"] >= 0
    assert [e["kind"] for e in tl["events"]] == ["txn.begin", "txn.commit"]


def test_timeline_follows_retry_chain_both_directions(recorder):
    recorder.record("txn.begin", txn_id=1)
    recorder.record("txn.abort", txn_id=1, conflict=True)
    recorder.record("txn.begin", txn_id=2)
    recorder.record("txn.retry", txn_id=2, prev_txn_id=1, attempt=1)
    recorder.record("txn.abort", txn_id=2, conflict=True)
    recorder.record("txn.begin", txn_id=3)
    recorder.record("txn.retry", txn_id=3, prev_txn_id=2, attempt=2)
    recorder.record("txn.commit", txn_id=3)
    # Asking for any attempt reconstructs the whole chain.
    for attempt in (1, 2, 3):
        tl = recorder.timeline(attempt, tracer=Tracer())
        assert tl["chain"] == [1, 2, 3]
        assert tl["retries"] == 2
        assert tl["status"] == "committed"
        assert tl["complete"] is True


def test_timeline_incomplete_transaction(recorder):
    recorder.record("txn.begin", txn_id=9)
    tl = recorder.timeline(9, tracer=Tracer())
    assert tl["status"] == "unknown"
    assert tl["complete"] is False
    assert tl["end_ts"] is None and tl["duration_seconds"] is None


def test_timeline_attaches_overlapping_spans(recorder):
    tracer = Tracer()
    recorder.record("txn.begin", txn_id=4)
    with tracer.span("wal.flush"):
        pass
    recorder.record("txn.commit", txn_id=4)
    tl = recorder.timeline(4, tracer=tracer)
    assert [s["name"] for s in tl["spans"]] == ["wal.flush"]
    span = tl["spans"][0]
    assert span["duration_seconds"] >= 0 and span["thread"]


def test_slow_log_captures_only_above_threshold():
    recorder = Recorder(
        capacity=64,
        registry=MetricRegistry(),
        slow_txn_threshold=0.5,
        local_buffer=1,
    )
    recorder.record("txn.begin", txn_id=1)
    recorder.record("txn.commit", txn_id=1)
    recorder.note_txn_complete(1, 0.1, "committed")  # fast: not captured
    recorder.note_txn_complete(1, 0.9, "committed")  # slow: captured
    slow = recorder.slow_transactions()
    assert len(slow) == 1
    assert slow[0]["captured_duration_seconds"] == 0.9
    assert slow[0]["captured_status"] == "committed"


def test_slow_log_bounded():
    recorder = Recorder(
        capacity=64,
        registry=MetricRegistry(),
        slow_txn_threshold=0.0,
        slow_log_capacity=3,
        local_buffer=1,
    )
    for txn_id in range(6):
        recorder.record("txn.begin", txn_id=txn_id)
        recorder.note_txn_complete(txn_id, 1.0, "committed")
    slow = recorder.slow_transactions()
    assert [t["txn_id"] for t in slow] == [3, 4, 5]


# ---------------------------------------------------------------------- #
# Chrome trace                                                            #
# ---------------------------------------------------------------------- #


def test_chrome_trace_document_shape(recorder):
    tracer = Tracer()
    with tracer.span("gc.pass"):
        recorder.record("gc.pass", epoch=1)
    recorder.record("txn.commit", txn_id=2, block_id=None)
    doc = json.loads(render_chrome_trace(recorder=recorder, tracer=tracer))
    assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert phases == {"X", "i", "M"}
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert slices[0]["name"] == "gc.pass" and slices[0]["dur"] >= 0
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    by_name = {e["name"]: e for e in instants}
    assert by_name["txn.commit"]["args"]["txn_id"] == 2
    # Every timestamp is relative to the earliest — all non-negative.
    assert all(e.get("ts", 0) >= 0 for e in doc["traceEvents"])
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert all(e["name"] in ("thread_name", "process_name") for e in meta)
    # Single-process capture: everything lives on the coordinator track.
    assert {e["pid"] for e in doc["traceEvents"]} == {1}


# ---------------------------------------------------------------------- #
# engine integration                                                      #
# ---------------------------------------------------------------------- #


def test_database_journals_commit_abort_and_retry():
    db = Database(slow_txn_threshold=0.0)
    info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)])
    with db.transaction() as txn:
        info.table.insert(txn, {0: 1, 1: "a"})
        committed = txn.txn_id
    doomed = db.begin()
    info.table.insert(doomed, {0: 2, 1: "b"})
    db.abort(doomed)

    tl = db.timeline(committed)
    assert tl["status"] == "committed" and tl["complete"]
    commit_event = next(e for e in tl["events"] if e["kind"] == "txn.commit")
    assert commit_event["attrs"]["writes"] == 1
    assert commit_event["attrs"]["duration_seconds"] >= 0

    aborted_tl = db.timeline(doomed.txn_id)
    assert aborted_tl["status"] == "aborted"

    # slow_txn_threshold=0.0 captures every completed transaction.
    assert len(db.recorder.slow_transactions()) >= 2
    db.close()


def test_retry_chain_recorded_on_conflict():
    db = Database()
    attempts = []

    def body(txn):
        attempts.append(txn.txn_id)
        if len(attempts) == 1:
            # Model losing a write-write conflict on the first attempt.
            raise TransactionAborted("write-write conflict")
        return "done"

    assert db.run_transaction(body, retries=3) == "done"
    assert len(attempts) == 2
    tl = db.timeline(attempts[0])
    assert attempts[1] in tl["chain"]
    assert tl["retries"] >= 1
    assert tl["status"] == "committed"
    db.close()


def test_wal_gc_and_export_events_present():
    db = Database(cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)],
        block_size=1 << 14,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(info.table.layout.num_slots + 1):
            info.table.insert(txn, {0: i, 1: f"row-{i}"})
    db.quiesce()
    db.freeze_table("t")
    from repro.export import TableExporter

    TableExporter(db.txn_manager, info.table, registry=db.obs).export("arrow-wire")

    kinds = {e.kind for e in db.recorder.events()}
    assert "wal.flush" in kinds
    assert "wal.fsync" in kinds
    assert "gc.pass" in kinds
    assert "block.queued_cold" in kinds
    assert "block.cooling" in kinds
    assert "block.frozen" in kinds
    assert "export.serve" in kinds

    cold = db.recorder.events(kind="block.queued_cold")[0]
    assert cold.attrs["idle_epochs"] >= 1 and cold.attrs["table"] == "t"
    frozen = db.recorder.events(kind="block.frozen")[0]
    assert frozen.attrs["format"] == "gather" and frozen.block_id is not None
    db.close()


def test_block_reheat_event_on_frozen_write():
    db = Database(cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)],
        block_size=1 << 14,
        watch_cold=True,
    )
    with db.transaction() as txn:
        first = None
        for i in range(info.table.layout.num_slots + 1):
            slot = info.table.insert(txn, {0: i, 1: f"row-{i}"})
            if first is None:
                first = slot  # lives in the block that will freeze
    db.freeze_table("t")
    with db.transaction() as txn:
        info.table.update(txn, first, {1: "reheat"})
    reheats = db.recorder.events(kind="block.reheated")
    assert reheats and reheats[0].attrs["from_state"] == "FROZEN"
    db.close()


def test_crash_point_fire_is_journaled(tmp_path):
    from repro.fault.crashpoints import CrashPointInjector, armed, crash_point
    from repro.fault.device import SimulatedCrash

    db = Database()  # a live recorder for broadcast to land in
    with armed(CrashPointInjector("wal.flush.pre_fsync")):
        with pytest.raises(SimulatedCrash):
            crash_point("wal.flush.pre_fsync")
    fires = db.recorder.events(kind="fault.crash_point")
    assert fires and fires[0].attrs["point"] == "wal.flush.pre_fsync"
    db.close()
