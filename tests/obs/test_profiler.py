"""Sampling profiler: stack folding, sampling, and collapsed rendering."""

import threading
import time

from repro.obs.profiler import (
    SamplingProfiler,
    fold_frame,
    profile,
    render_collapsed,
)


def _busy_loop(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(200))


def test_fold_frame_is_root_first():
    import sys

    frame = sys._getframe()
    folded = fold_frame(frame)
    parts = folded.split(";")
    # The leaf (this test function) is last, callers precede it.
    assert parts[-1].endswith("test_fold_frame_is_root_first")
    assert all(":" in part for part in parts)
    # Basenames only — no path separators leak into the fold.
    assert "/" not in folded


def test_render_collapsed_hottest_first():
    text = render_collapsed({"main;a:f": 3, "main;b:g": 10, "main;c:h": 1})
    lines = text.splitlines()
    assert lines[0] == "main;b:g 10"
    assert lines[-1] == "main;c:h 1"
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts, reverse=True)


def test_render_collapsed_empty_is_empty_string():
    assert render_collapsed({}) == ""


def test_sampler_catches_a_busy_thread():
    stop = threading.Event()
    worker = threading.Thread(target=_busy_loop, args=(stop,), name="busy-bee")
    worker.start()
    try:
        stacks = profile(seconds=0.25, interval=0.005).snapshot()
    finally:
        stop.set()
        worker.join()
    assert stacks, "no samples collected"
    busy = {s: n for s, n in stacks.items() if s.startswith("busy-bee;")}
    assert busy, f"busy thread never sampled: {sorted(stacks)}"
    assert any("_busy_loop" in stack for stack in busy)


def test_sampler_excludes_its_own_thread():
    stacks = profile(seconds=0.1, interval=0.005).snapshot()
    assert not any(stack.startswith("repro-profiler;") for stack in stacks)


def test_top_of_stack_names_the_leaf_frame():
    stop = threading.Event()
    worker = threading.Thread(target=_busy_loop, args=(stop,), name="busy-top")
    worker.start()
    profiler = SamplingProfiler(interval=0.005)
    profiler.start()
    try:
        time.sleep(0.2)
        top = profiler.top_of_stack("busy-top")
    finally:
        profiler.stop()
        stop.set()
        worker.join()
    assert top is not None
    assert "_busy_loop" in top or "genexpr" in top


def test_drain_swaps_out_accumulated_stacks():
    stop = threading.Event()
    worker = threading.Thread(target=_busy_loop, args=(stop,), name="busy-drain")
    worker.start()
    profiler = SamplingProfiler(interval=0.005)
    profiler.start()
    try:
        time.sleep(0.15)
        first = profiler.drain()
        assert first
        # Everything drained: the live dict starts over.
        assert sum(profiler.snapshot().values()) < sum(first.values()) + 5
    finally:
        profiler.stop()
        stop.set()
        worker.join()


def test_start_stop_idempotent():
    profiler = SamplingProfiler(interval=0.01)
    profiler.start()
    profiler.start()  # no second thread
    assert profiler.running
    profiler.stop()
    profiler.stop()
    assert not profiler.running
