"""HTTP monitoring server: endpoint payloads, filters, and error handling."""

import json
import urllib.error
import urllib.request

import pytest

from repro import ColumnSpec, Database, INT64, UTF8, obs
from repro.obs.server import PROMETHEUS_CONTENT_TYPE


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


@pytest.fixture
def served_db():
    db = Database()
    info = db.create_table("t", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)])
    with db.transaction() as txn:
        info.table.insert(txn, {0: 1, 1: "hello"})
        committed = txn.txn_id
    server = db.serve_obs()
    yield db, server, committed
    db.close()


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


def _get_json(server, path):
    status, _, body = _get(server, path)
    return status, json.loads(body)


def test_serve_obs_is_idempotent(served_db):
    db, server, _ = served_db
    assert db.serve_obs() is server
    assert server.url.startswith("http://127.0.0.1:")
    assert server.port > 0


def test_metrics_endpoint(served_db):
    _, server, _ = served_db
    status, content_type, body = _get(server, "/metrics")
    assert status == 200
    assert content_type == PROMETHEUS_CONTENT_TYPE
    assert "txn_commit_total 1" in body
    assert "# TYPE txn_commit_total counter" in body
    assert "obs_http_requests_total" in body


def test_healthz_endpoint(served_db):
    _, server, _ = served_db
    status, payload = _get_json(server, "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    wal = payload["wal"]
    assert wal["backlog"] == 0
    assert wal["last_fsync_age_seconds"] >= 0


def test_healthz_degraded_returns_503():
    db = Database()
    server = db.serve_obs()
    db.txn_manager.enter_degraded("disk gone")
    try:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/healthz")
        assert err.value.code == 503
        payload = json.loads(err.value.read().decode())
        assert payload["status"] == "degraded"
        assert payload["degraded_reason"] == "disk gone"
    finally:
        db.close()


def test_varz_endpoint(served_db):
    _, server, _ = served_db
    status, payload = _get_json(server, "/varz")
    assert status == 200
    assert set(payload) == {"counters", "gauges", "histograms"}
    assert payload["counters"]["txn.commit_total"] == 1


def test_events_endpoint_and_filters(served_db):
    _, server, committed = served_db
    status, payload = _get_json(server, "/events")
    assert status == 200
    assert payload["dropped_total"] == 0
    kinds = {e["kind"] for e in payload["events"]}
    assert "txn.begin" in kinds and "txn.commit" in kinds

    _, filtered = _get_json(server, f"/events?component=txn&txn={committed}")
    assert filtered["events"]
    assert all(e["txn_id"] == committed for e in filtered["events"])

    _, limited = _get_json(server, "/events?limit=1")
    assert len(limited["events"]) == 1


def test_events_bad_param_is_400(served_db):
    _, server, _ = served_db
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/events?txn=notanint")
    assert err.value.code == 400


def test_timeline_endpoint(served_db):
    _, server, committed = served_db
    status, payload = _get_json(server, f"/timeline/{committed}")
    assert status == 200
    assert payload["txn_id"] == committed
    assert payload["status"] == "committed"
    assert payload["complete"] is True
    assert [e["kind"] for e in payload["events"]][0] == "txn.begin"


def test_timeline_unknown_txn_is_404(served_db):
    _, server, _ = served_db
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/timeline/999999999")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/timeline/notanint")
    assert err.value.code == 400


def test_trace_endpoint(served_db):
    _, server, _ = served_db
    status, content_type, body = _get(server, "/trace")
    assert status == 200
    assert content_type.startswith("application/json")
    doc = json.loads(body)
    assert doc["traceEvents"]
    assert doc["otherData"]["producer"] == "repro.obs.recorder"


def test_index_and_404(served_db):
    _, server, _ = served_db
    status, payload = _get_json(server, "/")
    assert status == 200
    assert "/metrics" in payload["endpoints"]
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/nope")
    assert err.value.code == 404


def test_scrapes_counted(served_db):
    db, server, _ = served_db
    before = db.obs.counter("obs.http_requests_total").value
    _get(server, "/metrics")
    _get(server, "/varz")
    assert db.obs.counter("obs.http_requests_total").value == before + 2


def test_stop_releases_socket(served_db):
    db, server, _ = served_db
    port = server.port
    db.stop_serving_obs()
    db.stop_serving_obs()  # idempotent
    with pytest.raises((urllib.error.URLError, ConnectionError)):
        urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=1)
    # Serving again after stop binds a fresh server.
    fresh = db.serve_obs()
    assert fresh is not server
    status, _, _ = _get(fresh, "/metrics")
    assert status == 200


def test_close_stops_server():
    db = Database()
    server = db.serve_obs()
    port = server.port
    db.close()
    with pytest.raises((urllib.error.URLError, ConnectionError)):
        urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=1)


# --------------------------------------------------------------------- #
# request attribution endpoints                                         #
# --------------------------------------------------------------------- #


def test_metrics_openmetrics_negotiation(served_db):
    from repro.obs.expo import OPENMETRICS_CONTENT_TYPE

    _, server, _ = served_db
    status, content_type, body = _get(server, "/metrics?format=openmetrics")
    assert status == 200
    assert content_type == OPENMETRICS_CONTENT_TYPE
    assert body.rstrip().endswith("# EOF")
    assert "txn_commit_total 1" in body
    assert "# TYPE txn_commit counter" in body

    request = urllib.request.Request(
        server.url + "/metrics",
        headers={"Accept": "application/openmetrics-text; version=1.0.0"},
    )
    with urllib.request.urlopen(request, timeout=5) as resp:
        assert resp.headers.get("Content-Type") == OPENMETRICS_CONTENT_TYPE

    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/metrics?format=nope")
    assert err.value.code == 400


def test_slo_endpoint(served_db):
    db, server, _ = served_db
    db.slo.record("acme", 0.01, ok=True)
    db.slo.record("acme", 9.0, ok=True)  # slow success burns budget
    status, payload = _get_json(server, "/slo")
    assert status == 200
    acme = payload["tenants"]["acme"]
    assert acme["windows"]["60s"]["total"] == 2
    assert acme["windows"]["60s"]["bad"] == 1
    assert acme["error_budget_remaining"] < 1.0


def test_request_endpoint(served_db):
    from repro.obs.slo import RequestLifecycle

    db, server, _ = served_db
    lifecycle = RequestLifecycle(7, op="read", tenant="acme")
    lifecycle.trace_id = 0xBEEF
    with lifecycle.phase("engine"):
        pass
    lifecycle.finish("ok")
    lifecycle.close()
    db.request_log.add(lifecycle)

    status, payload = _get_json(server, "/request/7")
    assert status == 200
    assert payload["request_id"] == 7
    assert payload["trace_id"] == "beef"
    assert [p["phase"] for p in payload["waterfall"]] == ["engine"]

    status, by_trace = _get_json(server, "/request/trace:beef")
    assert status == 200 and by_trace["request_id"] == 7

    for missing in ("/request/999", "/request/trace:aaaa"):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, missing)
        assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/request/junk")  # malformed id, not an unknown one
    assert err.value.code == 400


def test_events_request_filter(served_db):
    from repro.obs.slo import RequestLifecycle

    db, server, _ = served_db
    lifecycle = RequestLifecycle(42, op="write")
    with lifecycle.activate():
        db.recorder.record("test.tagged", txn_id=1)
    db.recorder.record("test.untagged", txn_id=2)
    status, payload = _get_json(server, "/events?request=42")
    assert status == 200
    kinds = [e["kind"] for e in payload["events"]]
    assert "test.tagged" in kinds and "test.untagged" not in kinds
    assert all(e["request_id"] == 42 for e in payload["events"])
