"""Exposition: Prometheus text format validity and JSON snapshot stability."""

import json
import re

import pytest

from repro import ColumnSpec, Database, INT64, UTF8, obs
from repro.export import TableExporter
from repro.query import Query

# One Prometheus text-format line: name{labels}? value
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


@pytest.fixture
def worked_db():
    """A database that has exercised txn, wal, gc, transform, and export."""
    db = Database(cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("name", UTF8)],
        block_size=1 << 14,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(info.table.layout.num_slots * 2):
            info.table.insert(txn, {0: i, 1: f"value-{i}-padded-out-of-line"})
    doomed = db.begin()
    info.table.insert(doomed, {0: 999, 1: "rolled back"})
    db.abort(doomed)
    db.freeze_table("t")
    TableExporter(db.txn_manager, info.table, registry=db.obs).export("arrow-wire")
    Query(db, "t").where_between("id", 0, 10).count()
    return db


def test_prometheus_lines_all_parse(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("#"):
            assert _COMMENT_LINE.match(line), f"bad comment line: {line!r}"
        else:
            assert _METRIC_LINE.match(line), f"bad metric line: {line!r}"


def test_prometheus_covers_every_component(worked_db):
    """≥1 counter, gauge, and histogram from txn, wal, gc, transform, export."""
    text = obs.render_prometheus(worked_db.obs)
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
    for component, counter, gauge, histogram in [
        ("txn", "txn_commit_total", "txn_active", "txn_commit_seconds"),
        ("wal", "wal_written_bytes", "wal_pending", "wal_flush_seconds"),
        ("gc", "gc_pass_total", "gc_deferred_pending", "gc_pass_seconds"),
        (
            "transform",
            "transform_blocks_frozen_total",
            "transform_queue_depth",
            "transform_compaction_seconds",
        ),
        (
            "export",
            "export_exports_total",
            "export_last_throughput_mb_per_sec",
            "export_serialization_seconds",
        ),
    ]:
        assert types.get(counter) == "counter", (component, counter, types.get(counter))
        assert types.get(gauge) == "gauge", (component, gauge, types.get(gauge))
        assert types.get(histogram) == "histogram", (component, histogram)


def test_prometheus_histogram_family_shape(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    lines = text.splitlines()
    buckets = [l for l in lines if l.startswith("txn_commit_seconds_bucket")]
    assert buckets, "histogram bucket series missing"
    assert buckets[-1].startswith('txn_commit_seconds_bucket{le="+Inf"}')
    # Cumulative counts never decrease.
    counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts)
    assert any(l.startswith("txn_commit_seconds_sum ") for l in lines)
    count_line = next(l for l in lines if l.startswith("txn_commit_seconds_count "))
    assert int(count_line.split(" ")[1]) == counts[-1]


def test_json_snapshot_parses_and_is_stable(worked_db):
    first = obs.render_json(worked_db.obs)
    payload = json.loads(first)
    assert set(payload) == {"counters", "gauges", "histograms"}
    assert payload["counters"]["txn.commit_total"] >= 1
    assert payload["counters"]["gc.pass_total"] >= 1
    hist = payload["histograms"]["txn.commit_seconds"]
    assert hist["count"] == sum(count for _, count in hist["buckets"])
    assert hist["buckets"][-1][0] == "+Inf"
    # Stable: a quiescent engine renders identical JSON, modulo gauges
    # that measure elapsed time and therefore advance between renders.
    def stable(raw):
        snap = json.loads(raw)
        snap["gauges"].pop("wal.last_fsync_age_seconds", None)
        return snap

    assert stable(obs.render_json(worked_db.obs)) == stable(first)


def test_snapshot_counts_match_engine_activity(worked_db):
    snap = obs.snapshot(worked_db.obs)
    m = worked_db.metrics()
    assert snap["counters"]["gc.pass_total"] == m["gc_passes"]
    assert snap["counters"]["wal.written_bytes"] == m["wal_bytes_written"]
    assert snap["counters"]["txn.abort_total"] >= 1
    assert snap["counters"]["transform.blocks_frozen_total"] == m["transform_blocks_frozen"] > 0
    assert snap["counters"]["query.blocks_pruned_total"] >= 0


# ---------------------------------------------------------------------- #
# line-level Prometheus conformance (text format v0.0.4)                  #
# ---------------------------------------------------------------------- #


def _family_of(line):
    """The family a sample or comment line belongs to."""
    if line.startswith("# "):
        return line.split(" ")[2]
    name = line.split("{")[0].split(" ")[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def test_prometheus_help_and_type_exactly_once_per_family(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    help_seen, type_seen = {}, {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            family = line.split(" ")[2]
            help_seen[family] = help_seen.get(family, 0) + 1
        elif line.startswith("# TYPE "):
            family = line.split(" ")[2]
            type_seen[family] = type_seen.get(family, 0) + 1
    assert help_seen and type_seen
    dup_help = {f: n for f, n in help_seen.items() if n > 1}
    dup_type = {f: n for f, n in type_seen.items() if n > 1}
    assert not dup_help, f"HELP emitted more than once: {dup_help}"
    assert not dup_type, f"TYPE emitted more than once: {dup_type}"


def test_prometheus_help_precedes_type_and_samples_are_contiguous(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    lines = text.splitlines()
    closed = set()  # families whose block has ended
    current = None
    for line in lines:
        family = _family_of(line)
        if line.startswith("# HELP "):
            assert family not in closed, f"family {family} reopened"
            if current is not None and current != family:
                closed.add(current)
            current = family
        elif line.startswith("# TYPE "):
            assert family == current, f"TYPE {family} not directly after its HELP"
        else:
            assert family == current, (
                f"sample {line!r} outside its family block ({current})"
            )


def test_prometheus_histogram_single_terminal_inf_bucket(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
    histograms = [name for name, kind in types.items() if kind == "histogram"]
    assert histograms
    lines = text.splitlines()
    for family in histograms:
        buckets = [l for l in lines if l.startswith(f"{family}_bucket{{")]
        inf_buckets = [l for l in buckets if 'le="+Inf"' in l]
        assert len(inf_buckets) == 1, f"{family}: {len(inf_buckets)} +Inf buckets"
        assert buckets[-1] == inf_buckets[0], f"{family}: +Inf bucket not terminal"
        count = next(l for l in lines if l.startswith(f"{family}_count "))
        assert inf_buckets[0].rsplit(" ", 1)[1] == count.rsplit(" ", 1)[1], (
            f"{family}: +Inf bucket != _count"
        )


def test_prometheus_explicit_inf_bound_not_doubled():
    """A histogram declared with a trailing inf bound must still expose
    exactly one +Inf bucket (the implicit overflow bucket)."""
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    hist = reg.histogram(
        "test.explicit_inf_seconds",
        "declared with a trailing +Inf bound",
        buckets=(0.1, 1.0, float("inf")),
    )
    hist.observe(0.05)
    hist.observe(50.0)
    text = obs.render_prometheus(reg)
    inf_lines = [l for l in text.splitlines() if 'le="+Inf"' in l]
    assert len(inf_lines) == 1
    assert inf_lines[0].endswith(" 2")


def test_prometheus_help_escaping():
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    reg.counter("test.escapes_total", "line one\nline two with back\\slash")
    text = obs.render_prometheus(reg)
    assert (
        "# HELP test_escapes_total line one\\nline two with back\\\\slash"
        in text.splitlines()
    )


def test_prometheus_family_collision_skipped():
    """Two dotted names sanitizing to one family emit one HELP/TYPE block."""
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    reg.counter("test.collide_total", "dotted").inc(3)
    reg.counter("test_collide_total", "underscored").inc(5)
    text = obs.render_prometheus(reg)
    lines = text.splitlines()
    assert lines.count("# TYPE test_collide_total counter") == 1
    samples = [l for l in lines if l.startswith("test_collide_total ")]
    assert len(samples) == 1


def test_wal_counter_matches_log_manager(worked_db):
    assert (
        worked_db.obs.counter("wal.written_bytes").value
        == worked_db.log_manager.bytes_written
    )
    assert (
        worked_db.obs.counter("wal.flush_total").value
        == worked_db.log_manager.flush_count
    )
