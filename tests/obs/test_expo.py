"""Exposition: Prometheus text format validity and JSON snapshot stability."""

import json
import re

import pytest

from repro import ColumnSpec, Database, INT64, UTF8, obs
from repro.export import TableExporter
from repro.query import Query

# One Prometheus text-format line: name{labels}? value
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


@pytest.fixture
def worked_db():
    """A database that has exercised txn, wal, gc, transform, and export."""
    db = Database(cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("name", UTF8)],
        block_size=1 << 14,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(info.table.layout.num_slots * 2):
            info.table.insert(txn, {0: i, 1: f"value-{i}-padded-out-of-line"})
    doomed = db.begin()
    info.table.insert(doomed, {0: 999, 1: "rolled back"})
    db.abort(doomed)
    db.freeze_table("t")
    TableExporter(db.txn_manager, info.table, registry=db.obs).export("arrow-wire")
    Query(db, "t").where_between("id", 0, 10).count()
    return db


def test_prometheus_lines_all_parse(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("#"):
            assert _COMMENT_LINE.match(line), f"bad comment line: {line!r}"
        else:
            assert _METRIC_LINE.match(line), f"bad metric line: {line!r}"


def test_prometheus_covers_every_component(worked_db):
    """≥1 counter, gauge, and histogram from txn, wal, gc, transform, export."""
    text = obs.render_prometheus(worked_db.obs)
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
    for component, counter, gauge, histogram in [
        ("txn", "txn_commit_total", "txn_active", "txn_commit_seconds"),
        ("wal", "wal_written_bytes", "wal_pending", "wal_flush_seconds"),
        ("gc", "gc_pass_total", "gc_deferred_pending", "gc_pass_seconds"),
        (
            "transform",
            "transform_blocks_frozen_total",
            "transform_queue_depth",
            "transform_compaction_seconds",
        ),
        (
            "export",
            "export_exports_total",
            "export_last_throughput_mb_per_sec",
            "export_serialization_seconds",
        ),
    ]:
        assert types.get(counter) == "counter", (component, counter, types.get(counter))
        assert types.get(gauge) == "gauge", (component, gauge, types.get(gauge))
        assert types.get(histogram) == "histogram", (component, histogram)


def test_prometheus_histogram_family_shape(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    lines = text.splitlines()
    buckets = [l for l in lines if l.startswith("txn_commit_seconds_bucket")]
    assert buckets, "histogram bucket series missing"
    assert buckets[-1].startswith('txn_commit_seconds_bucket{le="+Inf"}')
    # Cumulative counts never decrease.
    counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts)
    assert any(l.startswith("txn_commit_seconds_sum ") for l in lines)
    count_line = next(l for l in lines if l.startswith("txn_commit_seconds_count "))
    assert int(count_line.split(" ")[1]) == counts[-1]


def test_json_snapshot_parses_and_is_stable(worked_db):
    first = obs.render_json(worked_db.obs)
    payload = json.loads(first)
    assert set(payload) == {"counters", "gauges", "histograms"}
    assert payload["counters"]["txn.commit_total"] >= 1
    assert payload["counters"]["gc.pass_total"] >= 1
    hist = payload["histograms"]["txn.commit_seconds"]
    assert hist["count"] == sum(count for _, count in hist["buckets"])
    assert hist["buckets"][-1][0] == "+Inf"
    # Stable: a quiescent engine renders identical JSON, modulo gauges
    # that measure elapsed time and therefore advance between renders.
    def stable(raw):
        snap = json.loads(raw)
        snap["gauges"].pop("wal.last_fsync_age_seconds", None)
        return snap

    assert stable(obs.render_json(worked_db.obs)) == stable(first)


def test_snapshot_counts_match_engine_activity(worked_db):
    snap = obs.snapshot(worked_db.obs)
    m = worked_db.metrics()
    assert snap["counters"]["gc.pass_total"] == m["gc_passes"]
    assert snap["counters"]["wal.written_bytes"] == m["wal_bytes_written"]
    assert snap["counters"]["txn.abort_total"] >= 1
    assert snap["counters"]["transform.blocks_frozen_total"] == m["transform_blocks_frozen"] > 0
    assert snap["counters"]["query.blocks_pruned_total"] >= 0


# ---------------------------------------------------------------------- #
# line-level Prometheus conformance (text format v0.0.4)                  #
# ---------------------------------------------------------------------- #


def _family_of(line):
    """The family a sample or comment line belongs to."""
    if line.startswith("# "):
        return line.split(" ")[2]
    name = line.split("{")[0].split(" ")[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def test_prometheus_help_and_type_exactly_once_per_family(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    help_seen, type_seen = {}, {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            family = line.split(" ")[2]
            help_seen[family] = help_seen.get(family, 0) + 1
        elif line.startswith("# TYPE "):
            family = line.split(" ")[2]
            type_seen[family] = type_seen.get(family, 0) + 1
    assert help_seen and type_seen
    dup_help = {f: n for f, n in help_seen.items() if n > 1}
    dup_type = {f: n for f, n in type_seen.items() if n > 1}
    assert not dup_help, f"HELP emitted more than once: {dup_help}"
    assert not dup_type, f"TYPE emitted more than once: {dup_type}"


def test_prometheus_help_precedes_type_and_samples_are_contiguous(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    lines = text.splitlines()
    closed = set()  # families whose block has ended
    current = None
    for line in lines:
        family = _family_of(line)
        if line.startswith("# HELP "):
            assert family not in closed, f"family {family} reopened"
            if current is not None and current != family:
                closed.add(current)
            current = family
        elif line.startswith("# TYPE "):
            assert family == current, f"TYPE {family} not directly after its HELP"
        else:
            assert family == current, (
                f"sample {line!r} outside its family block ({current})"
            )


def test_prometheus_histogram_single_terminal_inf_bucket(worked_db):
    text = obs.render_prometheus(worked_db.obs)
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
    histograms = [name for name, kind in types.items() if kind == "histogram"]
    assert histograms
    lines = text.splitlines()
    for family in histograms:
        buckets = [l for l in lines if l.startswith(f"{family}_bucket{{")]
        inf_buckets = [l for l in buckets if 'le="+Inf"' in l]
        assert len(inf_buckets) == 1, f"{family}: {len(inf_buckets)} +Inf buckets"
        assert buckets[-1] == inf_buckets[0], f"{family}: +Inf bucket not terminal"
        count = next(l for l in lines if l.startswith(f"{family}_count "))
        assert inf_buckets[0].rsplit(" ", 1)[1] == count.rsplit(" ", 1)[1], (
            f"{family}: +Inf bucket != _count"
        )


def test_prometheus_explicit_inf_bound_not_doubled():
    """A histogram declared with a trailing inf bound must still expose
    exactly one +Inf bucket (the implicit overflow bucket)."""
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    hist = reg.histogram(
        "test.explicit_inf_seconds",
        "declared with a trailing +Inf bound",
        buckets=(0.1, 1.0, float("inf")),
    )
    hist.observe(0.05)
    hist.observe(50.0)
    text = obs.render_prometheus(reg)
    inf_lines = [l for l in text.splitlines() if 'le="+Inf"' in l]
    assert len(inf_lines) == 1
    assert inf_lines[0].endswith(" 2")


def test_prometheus_help_escaping():
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    reg.counter("test.escapes_total", "line one\nline two with back\\slash")
    text = obs.render_prometheus(reg)
    assert (
        "# HELP test_escapes_total line one\\nline two with back\\\\slash"
        in text.splitlines()
    )


def test_prometheus_family_collision_skipped():
    """Two dotted names sanitizing to one family emit one HELP/TYPE block."""
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    reg.counter("test.collide_total", "dotted").inc(3)
    reg.counter("test_collide_total", "underscored").inc(5)
    text = obs.render_prometheus(reg)
    lines = text.splitlines()
    assert lines.count("# TYPE test_collide_total counter") == 1
    samples = [l for l in lines if l.startswith("test_collide_total ")]
    assert len(samples) == 1


# ---------------------------------------------------------------------- #
# labeled families (relay-style process/worker_id/shard series)           #
# ---------------------------------------------------------------------- #


def _relay_style_registry():
    """Coordinator series plus relayed worker series in one family, the
    shape :class:`~repro.obs.relay.TelemetryRelay` merges produce."""
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    reg.counter("test.relay_total", "fragments").inc(2)
    for wid in ("0", "1"):
        reg.counter(
            "test.relay_total",
            "fragments",
            labels={"process": "worker", "worker_id": wid},
        ).inc(3 + int(wid))
    hist = reg.histogram(
        "test.relay_seconds",
        "latency",
        buckets=(0.1, 1.0),
        labels={"process": "worker", "worker_id": "0"},
    )
    hist.observe(0.05)
    hist.observe(5.0)
    return reg


def _assert_families_well_formed(text):
    """The block-structure checks the unlabeled tests make, reusable for
    labeled output: every line parses, HELP/TYPE once per family, and all
    samples of a family are contiguous under its comment block."""
    seen_type = {}
    closed = set()
    current = None
    for line in text.splitlines():
        if line.startswith("#"):
            assert _COMMENT_LINE.match(line), f"bad comment line: {line!r}"
        else:
            assert _METRIC_LINE.match(line), f"bad metric line: {line!r}"
        family = _family_of(line)
        if line.startswith("# HELP "):
            assert family not in closed, f"family {family} reopened"
            if current is not None and current != family:
                closed.add(current)
            current = family
        elif line.startswith("# TYPE "):
            seen_type[family] = seen_type.get(family, 0) + 1
            assert seen_type[family] == 1, f"TYPE {family} repeated"
        else:
            assert family == current, f"sample {line!r} strays from {current}"


def test_labeled_series_share_one_family_block():
    text = obs.render_prometheus(_relay_style_registry())
    _assert_families_well_formed(text)
    lines = text.splitlines()
    samples = [l for l in lines if l.startswith("test_relay_total")]
    assert samples == [
        "test_relay_total 2",
        'test_relay_total{process="worker",worker_id="0"} 3',
        'test_relay_total{process="worker",worker_id="1"} 4',
    ]
    assert lines.count("# TYPE test_relay_total counter") == 1


def test_labeled_histogram_bucket_lines_compose_le_last():
    text = obs.render_prometheus(_relay_style_registry())
    lines = text.splitlines()
    buckets = [l for l in lines if l.startswith("test_relay_seconds_bucket")]
    assert [l.rsplit(" ", 1)[0] for l in buckets] == [
        'test_relay_seconds_bucket{process="worker",worker_id="0",le="0.1"}',
        'test_relay_seconds_bucket{process="worker",worker_id="0",le="1"}',
        'test_relay_seconds_bucket{process="worker",worker_id="0",le="+Inf"}',
    ]
    counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts)
    count_line = next(
        l for l in lines if l.startswith("test_relay_seconds_count")
    )
    assert count_line == (
        'test_relay_seconds_count{process="worker",worker_id="0"} 2'
    )
    assert counts[-1] == 2  # +Inf bucket equals _count
    assert (
        'test_relay_seconds_sum{process="worker",worker_id="0"}'
        in next(l for l in lines if l.startswith("test_relay_seconds_sum"))
    )


def test_label_values_escaped_per_spec():
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    reg.counter(
        "test.escaped_total",
        "odd label values",
        labels={"path": 'a\\b"c\nd'},
    ).inc(1)
    text = obs.render_prometheus(reg)
    assert (
        'test_escaped_total{path="a\\\\b\\"c\\nd"} 1' in text.splitlines()
    )


def test_shard_labeled_gauges_render_as_one_family():
    """Cluster shard gauges (``{shard="N"}``) obey the same family rules."""
    from repro.cluster import ShardedDatabase

    cluster = ShardedDatabase(n_shards=2, logging_enabled=False)
    try:
        text = obs.render_prometheus(cluster.obs)
    finally:
        cluster.close()
    _assert_families_well_formed(text)
    healthy = [
        l for l in text.splitlines() if l.startswith("cluster_shard_healthy")
    ]
    assert healthy == [
        'cluster_shard_healthy{shard="0"} 1',
        'cluster_shard_healthy{shard="1"} 1',
    ]


def test_worker_relayed_series_conform(worked_db):
    """End-to-end: merge real relay payload shapes, then lint the text."""
    from repro.obs.recorder import Recorder
    from repro.obs.registry import MetricRegistry
    from repro.obs.relay import HAVE_SHARED_MEMORY, TelemetryRelay, WorkerTelemetry

    if not HAVE_SHARED_MEMORY:
        pytest.skip("multiprocessing.shared_memory unavailable")
    registry = MetricRegistry()
    recorder = Recorder(registry=registry)
    relay = TelemetryRelay(1, registry, recorder)
    try:
        telemetry = WorkerTelemetry(0, **relay.worker_args())
        telemetry.counter("parallel.tasks_total", "tasks").inc(4)
        telemetry.histogram("parallel.fragment_seconds", "latency").observe(0.02)
        relay.merge(telemetry.flush(None))
        telemetry.close()
    finally:
        relay.close()
    text = obs.render_prometheus(registry)
    _assert_families_well_formed(text)
    assert (
        'parallel_tasks_total{process="worker",worker_id="0"} 4'
        in text.splitlines()
    )


def test_wal_counter_matches_log_manager(worked_db):
    assert (
        worked_db.obs.counter("wal.written_bytes").value
        == worked_db.log_manager.bytes_written
    )
    assert (
        worked_db.obs.counter("wal.flush_total").value
        == worked_db.log_manager.flush_count
    )


# --------------------------------------------------------------------- #
# OpenMetrics 1.0 exposition                                            #
# --------------------------------------------------------------------- #

# One OpenMetrics metric line: name{labels}? value [# {exemplar} value ts]
_OM_VALUE = r"(NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)"
_OM_LABELS = r"(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"
_OM_EXEMPLAR = (
    r"( # \{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\} "
    + _OM_VALUE + r"( [0-9]+(\.[0-9]+)?)?)?"
)
_OM_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*" + _OM_LABELS + " " + _OM_VALUE
    + _OM_EXEMPLAR + "$"
)
_OM_COMMENT_LINE = re.compile(
    r"^# (HELP|TYPE|UNIT) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$"
)


def _assert_openmetrics_conformant(text):
    """Line-level OpenMetrics 1.0 checks: grammar, counter sample naming,
    the # EOF terminator, and exemplar placement (buckets only)."""
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    types = {}
    for line in lines[:-1]:
        if line.startswith("#"):
            assert _OM_COMMENT_LINE.match(line), f"bad comment: {line!r}"
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                # Spec: counter family names must not end in _total.
                assert not (kind == "counter" and name.endswith("_total")), (
                    f"counter family keeps _total: {line!r}"
                )
                types[name] = kind
        else:
            assert _OM_METRIC_LINE.match(line), f"bad metric line: {line!r}"
            name = re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*", line).group(0)
            if " # {" in line:
                assert name.endswith("_bucket"), (
                    f"exemplar outside a bucket: {line!r}"
                )
    # Every counter family's samples carry the _total suffix.
    for name, kind in types.items():
        if kind != "counter":
            continue
        for line in lines:
            if line.startswith(name) and not line.startswith("#"):
                sample = re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*", line).group(0)
                if sample in (name, name + "_total"):
                    assert sample == name + "_total", (
                        f"counter sample missing _total: {line!r}"
                    )
    return types


def test_openmetrics_lines_all_parse(worked_db):
    text = obs.render_openmetrics(worked_db.obs)
    types = _assert_openmetrics_conformant(text)
    # The same components the Prometheus exposition covers are present.
    assert types.get("txn_commit") == "counter"
    assert types.get("wal_flush_seconds") == "histogram"
    assert types.get("txn_active") == "gauge"


def test_openmetrics_exemplars_attach_to_buckets(worked_db):
    registry = worked_db.obs
    obs.configure(exemplars=True)
    try:
        hist = registry.histogram("test.exemplar_seconds", "exemplar demo")
        hist.observe(0.004, exemplar="deadbeef")
        text = obs.render_openmetrics(registry)
        _assert_openmetrics_conformant(text)
        exemplar_lines = [
            line for line in text.splitlines()
            if line.startswith("test_exemplar_seconds_bucket")
            and 'trace_id="deadbeef"' in line
        ]
        assert exemplar_lines, "no bucket carried the exemplar"
        # Exactly the bucket the observation fell into (0.004 → le=0.005),
        # not every bucket above it.
        assert len(exemplar_lines) == 1
        assert 'le="0.005"' in exemplar_lines[0]
        assert " 0.004 " in exemplar_lines[0]
    finally:
        obs.configure(exemplars=False)
        registry.unregister("test.exemplar_seconds")


def test_exemplars_off_by_default(worked_db):
    registry = worked_db.obs
    hist = registry.histogram("test.no_exemplar_seconds", "no exemplars")
    try:
        hist.observe(0.004, exemplar="cafe")
        assert hist.exemplars() == {}
        text = obs.render_openmetrics(registry)
        assert "cafe" not in text
    finally:
        registry.unregister("test.no_exemplar_seconds")
