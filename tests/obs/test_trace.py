"""Trace spans: nesting, attribution, bounded buffering, disabled path."""

import time

import pytest

from repro import obs
from repro.obs.trace import Tracer, span


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


def test_nested_spans_parent_child_attribution():
    tracer = Tracer(capacity=16)
    with tracer.span("outer"):
        with tracer.span("inner"):
            time.sleep(0.01)
    spans = {s.name: s for s in tracer.spans()}
    assert set(spans) == {"outer", "inner"}
    inner, outer = spans["inner"], spans["outer"]
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.duration >= inner.duration
    assert outer.child_seconds == pytest.approx(inner.duration)
    # Exclusive time: outer spent almost nothing outside inner.
    assert outer.self_seconds <= outer.duration - inner.duration + 1e-6


def test_sibling_spans_accumulate_into_parent():
    tracer = Tracer(capacity=16)
    with tracer.span("parent"):
        with tracer.span("child"):
            pass
        with tracer.span("child"):
            pass
    summary = tracer.summarize()
    assert summary["child"].count == 2
    assert summary["parent"].count == 1
    parent = [s for s in tracer.spans() if s.name == "parent"][0]
    assert parent.child_seconds == pytest.approx(summary["child"].total_seconds)


def test_ring_buffer_is_bounded():
    tracer = Tracer(capacity=8)
    for i in range(50):
        with tracer.span("s"):
            pass
    assert len(tracer) == 8
    # Oldest spans fell off: the survivors are the last 8 created.
    ids = [s.span_id for s in tracer.spans()]
    assert ids == sorted(ids) and len(ids) == 8
    assert min(ids) > 40


def test_drain_clears_buffer():
    tracer = Tracer(capacity=8)
    with tracer.span("a"):
        pass
    drained = tracer.drain()
    assert [s.name for s in drained] == ["a"]
    assert len(tracer) == 0


def test_exception_still_records_span():
    tracer = Tracer(capacity=8)
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert [s.name for s in tracer.spans()] == ["boom"]


def test_disabled_span_is_noop():
    tracer = Tracer(capacity=8)
    obs.configure(enabled=False)
    with tracer.span("ghost"):
        pass
    with span("ghost.default"):
        pass
    assert len(tracer) == 0
    assert all(s.name != "ghost.default" for s in obs.get_tracer().spans())


def test_default_tracer_capacity_configurable():
    obs.configure(trace_capacity=4)
    try:
        for _ in range(10):
            with span("s"):
                pass
        assert len(obs.get_tracer()) == 4
    finally:
        obs.configure(trace_capacity=4096)


def test_threads_get_independent_stacks():
    import threading

    tracer = Tracer(capacity=64)
    def worker():
        with tracer.span("w"):
            pass
    with tracer.span("main"):
        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    for s in tracer.spans():
        if s.name == "w":
            # Worker spans must not attach to the main thread's open span.
            assert s.parent_id is None
