"""Cross-process telemetry relay: delta shipping, clock alignment, merge
labeling, and exact drop accounting through worker death.

The SIGKILL tests are the PR's hard invariant: a worker killed with staged
but unshipped events must surface *exactly* that many drops in
``obs.events_dropped_total`` — no estimate, no double count — under both
``fork`` and ``spawn`` start methods.
"""

import multiprocessing as mp
import time

import pytest

from repro import obs
from repro.obs.recorder import Recorder
from repro.obs.registry import MetricRegistry
from repro.obs.relay import (
    HAVE_SHARED_MEMORY,
    IDX_EVENTS_STAGED,
    TelemetryPage,
    TelemetryRelay,
    WorkerTelemetry,
    _worker_span_id_base,
)
from repro.obs.trace import TraceContext, Tracer
from repro.parallel.pool import WorkerPool

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


def _harness():
    registry = MetricRegistry()
    recorder = Recorder(registry=registry)
    tracer = Tracer()
    relay = TelemetryRelay(2, registry, recorder=recorder, tracer=tracer)
    return registry, recorder, tracer, relay


class TestTelemetryPage:
    def test_add_read_reset(self):
        page = TelemetryPage(2)
        try:
            page.add(0, IDX_EVENTS_STAGED, 3)
            page.add(1, IDX_EVENTS_STAGED, 7)
            assert page.read(0, IDX_EVENTS_STAGED) == 3
            assert page.read(1, IDX_EVENTS_STAGED) == 7
            page.reset_worker(0)
            assert page.read(0, IDX_EVENTS_STAGED) == 0
            assert page.read(1, IDX_EVENTS_STAGED) == 7
        finally:
            page.close()

    def test_attach_sees_owner_writes(self):
        owner = TelemetryPage(1)
        try:
            attached = TelemetryPage.attach(owner.name, 1)
            attached.add(0, IDX_EVENTS_STAGED, 5)
            assert owner.read(0, IDX_EVENTS_STAGED) == 5
            attached.close()
            # The attach-side close must not unlink: the owner still reads.
            assert owner.read(0, IDX_EVENTS_STAGED) == 5
        finally:
            owner.close()

    def test_close_unlinks_segment(self):
        from multiprocessing import shared_memory

        page = TelemetryPage(1)
        name = page.name
        page.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestWorkerTelemetry:
    def test_flush_ships_events_once(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            wt.record("test.one", txn_id=7, detail="a")
            wt.record("test.two")
            payload = wt.flush()
            assert len(payload["events"]) == 2
            assert payload["events_dropped"] == 0
            # A second flush is empty: everything shipped exactly once.
            assert wt.flush()["events"] == []
            wt.close()
        finally:
            relay.close()

    def test_staging_overflow_counts_drops(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, event_capacity=4, **relay.worker_args())
            for i in range(10):
                wt.record("test.burst", index=i)
            payload = wt.flush()
            assert len(payload["events"]) == 4
            assert payload["events_dropped"] == 6
            # Staged counter saw all 10; shipped + dropped account for them.
            assert relay.page.read(0, IDX_EVENTS_STAGED) == 10
            relay.merge(payload)
            assert relay.events_acked[0] == 10
            assert registry.counter("obs.events_dropped_total").value == 6
            wt.close()
        finally:
            relay.close()

    def test_metric_deltas_ship_incrementally(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            wt.counter("test.c_total", "c").inc(3)
            first = wt.flush()["metrics"]
            assert ("test.c_total", "c", 3.0) in first["counters"]
            # Unchanged since: not re-shipped.
            assert wt.flush()["metrics"]["counters"] == []
            wt.counter("test.c_total", "c").inc(2)
            second = wt.flush()["metrics"]
            assert ("test.c_total", "c", 2.0) in second["counters"]
            wt.close()
        finally:
            relay.close()

    def test_span_ids_are_pid_salted(self):
        import os

        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            with wt.span("test.work"):
                pass
            (span,) = wt.tracer.drain()
            base = _worker_span_id_base(os.getpid())
            assert span.span_id >= base
            wt.close()
        finally:
            relay.close()


class TestRelayMerge:
    def test_counters_land_as_labeled_series(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(1, **relay.worker_args())
            wt.counter("parallel.fragment_rows_total", "rows").inc(42)
            relay.merge(wt.flush())
            labeled = registry.get(
                "parallel.fragment_rows_total",
                labels={"process": "worker", "worker_id": "1"},
            )
            assert labeled.value == 42
            # The unlabeled family name alone does not exist.
            assert registry.get("parallel.fragment_rows_total") is None
            wt.close()
        finally:
            relay.close()

    def test_histogram_deltas_merge(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            wt.histogram("test.lat_seconds", "lat").observe(0.01)
            relay.merge(wt.flush())
            wt.histogram("test.lat_seconds", "lat").observe(0.02)
            relay.merge(wt.flush())
            merged = registry.get(
                "test.lat_seconds",
                labels={"process": "worker", "worker_id": "0"},
            )
            snap = merged.snapshot()
            assert snap.count == 2
            assert snap.sum == pytest.approx(0.03)
            wt.close()
        finally:
            relay.close()

    def test_events_clock_aligned_and_process_tagged(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            before = time.perf_counter()
            wt.record("test.aligned", txn_id=3)
            relay.merge(wt.flush())
            after = time.perf_counter()
            (event,) = recorder.events(kind="test.aligned")
            assert event.process == "worker0"
            assert event.txn_id == 3
            # Same process ⇒ offset ≈ 0; the aligned ts must sit inside the
            # bracketing coordinator timestamps (generous slack for wall
            # clock jitter between time.time() samples).
            assert before - 0.25 <= event.ts <= after + 0.25
            assert relay.clock_offset(0) == pytest.approx(0.0, abs=0.25)
            wt.close()
        finally:
            relay.close()

    def test_events_inherit_dispatch_trace_id(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            ctx = TraceContext(trace_id=777, span_id=12)
            with wt.activated(tuple(ctx)):
                wt.record("test.traced")
            relay.merge(wt.flush(tuple(ctx)))
            (event,) = recorder.events(kind="test.traced")
            assert event.attrs["trace_id"] == 777
            wt.close()
        finally:
            relay.close()

    def test_spans_ingest_verbatim_with_parent_links(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            ctx = TraceContext(trace_id=555, span_id=99)
            with wt.activated(tuple(ctx)):
                with wt.span("test.outer"):
                    with wt.span("test.inner"):
                        pass
            relay.merge(wt.flush(tuple(ctx)))
            spans = {s.name: s for s in tracer.spans() if s.process == "worker0"}
            assert set(spans) == {"test.outer", "test.inner"}
            assert spans["test.outer"].parent_id == 99  # dispatch ctx
            assert spans["test.outer"].trace_id == 555
            assert spans["test.inner"].parent_id == spans["test.outer"].span_id
            assert spans["test.inner"].trace_id == 555
            wt.close()
        finally:
            relay.close()

    def test_profile_stacks_accumulate_with_worker_prefix(self):
        registry, recorder, tracer, relay = _harness()
        try:
            payload = {
                "worker": 1,
                "wall": time.time(),
                "perf": time.perf_counter(),
                "ctx": None,
                "events": [],
                "events_dropped": 0,
                "spans": [],
                "metrics": {},
                "profile": {"MainThread;f.py:work": 5},
            }
            relay.merge(payload)
            assert relay.profile_stacks() == {
                "worker1;MainThread;f.py:work": 5
            }
        finally:
            relay.close()


class TestDeathAccounting:
    def test_clean_account_settles_to_zero(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            for i in range(5):
                wt.record("test.clean", index=i)
            relay.merge(wt.flush())
            wt.close()
            assert relay.note_worker_death(0) == 0
            assert registry.counter("obs.events_dropped_total").value == 0
        finally:
            relay.close()

    def test_unshipped_events_become_exact_drops(self):
        registry, recorder, tracer, relay = _harness()
        try:
            wt = WorkerTelemetry(0, **relay.worker_args())
            for i in range(5):
                wt.record("test.shipped", index=i)
            relay.merge(wt.flush())
            for i in range(3):  # staged but never flushed: the "SIGKILL" set
                wt.record("test.doomed", index=i)
            assert relay.note_worker_death(0) == 3
            assert registry.counter("obs.events_dropped_total").value == 3
            (note,) = recorder.events(kind="obs.relay_dropped")
            assert note.attrs == {
                "worker": 0, "events": 3, "reason": "worker_died",
            }
            # Settling resets the account: a respawned worker starts clean.
            assert relay.note_worker_death(0) == 0
            wt.close()
        finally:
            relay.close()


@pytest.mark.parametrize("method", ["fork", "spawn"])
class TestSigkillAccounting:
    """End-to-end through real worker processes and a real kill."""

    def _pool(self, method):
        if method not in mp.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        registry = MetricRegistry()
        recorder = Recorder(registry=registry)
        pool = WorkerPool(
            1, start_method=method, registry=registry, recorder=recorder
        )
        return registry, recorder, pool

    def test_sigkill_mid_task_drops_exactly_staged_events(self, method):
        registry, recorder, pool = self._pool(method)
        try:
            # A normal burst first: staged AND shipped, so it must not be
            # counted as dropped when the worker later dies.
            (shipped,) = pool.run_fragments(
                "telemetry_burst", [(17,)], timeout=60.0
            )
            assert shipped == 17
            assert registry.counter("obs.events_dropped_total").value == 0
            burst = recorder.events(kind="test.relay_burst")
            assert len(burst) == 17
            assert all(e.process == "worker0" for e in burst)

            # Now stage 23 events and SIGKILL before the flush can ship.
            (result,) = pool.run_fragments(
                "telemetry_crash", [(23,)], timeout=60.0
            )
            assert result is None  # fragment fell back
            deadline = time.monotonic() + 10.0
            while (
                registry.counter("obs.events_dropped_total").value < 23
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert registry.counter("obs.events_dropped_total").value == 23
            notes = recorder.events(kind="obs.relay_dropped")
            assert [n.attrs["events"] for n in notes] == [23]
            assert notes[0].attrs["reason"] == "worker_died"
            # None of the doomed events leaked into the journal.
            assert recorder.events(kind="test.relay_doomed") == []
        finally:
            pool.stop()

    def test_clean_shutdown_drops_nothing(self, method):
        registry, recorder, pool = self._pool(method)
        try:
            (shipped,) = pool.run_fragments(
                "telemetry_burst", [(9,)], timeout=60.0
            )
            assert shipped == 9
        finally:
            pool.stop()
        assert registry.counter("obs.events_dropped_total").value == 0
        assert recorder.events(kind="obs.relay_dropped") == []
