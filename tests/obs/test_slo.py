"""Request attribution: lifecycles, the request log, SLO math, and the
tail sampler's exact accounting (including under concurrency)."""

import threading

import pytest

from repro import obs
from repro.obs.slo import (
    RequestLifecycle,
    RequestLog,
    SloTracker,
    current_lifecycle,
    current_request_id,
    stamp_phase,
)
from repro.obs.trace import TailSampler, Tracer


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


class TestRequestLifecycle:
    def test_breakdown_subtracts_inner_phases_from_engine(self):
        lc = RequestLifecycle(1, op="write", tenant="t0")
        base = lc.started
        # 100 ms of engine, of which 40 ms was a backoff sleep and 20 ms an
        # fsync wait; plus 10 ms of queue wait before and 5 ms of response
        # write after.
        lc.stamp("admission.queue_wait", base, base + 0.010)
        lc.stamp("engine", base + 0.010, base + 0.110)
        lc.stamp("retry.backoff", base + 0.020, base + 0.060)
        lc.stamp("wal.fsync_wait", base + 0.070, base + 0.090)
        lc.stamp("response.write", base + 0.110, base + 0.115)
        lc.ended = base + 0.115
        b = lc.breakdown()
        assert b["retry.backoff"] == pytest.approx(0.040)
        assert b["wal.fsync_wait"] == pytest.approx(0.020)
        assert b["engine"] == pytest.approx(0.040)  # 100 - 40 - 20
        assert b["admission.queue_wait"] == pytest.approx(0.010)
        assert b["unattributed"] == pytest.approx(0.0, abs=1e-9)
        # Attributed time sums to the total: the critical-path property.
        assert sum(b.values()) == pytest.approx(lc.total_seconds)
        assert lc.dominant_phase() in ("engine", "retry.backoff")

    def test_unattributed_covers_unstamped_time(self):
        lc = RequestLifecycle(2)
        base = lc.started
        lc.stamp("engine", base, base + 0.010)
        lc.ended = base + 0.050
        b = lc.breakdown()
        assert b["unattributed"] == pytest.approx(0.040)

    def test_dominant_phase_falls_back_to_terminal_phase(self):
        lc = RequestLifecycle(3, op="read")
        lc.finish("too_busy", terminal_phase="admission")
        lc.close()
        assert lc.dominant_phase() == "admission"
        doc = lc.to_dict()
        assert doc["outcome"] == "too_busy"
        assert doc["terminal_phase"] == "admission"
        assert doc["dominant_phase"] == "admission"

    def test_to_dict_waterfall_is_relative_ms(self):
        lc = RequestLifecycle(4, op="scan", tenant="acme")
        base = lc.started
        lc.stamp("engine", base + 0.001, base + 0.003)
        lc.trace_id = 0xABC
        lc.finish("ok")
        lc.close()
        doc = lc.to_dict()
        assert doc["request_id"] == 4
        assert doc["tenant"] == "acme"
        assert doc["trace_id"] == "abc"
        (phase,) = doc["waterfall"]
        assert phase["phase"] == "engine"
        assert phase["start_ms"] == pytest.approx(1.0, abs=0.1)
        assert phase["duration_ms"] == pytest.approx(2.0, abs=0.1)
        assert "engine" in doc["breakdown_ms"]

    def test_activation_binds_thread_local(self):
        lc = RequestLifecycle(5)
        assert current_lifecycle() is None
        with lc.activate():
            assert current_lifecycle() is lc
            assert current_request_id() == 5
            with stamp_phase("wal.fsync_wait"):
                pass
        assert current_lifecycle() is None
        assert [name for name, _, _ in lc.phases] == ["wal.fsync_wait"]

    def test_stamp_phase_is_noop_without_active_request(self):
        with stamp_phase("retry.backoff"):
            pass  # must not raise, must not allocate a lifecycle
        assert current_lifecycle() is None

    def test_activation_restores_previous_lifecycle(self):
        outer, inner = RequestLifecycle(6), RequestLifecycle(7)
        with outer.activate():
            with inner.activate():
                assert current_request_id() == 7
            assert current_request_id() == 6


class TestRequestLog:
    def test_lookup_by_id_and_trace(self):
        log = RequestLog(capacity=4)
        lc = RequestLifecycle(1)
        lc.trace_id = 0xDEAD
        log.add(lc)
        assert log.get(1) is lc
        assert log.by_trace(0xDEAD) is lc
        assert log.by_trace("dead") is lc
        assert log.by_trace("not-hex") is None
        assert log.get(99) is None

    def test_eviction_keeps_bound_and_cleans_trace_index(self):
        log = RequestLog(capacity=2)
        for i in range(1, 5):
            lc = RequestLifecycle(i)
            lc.trace_id = i * 100
            log.add(lc)
        assert len(log) == 2
        assert log.get(1) is None and log.by_trace(100) is None
        assert log.get(4) is not None and log.by_trace(400) is not None
        assert [r.request_id for r in log.recent()] == [3, 4]

    def test_duplicate_ids_are_ignored(self):
        log = RequestLog()
        first, dup = RequestLifecycle(1), RequestLifecycle(1)
        log.add(first)
        log.add(dup)
        assert log.get(1) is first and len(log) == 1


class TestSloTracker:
    def _tracker(self, **kwargs):
        clock = {"now": 1000.0}
        tracker = SloTracker(
            target_latency=0.1,
            availability=0.99,
            windows=(60.0, 600.0),
            bucket_seconds=5.0,
            clock=lambda: clock["now"],
            **kwargs,
        )
        return tracker, clock

    def test_good_bad_classification(self):
        tracker, _ = self._tracker()
        tracker.record("t", 0.05, ok=True)              # good
        tracker.record("t", 0.50, ok=True)              # slow success = bad
        tracker.record("t", 0.01, ok=False)             # error = bad
        tracker.record("t", 0.001, ok=False, shed=True)  # shed = bad
        report = tracker.report()["tenants"]["t"]
        window = report["windows"]["60s"]
        assert window["total"] == 4 and window["good"] == 1 and window["bad"] == 3
        # bad fraction 0.75 against a 1% budget → burn rate 75x.
        assert window["burn_rate"] == pytest.approx(75.0)

    def test_burn_rate_windows_roll(self):
        tracker, clock = self._tracker()
        tracker.record("t", 0.5, ok=True)  # bad, at t=1000
        clock["now"] = 1100.0              # outside 60s, inside 600s
        tracker.record("t", 0.05, ok=True)
        assert tracker.burn_rate("t", 60.0) == pytest.approx(0.0)
        assert tracker.burn_rate("t", 600.0) == pytest.approx(50.0)

    def test_error_budget_remaining(self):
        tracker, _ = self._tracker()
        for _ in range(99):
            tracker.record("t", 0.05, ok=True)
        tracker.record("t", 0.05, ok=False)
        # 1 bad out of 100 at 99% availability: budget exactly spent.
        assert tracker.error_budget_remaining("t") == pytest.approx(0.0)
        assert tracker.error_budget_remaining("unknown-tenant") == 1.0

    def test_no_traffic_burns_nothing(self):
        tracker, _ = self._tracker()
        assert tracker.burn_rate("t", 60.0) == 0.0
        summary = tracker.health_summary()
        assert summary["tenants"] == 0
        assert summary["worst_burn_rate"] == 0.0
        assert summary["breaching"] == []

    def test_health_summary_flags_breaching_tenants(self):
        tracker, _ = self._tracker()
        tracker.record("calm", 0.01, ok=True)
        for _ in range(10):
            tracker.record("noisy", 0.01, ok=False)
        summary = tracker.health_summary()
        assert summary["breaching"] == ["noisy"]
        assert summary["worst_burn_rate"] > 1.0

    def test_per_tenant_objective_override(self):
        tracker, _ = self._tracker()
        tracker.set_objective("picky", target_latency=0.01)
        tracker.record("picky", 0.05, ok=True)   # slow for *this* tenant
        tracker.record("lax", 0.05, ok=True)     # fine for the default
        assert tracker.burn_rate("picky", 60.0) > 0.0
        assert tracker.burn_rate("lax", 60.0) == 0.0

    def test_registry_gauges_registered_per_tenant(self):
        from repro.obs.registry import MetricRegistry

        registry = MetricRegistry()
        tracker = SloTracker(registry=registry, windows=(60.0,))
        tracker.record("t", 0.01, ok=True)
        burn = registry.get(
            "slo.burn_rate", labels={"tenant": "t", "window": "60s"}
        )
        budget = registry.get(
            "slo.error_budget_remaining", labels={"tenant": "t"}
        )
        assert burn is not None and budget is not None
        assert burn.value == pytest.approx(0.0)
        assert budget.value == pytest.approx(1.0)


class TestTailSampler:
    def _tracer(self):
        return Tracer(capacity=4096)

    def test_threshold_keeps_slow_drops_fast(self):
        tracer = self._tracer()
        sampler = TailSampler(threshold=0.05)
        tracer.set_tail_sampler(sampler)
        with tracer.span("fast-root"):
            with tracer.span("fast-child"):
                pass
        assert len(tracer._buffer) == 0
        assert sampler.dropped_traces == 1 and sampler.dropped_spans == 2
        # Forge a slow root by marking: marked traces keep regardless.
        with tracer.span("slow-root") as root:
            sampler.mark(root.trace_id, "shed")
            with tracer.span("slow-child"):
                pass
        assert {s.name for s in tracer._buffer} == {"slow-root", "slow-child"}
        assert sampler.kept_traces == 1 and sampler.kept_spans == 2

    def test_top_k_reservoir_keeps_slowest(self):
        tracer = self._tracer()
        sampler = TailSampler(top_k=1)
        tracer.set_tail_sampler(sampler)
        import time as _time

        with tracer.span("first"):
            pass  # fills the reservoir → kept
        with tracer.span("slower"):
            _time.sleep(0.01)  # displaces the reservoir min → kept
        with tracer.span("fast-again"):
            pass  # not slower than the reservoir → dropped
        names = [s.name for s in tracer._buffer]
        assert "first" in names and "slower" in names
        assert "fast-again" not in names

    def test_requires_a_policy(self):
        with pytest.raises(ValueError):
            TailSampler()

    def test_max_pending_eviction_is_counted(self):
        tracer = self._tracer()
        sampler = TailSampler(threshold=0.0, max_pending=1)
        tracer.set_tail_sampler(sampler)
        # Two interleaved traces on two threads: the second trace's first
        # span evicts the first trace from the pending table.
        barrier = threading.Barrier(2)
        release = threading.Event()

        def holder():
            with tracer.span("held-root"):
                with tracer.span("held-child"):
                    pass  # non-root close → pends the trace
                barrier.wait()
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        barrier.wait()
        with tracer.span("evictor"):
            pass
        release.set()
        thread.join()
        stats = sampler.stats()
        # Every offered span is accounted: held-child (evicted) +
        # held-root (root closed after eviction, judged alone) + evictor.
        assert stats["kept_spans"] + stats["dropped_spans"] == 3
        assert stats["pending_traces"] == 0

    def test_flush_pending_counts_orphans(self):
        tracer = self._tracer()
        sampler = TailSampler(threshold=0.0)
        tracer.set_tail_sampler(sampler)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            # Root still open: the child pends.
            assert sampler.flush_pending() == 1
        # The root then closes into a fresh pending entry and is kept
        # (threshold 0.0): exactly one span survives.
        assert [s.name for s in tracer._buffer] == ["root"]
        assert sampler.dropped_spans == 1

    def test_exact_accounting_under_concurrency(self):
        tracer = self._tracer()
        sampler = TailSampler(threshold=0.005, max_pending=4096)
        tracer.set_tail_sampler(sampler)
        spans_per_trace = 3
        traces_per_thread = 25
        threads = 8
        import time as _time

        def worker(slow: bool):
            for _ in range(traces_per_thread):
                with tracer.span("root"):
                    for _ in range(spans_per_trace - 1):
                        with tracer.span("child"):
                            pass
                    if slow:
                        _time.sleep(0.006)

        pool = [
            threading.Thread(target=worker, args=(i % 2 == 0,))
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total_traces = threads * traces_per_thread
        total_spans = total_traces * spans_per_trace
        stats = sampler.stats()
        assert stats["pending_traces"] == 0
        assert stats["kept_traces"] + stats["dropped_traces"] == total_traces
        assert stats["kept_spans"] + stats["dropped_spans"] == total_spans
        # The slow half (plus any stragglers past the threshold) is kept,
        # and every kept span actually reached the buffer.
        assert stats["kept_traces"] >= (threads // 2) * traces_per_thread
        assert len(tracer._buffer) == stats["kept_spans"]

    def test_ingest_bypasses_sampler(self):
        from repro.obs.trace import Span

        tracer = self._tracer()
        sampler = TailSampler(threshold=10.0)
        tracer.set_tail_sampler(sampler)
        tracer.ingest(
            [Span(1, None, "relayed", 0.0, 0.001, 0.0, "w0", 42, None)]
        )
        assert [s.name for s in tracer._buffer] == ["relayed"]
        assert sampler.stats()["dropped_spans"] == 0
