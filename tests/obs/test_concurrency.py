"""Concurrency stress: shard merges and journal accounting stay exact.

Thread-local shards make the hot paths lock-free, which means correctness
lives entirely in the merge logic.  These tests churn short-lived threads
(spawn, increment, join, repeat) and hammer the journal ring from many
writers at once, then assert the merged totals are *exact* — not
approximately right, exact: drops must be counted, finished threads'
contributions must survive, and concurrent reads must never lose events.
"""

import threading

import pytest

from repro import obs
from repro.obs.recorder import Recorder
from repro.obs.registry import Histogram, MetricRegistry


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


def _run_all(threads):
    for t in threads:
        t.start()
    for t in threads:
        t.join()


# ---------------------------------------------------------------------- #
# registry shard merges                                                   #
# ---------------------------------------------------------------------- #


def test_counter_exact_total_across_thread_churn():
    """Spawn/join waves of short-lived threads; every shard's contribution
    must survive its thread's death (counters are cumulative)."""
    reg = MetricRegistry()
    counter = reg.counter("stress.churn_total")
    waves, per_wave, incs = 8, 6, 250
    for _ in range(waves):
        _run_all(
            [
                threading.Thread(
                    target=lambda: [counter.inc() for _ in range(incs)]
                )
                for _ in range(per_wave)
            ]
        )
    assert counter.value == waves * per_wave * incs


def test_counter_reads_race_with_writers():
    """Merging while writers are mid-increment never over-counts and the
    final merged total is exact."""
    reg = MetricRegistry()
    counter = reg.counter("stress.race_total")
    stop = threading.Event()
    observed = []

    def reader():
        while not stop.is_set():
            observed.append(counter.value)

    def writer():
        for _ in range(20_000):
            counter.inc()

    writers = [threading.Thread(target=writer) for _ in range(4)]
    watch = threading.Thread(target=reader)
    watch.start()
    _run_all(writers)
    stop.set()
    watch.join()
    total = 4 * 20_000
    assert counter.value == total
    assert all(0 <= v <= total for v in observed)


def test_histogram_exact_counts_across_thread_churn():
    reg = MetricRegistry()
    hist = reg.histogram("stress.churn_seconds", buckets=(0.1, 1.0, 10.0))
    samples = (0.05, 0.5, 5.0, 50.0)  # one per bucket incl. overflow

    def work():
        for _ in range(100):
            for s in samples:
                hist.observe(s)

    for _ in range(5):
        _run_all([threading.Thread(target=work) for _ in range(4)])
    snap = hist.snapshot()
    assert snap.counts == [2000, 2000, 2000, 2000]
    assert snap.count == 8000
    assert snap.cumulative()[-1] == (float("inf"), 8000)
    assert snap.sum == pytest.approx(2000 * sum(samples))


def test_disabled_window_loses_only_disabled_increments():
    """Flipping the global switch mid-run: increments inside the disabled
    window vanish, every enabled increment still lands exactly once."""
    reg = MetricRegistry()
    counter = reg.counter("stress.window_total")
    counter.inc(10)
    obs.configure(enabled=False)
    _run_all(
        [
            threading.Thread(target=lambda: [counter.inc() for _ in range(100)])
            for _ in range(4)
        ]
    )
    obs.configure(enabled=True)
    counter.inc(5)
    assert counter.value == 15


# ---------------------------------------------------------------------- #
# journal ring under concurrency                                          #
# ---------------------------------------------------------------------- #


def test_ring_drop_oldest_exact_accounting_under_contention():
    """Many writers overflow a tiny ring concurrently: events retained +
    events dropped must equal events written, with no double counting."""
    reg = MetricRegistry()
    recorder = Recorder(capacity=128, registry=reg, local_buffer=4)
    writers, per_writer = 8, 1_000

    def work(wid):
        for i in range(per_writer):
            recorder.record("stress.event", writer=wid, i=i)

    _run_all([threading.Thread(target=work, args=(w,)) for w in range(writers)])
    retained = len(recorder)
    dropped = recorder.events_dropped
    assert retained + dropped == writers * per_writer
    assert retained <= 128 + writers * 3  # ring + at most a partial buffer each
    assert reg.counter("obs.events_dropped_total").value == dropped


def test_ring_no_loss_below_capacity_with_concurrent_readers():
    """Under capacity nothing may drop, even with readers racing writers,
    and every event must be observable exactly once in the final merge."""
    reg = MetricRegistry()
    recorder = Recorder(capacity=10_000, registry=reg, local_buffer=8)
    writers, per_writer = 6, 500
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            recorder.events(component="stress")

    def work(wid):
        for i in range(per_writer):
            recorder.record("stress.event", writer=wid, i=i)

    watch = threading.Thread(target=reader)
    watch.start()
    _run_all([threading.Thread(target=work, args=(w,)) for w in range(writers)])
    stop.set()
    watch.join()

    events = recorder.events()
    assert len(events) == writers * per_writer
    assert recorder.events_dropped == 0
    # Exactly-once: every (writer, i) pair present, no duplicates.
    seen = {(e.attrs["writer"], e.attrs["i"]) for e in events}
    assert len(seen) == writers * per_writer
    # Global sequence numbers are unique and strictly increasing.
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_ring_per_thread_order_preserved_after_merge():
    recorder = Recorder(capacity=50_000, registry=MetricRegistry(), local_buffer=16)
    writers, per_writer = 4, 2_000

    def work(wid):
        for i in range(per_writer):
            recorder.record("stress.event", writer=wid, i=i)

    _run_all([threading.Thread(target=work, args=(w,)) for w in range(writers)])
    per_thread: dict[int, list[int]] = {}
    for event in recorder.events():
        per_thread.setdefault(event.attrs["writer"], []).append(event.attrs["i"])
    for wid, order in per_thread.items():
        assert order == list(range(per_writer)), f"writer {wid} reordered"
