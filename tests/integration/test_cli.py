"""Smoke test for the ``python -m repro`` demo entry point."""

from repro.__main__ import main


def test_cli_demo_runs(capsys):
    assert main(["--rows", "600"]) == 0
    out = capsys.readouterr().out
    assert "export comparison" in out
    assert "metrics snapshot" in out
    assert "flight" in out


def test_cli_custom_seed(capsys):
    assert main(["--rows", "300", "--seed", "42"]) == 0
    assert "in-engine aggregate" in capsys.readouterr().out


def test_cli_json_format(capsys):
    import json

    assert main(["--rows", "300", "--format", "json"]) == 0
    out = capsys.readouterr().out
    payload = out[out.index("{") :]
    snapshot = json.loads(payload[: payload.rindex("}") + 1])
    assert set(snapshot) == {"counters", "gauges", "histograms"}
    assert snapshot["counters"]["txn.commit_total"] >= 1


def test_cli_prometheus_format(capsys):
    assert main(["--rows", "300", "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE txn_commit_total counter" in out
    assert "# TYPE wal_flush_seconds histogram" in out
