"""Smoke test for the ``python -m repro`` demo entry point."""

from repro.__main__ import main


def test_cli_demo_runs(capsys):
    assert main(["--rows", "600"]) == 0
    out = capsys.readouterr().out
    assert "export comparison" in out
    assert "metrics snapshot" in out
    assert "flight" in out


def test_cli_custom_seed(capsys):
    assert main(["--rows", "300", "--seed", "42"]) == 0
    assert "in-engine aggregate" in capsys.readouterr().out
