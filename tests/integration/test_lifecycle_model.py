"""Stateful property test over the FULL lifecycle, transformation included.

Unlike the slot-keyed MVCC machine (test_mvcc_model.py), this machine keys
tuples by a unique id column and reaches them through an index, so the
transformation pipeline — which *moves tuples between slots* — can run as a
first-class rule.  The reference model is just a dict id → payload; every
divergence in visibility, index maintenance, compaction, gathering, block
recycling, or GC shows up as a minimized counterexample.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro import ColumnSpec, Database, INT64, UTF8
from repro.errors import TransactionAborted
from repro.storage.constants import BlockState


class LifecycleMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database(
            logging_enabled=True,
            cold_threshold_epochs=1,
            compaction_group_size=3,
        )
        self.info = self.db.create_table(
            "t",
            [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8)],
            block_size=1 << 12,  # tiny blocks -> frequent transformation
            watch_cold=True,
        )
        self.index = self.db.create_index("t", "pk", ["id"])
        self.model: dict[int, str] = {}
        self.next_id = 0

    # ------------------------------------------------------------------ #
    # rules                                                               #
    # ------------------------------------------------------------------ #

    @rule(payload=st.text(max_size=40))
    def insert(self, payload):
        new_id = self.next_id
        self.next_id += 1
        with self.db.transaction() as txn:
            self.info.table.insert(txn, {0: new_id, 1: payload})
        self.model[new_id] = payload

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(0, 10**6), payload=st.text(max_size=40))
    def update(self, pick, payload):
        key = sorted(self.model)[pick % len(self.model)]
        txn = self.db.begin()
        hits = self.index.lookup(txn, (key,))
        assert len(hits) == 1, f"id {key}: expected 1 index hit, got {len(hits)}"
        slot, _ = hits[0]
        assert self.info.table.update(txn, slot, {1: payload})
        self.db.commit(txn)
        self.model[key] = payload

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(0, 10**6))
    def delete(self, pick):
        key = sorted(self.model)[pick % len(self.model)]
        txn = self.db.begin()
        [(slot, _)] = self.index.lookup(txn, (key,))
        assert self.info.table.delete(txn, slot)
        self.db.commit(txn)
        del self.model[key]

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(0, 10**6))
    def read_through_index(self, pick):
        key = sorted(self.model)[pick % len(self.model)]
        txn = self.db.begin()
        [(_, row)] = self.index.lookup(txn, (key,))
        assert row.get(1) == self.model[key]
        self.db.commit(txn)

    @rule()
    def gc(self):
        self.db.gc.run()

    @rule()
    def maintenance(self):
        self.db.run_maintenance()

    @rule()
    def freeze_everything(self):
        self.db.freeze_table("t", max_passes=4)

    # ------------------------------------------------------------------ #
    # invariants                                                          #
    # ------------------------------------------------------------------ #

    @invariant()
    def scan_matches_model(self):
        txn = self.db.begin()
        state = {
            row.get(0): row.get(1) for _, row in self.info.table.scan(txn)
        }
        self.db.commit(txn)
        assert state == self.model

    @invariant()
    def index_matches_model(self):
        txn = self.db.begin()
        index_ids = sorted(
            key[0] for key, _, _ in self.index.range_scan(txn)
        )
        self.db.commit(txn)
        assert index_ids == sorted(self.model)

    @invariant()
    def live_count_matches(self):
        # No transaction is in flight when invariants run, so the physical
        # tuple count must equal the model exactly (moves are delete+insert
        # pairs inside one committed transaction).
        assert self.info.table.live_tuple_count() == len(self.model)

    @invariant()
    def reader_counters_balanced(self):
        assert all(b.reader_count == 0 for b in self.info.table.blocks)

    @invariant()
    def physical_integrity_holds(self):
        report = self.db.verify_integrity()
        assert report.ok, report.findings


LifecycleModelTest = LifecycleMachine.TestCase
LifecycleModelTest.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
