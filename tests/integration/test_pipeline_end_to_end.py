"""End-to-end pipeline tests: logical contents across the full lifecycle.

Tuples are tracked by a unique id column (physical slots move during
compaction), and the full machinery — OLTP churn, GC, transformation,
export, checkpointing, recovery — must preserve the logical table at every
stage.
"""

from __future__ import annotations

import random

import pytest

from repro import ColumnSpec, Database, INT64, TransactionAborted, UTF8
from repro.export import TableExporter
from repro.export.flight import client_receive, export_stream
from repro.storage.constants import BlockState


class Workload:
    """Randomized churn with a logical reference state keyed by id."""

    def __init__(self, db, info, seed=0):
        self.db = db
        self.info = info
        self.index = db.create_index(info.name, "pk", [info.table.layout.columns[0].name])
        self.rng = random.Random(seed)
        self.expected: dict[int, str] = {}
        self.next_id = 0

    def churn(self, operations: int) -> None:
        for _ in range(operations):
            action = self.rng.random()
            txn = self.db.begin()
            try:
                if action < 0.5 or not self.expected:
                    new_id = self.next_id
                    self.next_id += 1
                    value = f"value-{new_id}-{'p' * self.rng.randint(0, 30)}"
                    self.info.table.insert(txn, {0: new_id, 1: value})
                    self.db.commit(txn)
                    self.expected[new_id] = value
                elif action < 0.8:
                    key = self.rng.choice(sorted(self.expected))
                    [(slot, _)] = self.index.lookup(txn, (key,))
                    value = f"updated-{key}-{'q' * self.rng.randint(0, 30)}"
                    assert self.info.table.update(txn, slot, {1: value})
                    self.db.commit(txn)
                    self.expected[key] = value
                else:
                    key = self.rng.choice(sorted(self.expected))
                    [(slot, _)] = self.index.lookup(txn, (key,))
                    assert self.info.table.delete(txn, slot)
                    self.db.commit(txn)
                    del self.expected[key]
            except TransactionAborted:
                pass

    def engine_state(self) -> dict[int, str]:
        txn = self.db.begin()
        state = {row.get(0): row.get(1) for _, row in self.info.table.scan(txn)}
        self.db.commit(txn)
        return state


@pytest.fixture
def pipeline():
    db = Database(cold_threshold_epochs=1, compaction_group_size=4)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8)],
        block_size=1 << 13,
        watch_cold=True,
    )
    return db, info, Workload(db, info, seed=11)


class TestLifecycle:
    def test_contents_stable_across_repeated_transform_cycles(self, pipeline):
        db, info, workload = pipeline
        for cycle in range(4):
            workload.churn(120)
            assert workload.engine_state() == workload.expected
            db.run_maintenance(passes=4)
            assert workload.engine_state() == workload.expected

    def test_index_lookups_survive_tuple_movement(self, pipeline):
        db, info, workload = pipeline
        workload.churn(200)
        db.run_maintenance(passes=5)
        txn = db.begin()
        for key, value in workload.expected.items():
            hits = workload.index.lookup(txn, (key,))
            assert len(hits) == 1, f"key {key}: {len(hits)} index hits"
            assert hits[0][1].get(1) == value
        db.commit(txn)

    def test_export_matches_after_churn_and_transform(self, pipeline):
        db, info, workload = pipeline
        workload.churn(150)
        db.run_maintenance(passes=4)
        arrow = client_receive(export_stream(db.txn_manager, info.table).payload)
        exported = dict(zip(arrow.column_values("id"), arrow.column_values("payload")))
        assert exported == workload.expected

    def test_all_export_methods_agree_after_transform(self, pipeline):
        db, info, workload = pipeline
        workload.churn(100)
        db.run_maintenance(passes=4)
        exporter = TableExporter(db.txn_manager, info.table)
        flight_rows = exporter.export("flight").rows
        vec_rows = exporter.export("vectorized").rows
        pg_rows = exporter.export("postgres").rows
        assert flight_rows == vec_rows == pg_rows == len(workload.expected)

    def test_recovery_replays_full_history(self, pipeline):
        db, info, workload = pipeline
        workload.churn(150)
        db.run_maintenance(passes=3)
        workload.churn(50)
        db.quiesce()
        log = db.log_contents()

        fresh = Database()
        fresh.create_table(
            "t",
            [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8)],
            block_size=1 << 13,
        )
        fresh.recover_from(log)
        txn = fresh.begin()
        state = {row.get(0): row.get(1) for _, row in fresh.catalog.table("t").scan(txn)}
        assert state == workload.expected

    def test_checkpoint_mid_lifecycle(self, pipeline):
        db, info, workload = pipeline
        workload.churn(100)
        db.run_maintenance(passes=3)
        checkpoint = db.checkpoint()
        workload.churn(60)
        db.quiesce()
        log_suffix = db.log_contents()

        fresh = Database()
        fresh.create_table(
            "t",
            [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8)],
            block_size=1 << 13,
        )
        fresh.recover_with_checkpoint(checkpoint, log_suffix)
        txn = fresh.begin()
        state = {row.get(0): row.get(1) for _, row in fresh.catalog.table("t").scan(txn)}
        assert state == workload.expected

    def test_block_accounting_after_heavy_deletes(self, pipeline):
        db, info, workload = pipeline
        # Enough churn to span several 332-slot blocks (the insertion block
        # is never considered cold, so freeing requires >1 block).
        workload.churn(900)
        # Delete most rows, then let the pipeline reclaim blocks.
        txn = db.begin()
        keys = sorted(workload.expected)[: int(len(workload.expected) * 0.8)]
        for key in keys:
            [(slot, _)] = workload.index.lookup(txn, (key,))
            assert info.table.delete(txn, slot)
        db.commit(txn)
        for key in keys:
            del workload.expected[key]
        blocks_before = len(info.table.blocks)
        db.run_maintenance(passes=6)
        assert workload.engine_state() == workload.expected
        assert len(info.table.blocks) <= blocks_before
        assert db.transformer.stats.blocks_freed >= 1
