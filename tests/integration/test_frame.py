"""Tests for the DataFrame adapter — including end-to-end from the engine."""

import numpy as np
import pytest

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.export.flight import client_receive, export_stream
from repro.frame import DataFrame, FrameError


class TestConstruction:
    def test_numeric_columns_become_numpy(self):
        frame = DataFrame({"x": [1, 2, 3], "s": ["a", "b", None]})
        assert isinstance(frame["x"], np.ndarray)
        assert isinstance(frame["s"], list)
        assert len(frame) == 3

    def test_ragged_rejected(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1], "b": [1, 2]})

    def test_missing_column(self):
        with pytest.raises(FrameError):
            DataFrame({"a": [1]})["b"]

    def test_empty_frame(self):
        frame = DataFrame({})
        assert len(frame) == 0
        assert frame.column_names == []


class TestOperations:
    @pytest.fixture
    def frame(self):
        return DataFrame(
            {
                "id": list(range(10)),
                "value": [float(i % 3) for i in range(10)],
                "name": [None if i == 4 else f"n{i}" for i in range(10)],
            }
        )

    def test_head(self, frame):
        assert frame.head(3)["id"].tolist() == [0, 1, 2]

    def test_select(self, frame):
        assert frame.select(["name"]).column_names == ["name"]

    def test_filter_numeric_vectorized(self, frame):
        kept = frame.filter("value", lambda v: v > 1.0)
        assert all(v > 1.0 for v in kept["value"])
        assert len(kept) == sum(1 for i in range(10) if i % 3 == 2)

    def test_filter_varlen_scalar(self, frame):
        kept = frame.filter("name", lambda s: s.endswith("7"))
        assert kept.to_dict()["name"] == ["n7"]

    def test_filter_skips_nulls(self, frame):
        kept = frame.filter("name", lambda s: True)
        assert len(kept) == 9  # the null row is dropped

    def test_sort_values(self, frame):
        ordered = frame.sort_values("value")
        assert list(ordered["value"]) == sorted(frame["value"])
        reverse = frame.sort_values("value", descending=True)
        assert list(reverse["value"]) == sorted(frame["value"], reverse=True)

    def test_sort_varlen_nulls_last(self, frame):
        ordered = frame.sort_values("name")
        assert ordered.to_dict()["name"][-1] is None

    def test_describe(self, frame):
        stats = frame.describe()
        assert stats["id"]["count"] == 10
        assert stats["value"]["max"] == 2.0
        assert "name" not in stats  # non-numeric

    def test_csv(self, frame):
        text = frame.to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "id,value,name"
        assert len(lines) == 11
        assert lines[5].endswith(",")  # the null name


class TestEndToEnd:
    def test_engine_to_frame_pipeline(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = db.create_table(
            "sales",
            [ColumnSpec("region", INT64), ColumnSpec("amount", FLOAT64),
             ColumnSpec("memo", UTF8)],
            block_size=1 << 16,
            watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(2000):
                info.table.insert(txn, {0: i % 4, 1: float(i), 2: f"memo-{i}"})
        db.freeze_table("sales")
        arrow = client_receive(export_stream(db.txn_manager, info.table).payload)
        frame = DataFrame.from_arrow(arrow)
        assert len(frame) == 2000
        # Numeric columns arrive zero-copy from the single frozen batch...
        if len(arrow.batches) == 1:
            assert np.shares_memory(
                frame["region"], arrow.batches[0].column("region").to_numpy()
            )
        top = frame.filter("region", lambda r: r == 2).describe()["amount"]
        expected = [float(i) for i in range(2000) if i % 4 == 2]
        assert top["mean"] == pytest.approx(sum(expected) / len(expected))

    def test_multi_batch_materializes(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = db.create_table(
            "t", [ColumnSpec("x", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13, watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(900):
                info.table.insert(txn, {0: i, 1: "v"})
        db.freeze_table("t")
        arrow = client_receive(export_stream(db.txn_manager, info.table).payload)
        assert len(arrow.batches) > 1
        frame = DataFrame.from_arrow(arrow)
        assert sorted(frame["x"].tolist()) == list(range(900))
