"""Real-thread stress tests: invariants under concurrent load.

These tests run genuinely concurrent transactions (Python threads) against
one table and check global invariants — conservation of money under
transfers, snapshot-consistent readers, index/table agreement — while the
GC and the transformation pipeline run in the background.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import ColumnSpec, Database, INT64, TransactionAborted, UTF8
from repro.storage.constants import BlockState


def run_threads(workers):
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestTransferInvariant:
    """The classic bank-transfer conservation check."""

    ACCOUNTS = 20
    INITIAL = 1000

    def build(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = db.create_table(
            "accounts",
            [ColumnSpec("id", INT64), ColumnSpec("balance", INT64)],
            block_size=1 << 14,
            watch_cold=True,
        )
        with db.transaction() as txn:
            slots = [
                info.table.insert(txn, {0: i, 1: self.INITIAL})
                for i in range(self.ACCOUNTS)
            ]
        return db, info, slots

    def total(self, db, info):
        txn = db.begin()
        balances = [row.get(1) for _, row in info.table.scan(txn, [1])]
        db.commit(txn)
        return sum(balances), len(balances)

    def transfer_worker(self, db, info, slots, seed, rounds=60):
        rng = random.Random(seed)

        def work():
            for _ in range(rounds):
                a, b = rng.sample(range(len(slots)), 2)
                amount = rng.randint(1, 50)
                txn = db.begin()
                try:
                    row_a = info.table.select(txn, slots[a], [1])
                    row_b = info.table.select(txn, slots[b], [1])
                    if row_a is None or row_b is None:
                        db.abort(txn)
                        continue
                    ok = info.table.update(txn, slots[a], {1: row_a.get(1) - amount})
                    ok = ok and info.table.update(txn, slots[b], {1: row_b.get(1) + amount})
                    if ok:
                        db.commit(txn)
                    else:
                        db.abort(txn)
                except TransactionAborted:
                    pass

        return work

    def test_money_conserved_under_concurrent_transfers(self):
        db, info, slots = self.build()
        workers = [
            self.transfer_worker(db, info, slots, seed=s) for s in range(4)
        ]
        run_threads(workers)
        total, count = self.total(db, info)
        assert count == self.ACCOUNTS
        assert total == self.ACCOUNTS * self.INITIAL

    def test_money_conserved_with_gc_and_transform(self):
        db, info, slots = self.build()
        stop = threading.Event()

        def maintenance():
            while not stop.is_set():
                db.run_maintenance()

        maintainer = threading.Thread(target=maintenance)
        maintainer.start()
        try:
            run_threads([self.transfer_worker(db, info, slots, seed=s) for s in range(3)])
        finally:
            stop.set()
            maintainer.join()
        total, count = self.total(db, info)
        assert count == self.ACCOUNTS
        assert total == self.ACCOUNTS * self.INITIAL

    def test_snapshot_readers_see_conserved_totals(self):
        db, info, slots = self.build()
        bad_totals = []

        def reader():
            for _ in range(40):
                txn = db.begin()
                balances = [row.get(1) for _, row in info.table.scan(txn, [1])]
                db.commit(txn)
                if sum(balances) != self.ACCOUNTS * self.INITIAL:
                    bad_totals.append(sum(balances))

        run_threads(
            [self.transfer_worker(db, info, slots, seed=9), reader, reader]
        )
        assert not bad_totals, f"snapshot saw non-conserved totals: {bad_totals[:3]}"


class TestIndexTableAgreement:
    def test_index_matches_table_under_churn(self):
        db = Database(logging_enabled=False)
        info = db.create_table(
            "kv",
            [ColumnSpec("k", INT64), ColumnSpec("v", UTF8)],
            block_size=1 << 14,
        )
        index = db.create_index("kv", "pk", ["k"])
        key_range = 50

        def churn(seed):
            rng = random.Random(seed)

            def work():
                for _ in range(80):
                    txn = db.begin()
                    try:
                        key = rng.randrange(key_range)
                        hits = index.lookup(txn, (key,))
                        if hits and rng.random() < 0.4:
                            slot, _ = hits[0]
                            if not info.table.delete(txn, slot):
                                db.abort(txn)
                                continue
                        elif not hits:
                            info.table.insert(txn, {0: key, 1: f"v{key}"})
                        db.commit(txn)
                    except TransactionAborted:
                        pass
                    except Exception:
                        if txn.is_active:
                            db.abort(txn)

            return work

        run_threads([churn(s) for s in range(4)])
        txn = db.begin()
        table_keys = sorted(row.get(0) for _, row in info.table.scan(txn, [0]))
        index_keys = sorted(
            key[0]
            for key, _, _ in index.range_scan(txn)
        )
        db.commit(txn)
        assert table_keys == index_keys


class TestFrozenReadStress:
    def test_concurrent_frozen_reads_and_reheating_writes(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = db.create_table(
            "t",
            [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 14,
            watch_cold=True,
        )
        with db.transaction() as txn:
            slots = [
                info.table.insert(txn, {0: i, 1: f"payload-{i}-out-of-line-value"})
                for i in range(info.table.layout.num_slots * 2)
            ]
        db.freeze_table("t")
        from repro.transform.arrow_view import block_to_record_batch

        read_errors = []

        def arrow_reader():
            for _ in range(60):
                for block in list(info.table.blocks):
                    if block.begin_frozen_read():
                        try:
                            batch = block_to_record_batch(block)
                            assert batch.num_rows >= 0
                        except Exception as exc:
                            read_errors.append(exc)
                        finally:
                            block.end_frozen_read()

        def writer():
            rng = random.Random(1)
            for _ in range(40):
                txn = db.begin()
                try:
                    slot = rng.choice(slots)
                    info.table.update(txn, slot, {1: "reheated!" + "x" * 20})
                    db.commit(txn)
                except TransactionAborted:
                    pass

        run_threads([arrow_reader, arrow_reader, writer])
        assert not read_errors
        # Reader counters must balance out.
        assert all(b.reader_count == 0 for b in info.table.blocks)
