"""Stateful property test: the engine vs a reference MVCC model.

Hypothesis drives random interleavings of transactions (begin / insert /
update / delete / read / scan / commit / abort / GC) against both the real
engine and a pure-Python snapshot-isolation model.  Any divergence —
visibility, conflict outcomes, lost updates, GC-induced corruption — fails
the test with a minimized counterexample.

The model: every transaction sees (committed state at its begin) ∪ (its own
writes).  A write conflicts iff the tuple's chain head is an uncommitted
write of another live transaction or a version committed after the writer's
snapshot.  Commits apply local writes atomically; aborts discard them.
"""

from __future__ import annotations

import dataclasses

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.errors import TransactionAborted
from repro.gc_engine.collector import GarbageCollector
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.txn.manager import TransactionManager


@dataclasses.dataclass
class ModelTxn:
    """The reference model's view of one open transaction."""

    snapshot: dict  # slot-key -> row dict (committed state at begin)
    snapshot_versions: dict  # slot-key -> version counter at begin
    local: dict = dataclasses.field(default_factory=dict)  # own writes
    local_deletes: set = dataclasses.field(default_factory=set)
    written: set = dataclasses.field(default_factory=set)
    must_abort: bool = False

    def view(self, key):
        if key in self.local_deletes:
            return None
        if key in self.local:
            return self.local[key]
        return self.snapshot.get(key)

    def visible_keys(self):
        keys = (set(self.snapshot) | set(self.local)) - self.local_deletes
        return {k for k in keys if self.view(k) is not None}


class MvccMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        layout = BlockLayout(
            [ColumnSpec("a", INT64), ColumnSpec("s", UTF8)], block_size=1 << 13
        )
        self.tm = TransactionManager()
        self.table = DataTable(BlockStore(), layout, "m")
        self.gc = GarbageCollector(self.tm)
        # committed state and version counters (conflict detection)
        self.committed: dict = {}
        self.versions: dict = {}
        # open transactions: engine txn object + model txn
        self.open: dict[int, tuple] = {}
        self.slot_of: dict = {}  # key -> engine TupleSlot
        self.next_key = 0
        self.next_txn = 0

    txns = Bundle("txns")

    @rule(target=txns)
    def begin(self):
        txn = self.tm.begin()
        model = ModelTxn(dict(self.committed), dict(self.versions))
        txn_id = self.next_txn
        self.next_txn += 1
        self.open[txn_id] = (txn, model)
        return txn_id

    def _live(self, txn_id):
        return txn_id in self.open

    @rule(txn_id=txns, a=st.integers(-100, 100), s=st.one_of(st.none(), st.text(max_size=30)))
    def insert(self, txn_id, a, s):
        if not self._live(txn_id):
            return
        txn, model = self.open[txn_id]
        key = self.next_key
        self.next_key += 1
        slot = self.table.insert(txn, {0: a, 1: s})
        self.slot_of[key] = slot
        model.local[key] = {0: a, 1: s}
        model.written.add(key)

    @rule(txn_id=txns, key_pick=st.integers(0, 10**6), a=st.integers(-100, 100))
    def update(self, txn_id, key_pick, a):
        if not self._live(txn_id):
            return
        txn, model = self.open[txn_id]
        keys = sorted(model.visible_keys())
        if not keys:
            return
        key = keys[key_pick % len(keys)]
        expected_ok = self._model_writable(txn_id, model, key)
        ok = self.table.update(txn, self.slot_of[key], {0: a})
        assert ok == expected_ok, (
            f"update conflict divergence on key {key}: engine={ok} model={expected_ok}"
        )
        if ok:
            row = dict(model.view(key))
            row[0] = a
            model.local[key] = row
            model.local_deletes.discard(key)
            model.written.add(key)
        else:
            model.must_abort = True

    @rule(txn_id=txns, key_pick=st.integers(0, 10**6))
    def delete(self, txn_id, key_pick):
        if not self._live(txn_id):
            return
        txn, model = self.open[txn_id]
        keys = sorted(model.visible_keys())
        if not keys:
            return
        key = keys[key_pick % len(keys)]
        expected_ok = self._model_writable(txn_id, model, key)
        if not expected_ok:
            # The engine may raise (slot physically deallocated by a
            # concurrent committed delete) or return False; both mean "no".
            try:
                ok = self.table.delete(txn, self.slot_of[key])
            except Exception:
                ok = False
                txn.must_abort = True
        else:
            ok = self.table.delete(txn, self.slot_of[key])
        assert ok == expected_ok, (
            f"delete conflict divergence on key {key}: engine={ok} model={expected_ok}"
        )
        if ok:
            model.local_deletes.add(key)
            model.local.pop(key, None)
            model.written.add(key)
        else:
            model.must_abort = True

    def _model_writable(self, txn_id, model, key) -> bool:
        for other_id, (_, other_model) in self.open.items():
            if other_id != txn_id and key in other_model.written:
                return False
        if self.versions.get(key, 0) != model.snapshot_versions.get(key, 0):
            return False
        return True

    @rule(txn_id=txns, key_pick=st.integers(0, 10**6))
    def read(self, txn_id, key_pick):
        if not self._live(txn_id):
            return
        txn, model = self.open[txn_id]
        all_keys = sorted(self.slot_of)
        if not all_keys:
            return
        key = all_keys[key_pick % len(all_keys)]
        row = self.table.select(txn, self.slot_of[key])
        expected = model.view(key)
        if expected is None:
            assert row is None, f"key {key} should be invisible, engine saw {row}"
        else:
            assert row is not None, f"key {key} should be visible"
            assert row.get(0) == expected[0]
            assert row.get(1) == expected[1]

    @rule(txn_id=txns)
    def scan(self, txn_id):
        if not self._live(txn_id):
            return
        txn, model = self.open[txn_id]
        engine_rows = {
            (row.get(0), row.get(1)) for _, row in self.table.scan(txn)
        }
        model_rows = {
            (model.view(k)[0], model.view(k)[1]) for k in model.visible_keys()
        }
        assert engine_rows == model_rows

    @rule(txn_id=txns)
    def commit(self, txn_id):
        if not self._live(txn_id):
            return
        txn, model = self.open.pop(txn_id)
        if model.must_abort:
            try:
                self.tm.commit(txn)
                raise AssertionError("commit should have raised after conflict")
            except TransactionAborted:
                pass
            return
        self.tm.commit(txn)
        for key in model.local_deletes:
            if key in self.committed:
                del self.committed[key]
            self.versions[key] = self.versions.get(key, 0) + 1
        for key, row in model.local.items():
            self.committed[key] = row
            self.versions[key] = self.versions.get(key, 0) + 1

    @rule(txn_id=txns)
    def abort(self, txn_id):
        if not self._live(txn_id):
            return
        txn, _ = self.open.pop(txn_id)
        self.tm.abort(txn)

    @rule()
    def run_gc(self):
        self.gc.run()

    @invariant()
    def committed_state_matches_fresh_snapshot(self):
        txn = self.tm.begin()
        engine_rows = {
            (row.get(0), row.get(1)) for _, row in self.table.scan(txn)
        }
        self.tm.commit(txn)
        model_rows = {(row[0], row[1]) for row in self.committed.values()}
        assert engine_rows == model_rows


MvccModelTest = MvccMachine.TestCase
MvccModelTest.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
