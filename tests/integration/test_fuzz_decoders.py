"""Fuzz tests: every binary decoder must fail cleanly, never crash.

Arbitrary bytes and mutated valid streams fed to the IPC reader, the log
decoder, the checkpoint loader, and the wire-protocol parsers must either
parse or raise the library's own error types — no segfault-equivalents
(IndexError, struct.error, UnicodeDecodeError...) may escape.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ColumnSpec, Database, INT64, UTF8
from repro.arrowfmt import ipc
from repro.arrowfmt.builder import array_from_pylist
from repro.arrowfmt.datatypes import Field, Schema
from repro.arrowfmt.table import RecordBatch, Table
from repro.errors import ReproError
from repro.export import postgres_wire, vectorized
from repro.wal.checkpoint import load_checkpoint
from repro.wal.records import decode_stream


def sample_ipc_stream() -> bytes:
    schema = Schema([Field("a", INT64), Field("s", UTF8)])
    batch = RecordBatch(
        schema,
        [array_from_pylist([1, 2, None], INT64), array_from_pylist(["x", None, "zz"], UTF8)],
    )
    return ipc.write_table(Table(schema, [batch]))


def sample_log() -> bytes:
    db = Database()
    info = db.create_table("t", [ColumnSpec("a", INT64), ColumnSpec("s", UTF8)])
    with db.transaction() as txn:
        info.table.insert(txn, {0: 1, 1: "hello"})
    db.quiesce()
    return db.log_contents()


def mutate(raw: bytes, position: int, value: int) -> bytes:
    position %= max(len(raw), 1)
    return raw[:position] + bytes([value]) + raw[position + 1 :]


@settings(max_examples=80, deadline=None)
@given(st.binary(max_size=200))
def test_ipc_reader_never_crashes_on_garbage(raw):
    try:
        ipc.read_table(raw)
    except ReproError:
        pass


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, 255))
def test_ipc_reader_survives_single_byte_corruption(position, value):
    raw = mutate(sample_ipc_stream(), position, value)
    try:
        table = ipc.read_table(raw)
        table.to_pydict()  # decoding what parsed must also be safe
    except (ReproError, ValueError, UnicodeDecodeError):
        # A flipped byte inside a UTF-8 value may surface at decode time;
        # anything else must be the library's own error.
        pass


@settings(max_examples=80, deadline=None)
@given(st.binary(max_size=200))
def test_log_decoder_never_crashes_on_garbage(raw):
    try:
        decode_stream(raw)
    except ReproError:
        pass


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, 255))
def test_log_decoder_survives_single_byte_corruption(position, value):
    raw = mutate(sample_log(), position, value)
    try:
        decode_stream(raw)
    except (ReproError, UnicodeDecodeError):
        pass


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=200))
def test_checkpoint_loader_never_crashes_on_garbage(raw):
    db = Database()
    db.create_table("t", [ColumnSpec("a", INT64)])
    try:
        load_checkpoint(db, raw)
    except ReproError:
        pass


@settings(max_examples=80, deadline=None)
@given(st.binary(max_size=200))
def test_postgres_wire_decoder_never_crashes(raw):
    try:
        postgres_wire.decode_rows(raw)
    except ReproError:
        pass


@settings(max_examples=80, deadline=None)
@given(st.binary(max_size=200))
def test_vectorized_decoder_never_crashes(raw):
    try:
        vectorized.decode_table(raw)
    except (ReproError, Exception) as exc:
        # decode_table length-prefixes batches; any failure must be typed.
        assert isinstance(exc, ReproError) or isinstance(exc, (ValueError,)), (
            f"unexpected {type(exc).__name__}: {exc}"
        )
