"""Tests for parallel transformation (Section 4.4)."""

from repro.storage.constants import BlockState

from tests.transform.conftest import MiniEngine


class TestParallelTransform:
    def run_parallel(self, engine, threads=3, passes=6):
        for _ in range(passes):
            engine.gc.run()
            engine.transformer.process_queue_parallel(num_threads=threads)
            engine.gc.run()
            engine.transformer.process_freeze_pending()
            engine.gc.run()

    def test_contents_preserved(self):
        engine = MiniEngine(group_size=1)  # one group per block -> parallelism
        engine.fill(n_blocks=4, delete_fraction=0.2)
        before = engine.visible_ids()
        self.run_parallel(engine)
        assert engine.visible_ids() == before

    def test_blocks_frozen(self):
        engine = MiniEngine(group_size=1)
        engine.fill(n_blocks=4, delete_fraction=0.0)
        self.run_parallel(engine)
        states = engine.table.block_states()
        assert states[BlockState.FROZEN] >= 3

    def test_stats_consistent(self):
        engine = MiniEngine(group_size=1)
        engine.fill(n_blocks=4, delete_fraction=0.1)
        self.run_parallel(engine)
        stats = engine.transformer.stats
        assert stats.groups_compacted <= stats.groups_attempted
        assert stats.blocks_frozen >= 1

    def test_single_thread_degenerates_to_serial(self):
        engine = MiniEngine(group_size=2)
        engine.fill(n_blocks=3, delete_fraction=0.3)
        before = engine.visible_ids()
        for _ in range(6):
            engine.gc.run()
            engine.transformer.process_queue_parallel(num_threads=1)
            engine.gc.run()
            engine.transformer.process_freeze_pending()
            engine.gc.run()
        assert engine.visible_ids() == before

    def test_concurrent_user_writes_during_parallel_transform(self):
        import random
        import threading

        engine = MiniEngine(group_size=1)
        slots = engine.fill(n_blocks=4, delete_fraction=0.1)
        rng = random.Random(3)
        errors = []

        def writer():
            try:
                for _ in range(60):
                    txn = engine.tm.begin()
                    slot = rng.choice(slots)
                    row = engine.table.select(txn, slot)
                    if row is not None:
                        engine.table.update(txn, slot, {0: rng.randint(0, 10)})
                    if txn.must_abort:
                        engine.tm.abort(txn)
                    else:
                        engine.tm.commit(txn)
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        self.run_parallel(engine, passes=8)
        thread.join()
        assert not errors
        # Whatever the interleaving, the table must still scan cleanly.
        assert len(engine.visible_ids()) == len(slots)
