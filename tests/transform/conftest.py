"""Shared fixtures for transformation tests: a miniature engine."""

import random

import pytest

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.gc_engine.collector import GarbageCollector
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.transform.access_observer import AccessObserver
from repro.transform.transformer import BlockTransformer
from repro.txn.manager import TransactionManager

SMALL_BLOCK = 1 << 14  # keep per-test tuple counts manageable


class MiniEngine:
    """A wired-together engine over one small-block table."""

    def __init__(self, cold_format="gather", threshold=1, group_size=10,
                 optimal=False):
        self.layout = BlockLayout(
            [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8)],
            block_size=SMALL_BLOCK,
        )
        self.store = BlockStore()
        self.tm = TransactionManager()
        self.table = DataTable(self.store, self.layout, "t")
        self.observer = AccessObserver(threshold_epochs=threshold)
        self.observer.watch_table(self.table)
        self.gc = GarbageCollector(self.tm, access_observer=self.observer)
        self.transformer = BlockTransformer(
            self.tm,
            self.gc,
            self.observer,
            compaction_group_size=group_size,
            cold_format=cold_format,
            optimal_compaction=optimal,
        )

    def fill(self, n_blocks=3, delete_fraction=0.3, seed=7, long_values=True):
        """Populate ``n_blocks`` worth of tuples and delete a fraction."""
        rng = random.Random(seed)
        txn = self.tm.begin()
        slots = []
        for i in range(self.layout.num_slots * n_blocks):
            payload = (
                f"tuple-{i}-with-a-long-payload-string" if long_values else f"v{i % 10}"
            )
            slots.append(self.table.insert(txn, {0: i, 1: payload}))
        self.tm.commit(txn)
        if delete_fraction:
            txn = self.tm.begin()
            victims = rng.sample(slots, int(len(slots) * delete_fraction))
            for slot in victims:
                self.table.delete(txn, slot)
            self.tm.commit(txn)
            slots = [s for s in slots if s not in set(victims)]
        return slots

    def transform_all(self, passes=6):
        for _ in range(passes):
            self.transformer.run_pass()

    def visible_ids(self):
        txn = self.tm.begin()
        ids = sorted(row.get(0) for _, row in self.table.scan(txn))
        self.tm.commit(txn)
        return ids


@pytest.fixture
def engine():
    return MiniEngine()
