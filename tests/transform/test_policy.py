"""Tests for compaction-group formation policies."""

import pytest

from repro.transform.policy import FixedGroupPolicy, WriteBudgetPolicy

from tests.transform.conftest import MiniEngine


def blocks_with_emptiness(fractions, engine=None):
    """One block per fraction, each with that share of slots deleted."""
    engine = engine or MiniEngine()
    slots_per_block = engine.layout.num_slots
    txn = engine.tm.begin()
    all_slots = []
    for i in range(slots_per_block * len(fractions)):
        all_slots.append(engine.table.insert(txn, {0: i, 1: "v"}))
    engine.tm.commit(txn)
    txn = engine.tm.begin()
    for block_index, fraction in enumerate(fractions):
        start = block_index * slots_per_block
        for offset in range(int(slots_per_block * fraction)):
            engine.table.delete(txn, all_slots[start + offset])
    engine.tm.commit(txn)
    engine.gc.run_until_quiet()
    return engine, engine.table.blocks[: len(fractions)]


class TestFixedPolicy:
    def test_chunks(self):
        engine, blocks = blocks_with_emptiness([0.1] * 5)
        groups = FixedGroupPolicy(2).form_groups(blocks)
        assert [len(g) for g in groups] == [2, 2, 1]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FixedGroupPolicy(0)

    def test_empty_input(self):
        assert FixedGroupPolicy(3).form_groups([]) == []


class TestWriteBudgetPolicy:
    def test_budget_bounds_estimated_moves(self):
        engine, blocks = blocks_with_emptiness([0.5] * 6)
        slots = engine.layout.num_slots
        budget = slots  # roughly two half-empty blocks' worth
        policy = WriteBudgetPolicy(movement_budget=budget, min_group=1)
        groups = policy.form_groups(blocks)
        assert len(groups) >= 2
        for group in groups[:-1]:
            estimate = sum(policy._estimated_moves(b) for b in group)
            # Each group stays within budget + one block's overshoot.
            assert estimate <= budget + slots // 2

    def test_nearly_full_blocks_group_together(self):
        # Tiny movement estimates: everything fits in one group.
        engine, blocks = blocks_with_emptiness([0.01] * 6)
        policy = WriteBudgetPolicy(movement_budget=10_000)
        groups = policy.form_groups(blocks)
        assert len(groups) == 1

    def test_all_blocks_covered_exactly_once(self):
        engine, blocks = blocks_with_emptiness([0.1, 0.9, 0.5, 0.3, 0.7])
        groups = WriteBudgetPolicy(movement_budget=200).form_groups(blocks)
        flattened = [b.block_id for g in groups for b in g]
        assert sorted(flattened) == sorted(b.block_id for b in blocks)

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBudgetPolicy(movement_budget=0)

    def test_empty_input(self):
        assert WriteBudgetPolicy().form_groups([]) == []


class TestPolicyInPipeline:
    def run_pipeline(self, policy):
        engine = MiniEngine()
        engine.transformer.group_policy = policy
        engine.fill(n_blocks=4, delete_fraction=0.4)
        before = engine.visible_ids()
        engine.transform_all(passes=8)
        assert engine.visible_ids() == before
        return engine

    def test_budget_policy_end_to_end(self):
        engine = self.run_pipeline(WriteBudgetPolicy(movement_budget=300, min_group=1))
        assert engine.transformer.stats.blocks_frozen >= 1

    def test_budget_policy_caps_write_sets(self):
        budget = 250
        engine = self.run_pipeline(WriteBudgetPolicy(movement_budget=budget, min_group=1))
        # Each compaction txn's ops = 2 * movements (+ noise); with the
        # budget respected, no transaction explodes.
        stats = engine.transformer.stats
        if stats.groups_compacted:
            average_ops = stats.compaction_write_set_ops / stats.groups_compacted
            assert average_ops <= 2 * (budget + engine.layout.num_slots)
