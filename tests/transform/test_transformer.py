"""Tests for the end-to-end transformation pipeline and its baselines."""

import numpy as np
import pytest

from repro.errors import BlockStateError
from repro.storage.constants import BlockState
from repro.storage.tuple_slot import TupleSlot
from repro.transform.arrow_view import block_to_record_batch, table_schema
from repro.transform.transformer import inplace_transform, snapshot_transform

from tests.transform.conftest import MiniEngine


class TestAccessObserver:
    def test_cold_blocks_queued_after_threshold(self):
        engine = MiniEngine(threshold=2)
        engine.fill(n_blocks=2, delete_fraction=0.0)
        engine.gc.run()  # epoch 1: blocks observed as modified
        assert len(engine.observer.queue) == 0
        engine.gc.run()  # epoch 2: still within threshold
        engine.gc.run()  # epoch 3: cold now
        assert len(engine.observer.queue) >= 1

    def test_active_insertion_block_not_queued(self):
        engine = MiniEngine(threshold=1)
        txn = engine.tm.begin()
        engine.table.insert(txn, {0: 1, 1: "x"})  # partially-filled head block
        engine.tm.commit(txn)
        for _ in range(4):
            engine.gc.run()
        assert len(engine.observer.queue) == 0

    def test_queue_deduplicates(self):
        engine = MiniEngine(threshold=1)
        engine.fill(n_blocks=2, delete_fraction=0.0)
        for _ in range(5):
            engine.gc.run()
        depth = len(engine.observer.queue)
        assert depth <= len(engine.table.blocks)

    def test_unwatched_tables_ignored(self):
        engine = MiniEngine(threshold=1)
        engine.observer._tables.clear()
        engine.fill(n_blocks=2, delete_fraction=0.0)
        for _ in range(4):
            engine.gc.run()
        assert len(engine.observer.queue) == 0


class TestPipeline:
    def test_blocks_reach_frozen(self, engine):
        engine.fill(n_blocks=3, delete_fraction=0.3)
        engine.transform_all()
        states = engine.table.block_states()
        assert states[BlockState.FROZEN] >= 2
        assert states[BlockState.HOT] == 0

    def test_contents_preserved_through_pipeline(self, engine):
        engine.fill(n_blocks=3, delete_fraction=0.3)
        before = engine.visible_ids()
        engine.transform_all()
        assert engine.visible_ids() == before

    def test_empty_blocks_freed(self, engine):
        engine.fill(n_blocks=4, delete_fraction=0.5)
        initial = len(engine.table.blocks)
        engine.transform_all()
        assert engine.transformer.stats.blocks_freed >= 1
        assert len(engine.table.blocks) < initial

    def test_writes_preempt_cooling(self):
        engine = MiniEngine(threshold=1)
        slots = engine.fill(n_blocks=2, delete_fraction=0.0)
        engine.gc.run()
        engine.gc.run()
        engine.transformer.process_queue()
        cooling = [
            b for b in engine.table.blocks if b.state is BlockState.COOLING
        ]
        assert cooling
        target = cooling[0]
        txn = engine.tm.begin()
        slot = TupleSlot(target.block_id, 0)
        assert engine.table.update(txn, slot, {1: "preempting write"})
        engine.tm.commit(txn)
        assert target.state is BlockState.HOT
        frozen_now = engine.transformer.process_freeze_pending()
        assert target.state is BlockState.HOT  # pipeline abandoned it
        assert engine.transformer.stats.freezes_preempted >= 1

    def test_interloper_version_blocks_freeze(self):
        # A write that lands between compaction-commit and the freeze scan
        # leaves a version record; the scan must bounce the block.
        engine = MiniEngine(threshold=1)
        engine.fill(n_blocks=1, delete_fraction=0.0)
        engine.gc.run()
        engine.gc.run()
        engine.transformer.process_queue()
        [block] = [b for b in engine.table.blocks if b.state is BlockState.COOLING]
        txn = engine.tm.begin()
        engine.table.update(txn, TupleSlot(block.block_id, 0), {0: 999})
        engine.tm.commit(txn)
        # block got preempted to HOT by the update; freeze must not proceed
        engine.transformer.process_freeze_pending()
        assert block.state is not BlockState.FROZEN

    def test_dictionary_pipeline(self):
        engine = MiniEngine(cold_format="dictionary")
        engine.fill(n_blocks=2, delete_fraction=0.2, long_values=False)
        before = engine.visible_ids()
        engine.transform_all()
        assert engine.visible_ids() == before
        frozen = [b for b in engine.table.blocks if b.state is BlockState.FROZEN]
        assert frozen
        assert all(b.dictionaries for b in frozen)

    def test_optimal_compaction_pipeline(self):
        engine = MiniEngine(optimal=True)
        engine.fill(n_blocks=3, delete_fraction=0.4)
        before = engine.visible_ids()
        engine.transform_all()
        assert engine.visible_ids() == before

    def test_stats_populated(self, engine):
        engine.fill(n_blocks=3, delete_fraction=0.3)
        engine.transform_all()
        stats = engine.transformer.stats
        assert stats.groups_compacted >= 1
        assert stats.blocks_frozen >= 1
        assert stats.tuples_moved > 0
        assert stats.compaction_seconds > 0
        assert stats.gather_seconds > 0


class TestArrowView:
    def frozen_engine(self):
        engine = MiniEngine()
        engine.fill(n_blocks=2, delete_fraction=0.25)
        engine.transform_all()
        frozen = [b for b in engine.table.blocks if b.state is BlockState.FROZEN]
        assert frozen
        return engine, frozen

    def test_record_batch_matches_scan(self):
        engine, frozen = self.frozen_engine()
        arrow_ids = []
        for block in frozen:
            batch = block_to_record_batch(block)
            arrow_ids.extend(batch.column("id").to_pylist())
        reader = engine.tm.begin()
        scan_ids = [r.get(0) for _, r in engine.table.scan(reader)]
        assert sorted(arrow_ids) == sorted(scan_ids)

    def test_fixed_columns_are_zero_copy(self):
        engine, frozen = self.frozen_engine()
        block = frozen[0]
        batch = block_to_record_batch(block)
        view = batch.column("id").to_numpy()
        original = block.column_view(0)[: len(view)]
        assert np.shares_memory(view, original)

    def test_requires_frozen(self):
        engine = MiniEngine()
        engine.fill(n_blocks=1, delete_fraction=0.0)
        with pytest.raises(BlockStateError):
            block_to_record_batch(engine.table.blocks[0])

    def test_schema_mapping(self):
        engine = MiniEngine()
        schema = table_schema(engine.layout)
        assert schema.names == ["id", "payload"]
        assert schema.field("payload").dtype.name == "utf8"

    def test_dictionary_view(self):
        engine = MiniEngine(cold_format="dictionary")
        engine.fill(n_blocks=1, delete_fraction=0.0, long_values=False)
        engine.transform_all()
        [block] = [b for b in engine.table.blocks if b.state is BlockState.FROZEN]
        batch = block_to_record_batch(block)
        from repro.arrowfmt.array import DictionaryArray

        assert isinstance(batch.column("payload"), DictionaryArray)
        reader = engine.tm.begin()
        scan_payloads = [r.get(1) for _, r in engine.table.scan(reader)]
        assert batch.column("payload").to_pylist() == scan_payloads


class TestBaselines:
    def test_snapshot_transform_copies_block(self):
        engine = MiniEngine()
        engine.fill(n_blocks=1, delete_fraction=0.2)
        block = engine.table.blocks[0]
        batch = snapshot_transform(engine.tm, engine.table, block)
        assert batch.num_rows == block.allocation_bitmap.count_set()
        view = batch.column("id").to_numpy()
        assert not np.shares_memory(view, block.column_view(0))

    def test_inplace_transform_pays_version_maintenance(self):
        engine = MiniEngine()
        engine.fill(n_blocks=2, delete_fraction=0.3)
        engine.gc.run_until_quiet()
        live = engine.table.live_tuple_count()
        assert inplace_transform(engine.tm, engine.table, list(engine.table.blocks))
        # Every live tuple was updated transactionally on top of the moves.
        last_txn_writes = engine.tm.pending_gc_count
        assert engine.visible_ids() == engine.visible_ids()

    def test_inplace_transform_conflict_aborts(self):
        engine = MiniEngine()
        engine.fill(n_blocks=2, delete_fraction=0.3)
        engine.gc.run_until_quiet()
        from repro.transform.compaction import plan_compaction

        plan = plan_compaction(engine.table.blocks)
        src, _ = plan.moves[0]
        user = engine.tm.begin()
        engine.table.update(user, src, {1: "hold"})
        assert not inplace_transform(engine.tm, engine.table, list(engine.table.blocks))
        engine.tm.commit(user)
