"""Tests for the gather phase and dictionary compression (Phase 2)."""

import numpy as np
import pytest

from repro.errors import BlockStateError, StorageError
from repro.storage.constants import BlockState
from repro.storage.tuple_slot import TupleSlot
from repro.storage.varlen import read_entry
from repro.transform.dictionary import dictionary_compress_block
from repro.transform.gather import gather_block, live_prefix_length

from tests.transform.conftest import MiniEngine


def dense_engine(values, fixed=None):
    """An engine with one block holding exactly `values` (dense prefix)."""
    engine = MiniEngine()
    txn = engine.tm.begin()
    for i, value in enumerate(values):
        engine.table.insert(txn, {0: fixed[i] if fixed else i, 1: value})
    engine.tm.commit(txn)
    engine.gc.run_until_quiet()
    return engine


class TestLivePrefix:
    def test_dense_block_ok(self):
        engine = dense_engine(["a", "b", "c"])
        assert live_prefix_length(engine.table.blocks[0]) == 3

    def test_gap_detected(self):
        engine = dense_engine(["a", "b", "c"])
        txn = engine.tm.begin()
        engine.table.delete(txn, TupleSlot(engine.table.blocks[0].block_id, 1))
        engine.tm.commit(txn)
        with pytest.raises(StorageError):
            live_prefix_length(engine.table.blocks[0])

    def test_empty_block_ok(self):
        engine = MiniEngine()
        engine.table._allocate_slot  # ensure table exists; no tuples
        txn = engine.tm.begin()
        slot = engine.table.insert(txn, {0: 1, 1: "x"})
        engine.tm.commit(txn)
        txn = engine.tm.begin()
        engine.table.delete(txn, slot)
        engine.tm.commit(txn)
        # slot 0 deleted -> empty prefix is fine
        assert live_prefix_length(engine.table.blocks[0]) == 0


class TestGather:
    def gathered_block(self, values):
        engine = dense_engine(values)
        block = engine.table.blocks[0]
        block.set_state(BlockState.FREEZING)
        stats = gather_block(block)
        block.set_state(BlockState.FROZEN)
        return engine, block, stats

    def test_requires_freezing_state(self):
        engine = dense_engine(["a"])
        with pytest.raises(BlockStateError):
            gather_block(engine.table.blocks[0])

    def test_offsets_and_values_canonical(self):
        values = ["short", "a considerably longer value", None, ""]
        engine, block, stats = self.gathered_block(values)
        offsets, buffer = block.gathered[1]
        assert offsets[0] == 0
        assert list(np.diff(offsets)) == [5, 27, 0, 0]
        assert bytes(buffer) == b"short" + b"a considerably longer value"
        assert stats.null_counts[1] == 1

    def test_long_entries_rewritten_to_non_owning(self):
        values = ["tiny", "a long value exceeding twelve bytes"]
        engine, block, stats = self.gathered_block(values)
        long_entry = read_entry(block.varlen_entry_view(1, 1))
        assert not long_entry.owns_buffer
        short_entry = read_entry(block.varlen_entry_view(1, 0))
        assert short_entry.is_inlined
        assert stats.entries_rewritten == 1

    def test_heap_reclaimed_after_gather(self):
        values = ["a long value exceeding twelve bytes"] * 3
        engine, block, stats = self.gathered_block(values)
        assert stats.heap_entries_reclaimed == 3
        assert len(block.varlen_heaps[1]) == 0

    def test_transactional_reads_after_gather(self):
        values = ["inline", "a long value exceeding twelve bytes", None]
        engine, block, _ = self.gathered_block(values)
        reader = engine.tm.begin()
        got = [r.get(1) for _, r in engine.table.scan(reader)]
        assert got == values

    def test_deferred_reclamation(self):
        engine = dense_engine(["a long value exceeding twelve bytes"])
        block = engine.table.blocks[0]
        block.set_state(BlockState.FREEZING)
        deferred = []
        gather_block(block, defer=deferred.append)
        assert len(block.varlen_heaps[1]) == 1  # not yet freed
        for action in deferred:
            action()
        assert len(block.varlen_heaps[1]) == 0

    def test_regather_after_hot_cycle(self):
        # freeze -> write (hot, entry points into stale buffer) -> refreeze
        engine, block, _ = self.gathered_block(
            ["first long value over twelve bytes", "second long value over twelve!"]
        )
        txn = engine.tm.begin()
        slot = TupleSlot(block.block_id, 0)
        engine.table.update(txn, slot, {1: "replacement long value over twelve"})
        engine.tm.commit(txn)
        assert block.state is BlockState.HOT
        engine.gc.run_until_quiet()
        block.set_state(BlockState.FREEZING)
        gather_block(block)
        block.set_state(BlockState.FROZEN)
        reader = engine.tm.begin()
        got = sorted(r.get(1) for _, r in engine.table.scan(reader))
        assert got == sorted(
            ["replacement long value over twelve", "second long value over twelve!"]
        )

    def test_fixed_null_counts_reported(self):
        engine = MiniEngine()
        txn = engine.tm.begin()
        engine.table.insert(txn, {0: None, 1: "x"})
        engine.table.insert(txn, {0: 5, 1: "y"})
        engine.tm.commit(txn)
        block = engine.table.blocks[0]
        block.set_state(BlockState.FREEZING)
        stats = gather_block(block)
        assert stats.null_counts[0] == 1


class TestDictionaryCompression:
    def compressed_block(self, values):
        engine = dense_engine(values)
        block = engine.table.blocks[0]
        block.set_state(BlockState.FREEZING)
        stats = dictionary_compress_block(block)
        block.set_state(BlockState.FROZEN)
        return engine, block, stats

    def test_dictionary_is_sorted_and_deduplicated(self):
        values = ["beta", "alpha", "beta", "gamma", "alpha"]
        _, block, stats = self.compressed_block(values)
        codes, words = block.dictionaries[1]
        assert words == [b"alpha", b"beta", b"gamma"]
        assert list(codes) == [1, 0, 1, 2, 0]
        assert stats.dictionary_sizes[1] == 3

    def test_requires_freezing_state(self):
        engine = dense_engine(["a"])
        with pytest.raises(BlockStateError):
            dictionary_compress_block(engine.table.blocks[0])

    def test_transactional_reads_after_compression(self):
        values = [
            "a repeated long value over twelve bytes",
            "a repeated long value over twelve bytes",
            "unique-short",
            None,
        ]
        engine, block, _ = self.compressed_block(values)
        reader = engine.tm.begin()
        got = [r.get(1) for _, r in engine.table.scan(reader)]
        assert got == values

    def test_long_entries_point_into_dictionary(self):
        values = ["one long repeated value over twelve"] * 2
        _, block, _ = self.compressed_block(values)
        entries = [read_entry(block.varlen_entry_view(1, i)) for i in range(2)]
        assert all(not e.owns_buffer for e in entries)
        # Both entries reference the SAME dictionary word offset.
        assert entries[0].pointer == entries[1].pointer

    def test_nulls_counted(self):
        _, _, stats = self.compressed_block(["a", None, None])
        assert stats.null_counts[1] == 2
