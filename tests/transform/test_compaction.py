"""Tests for the compaction planner and executor (Section 4.3 Phase 1)."""

import pytest

from repro.errors import StorageError
from repro.storage.constants import BlockState
from repro.transform.compaction import (
    execute_compaction,
    plan_compaction,
    plan_compaction_optimal,
)

from tests.transform.conftest import MiniEngine


def delete_every_kth(engine, slots, k):
    txn = engine.tm.begin()
    victims = [s for i, s in enumerate(slots) if i % k == 0]
    for slot in victims:
        engine.table.delete(txn, slot)
    engine.tm.commit(txn)
    return [s for s in slots if s not in set(victims)]


class TestPlanner:
    def test_logical_contiguity_targets(self):
        engine = MiniEngine()
        slots = engine.fill(n_blocks=3, delete_fraction=0.0)
        delete_every_kth(engine, slots, 4)
        plan = plan_compaction(engine.table.blocks)
        s = engine.layout.num_slots
        t = plan.total_tuples
        assert len(plan.filled_blocks) == t // s
        expected_partial = 1 if t % s else 0
        assert (plan.partial_block is not None) == bool(expected_partial)
        assert (
            len(plan.filled_blocks)
            + expected_partial
            + len(plan.empty_blocks)
            == len(plan.blocks)
        )

    def test_no_moves_for_dense_block(self):
        engine = MiniEngine()
        engine.fill(n_blocks=1, delete_fraction=0.0)
        # Fill the single block completely so there are no gaps.
        block = engine.table.blocks[0]
        plan = plan_compaction([block])
        assert plan.movement_count == 0
        assert plan.empty_blocks == []

    def test_all_empty_group(self):
        engine = MiniEngine()
        slots = engine.fill(n_blocks=1, delete_fraction=0.0)
        txn = engine.tm.begin()
        for slot in slots:
            engine.table.delete(txn, slot)
        engine.tm.commit(txn)
        plan = plan_compaction(engine.table.blocks)
        assert plan.total_tuples == 0
        assert plan.empty_blocks == engine.table.blocks
        assert plan.movement_count == 0

    def test_gap_source_pairing_is_exact(self):
        engine = MiniEngine()
        slots = engine.fill(n_blocks=4, delete_fraction=0.0)
        delete_every_kth(engine, slots, 3)
        plan = plan_compaction(engine.table.blocks)
        destinations = [dst for _, dst in plan.moves]
        sources = [src for src, _ in plan.moves]
        assert len(set(destinations)) == len(destinations)
        assert len(set(sources)) == len(sources)
        assert not set(destinations) & set(sources)

    def test_mixed_layout_group_rejected(self):
        a = MiniEngine()
        b = MiniEngine()
        a.fill(n_blocks=1)
        b.fill(n_blocks=1)
        other_layout_block = b.table.blocks[0]
        other_layout_block.layout = b.layout  # same layout object class...
        from repro.arrowfmt.datatypes import INT64
        from repro.storage.layout import BlockLayout, ColumnSpec

        different = BlockLayout([ColumnSpec("x", INT64)], block_size=1 << 14)
        other_layout_block.layout = different
        with pytest.raises(StorageError):
            plan_compaction([a.table.blocks[0], other_layout_block])

    def test_empty_group_rejected(self):
        with pytest.raises(StorageError):
            plan_compaction([])

    def test_optimal_never_worse_than_approximate(self):
        engine = MiniEngine()
        slots = engine.fill(n_blocks=5, delete_fraction=0.0)
        delete_every_kth(engine, slots, 2)
        approx = plan_compaction(engine.table.blocks)
        optimal = plan_compaction_optimal(engine.table.blocks)
        assert optimal.movement_count <= approx.movement_count

    def test_approximate_within_bound_of_optimal(self):
        # The paper's bound: approx - optimal <= t mod s.
        engine = MiniEngine()
        slots = engine.fill(n_blocks=5, delete_fraction=0.0, seed=13)
        delete_every_kth(engine, slots, 3)
        s = engine.layout.num_slots
        approx = plan_compaction(engine.table.blocks)
        optimal = plan_compaction_optimal(engine.table.blocks)
        assert approx.movement_count - optimal.movement_count <= approx.total_tuples % s


class TestExecutor:
    def test_moves_preserve_visible_contents(self):
        engine = MiniEngine()
        slots = engine.fill(n_blocks=3, delete_fraction=0.3)
        before = engine.visible_ids()
        engine.gc.run_until_quiet()  # prune delete chains off the gap slots
        plan = plan_compaction(engine.table.blocks)
        txn = execute_compaction(engine.tm, engine.table, plan)
        assert txn is not None
        engine.tm.commit(txn)
        assert engine.visible_ids() == before

    def test_compaction_produces_dense_prefixes(self):
        engine = MiniEngine()
        engine.fill(n_blocks=3, delete_fraction=0.4)
        engine.gc.run_until_quiet()
        plan = plan_compaction(engine.table.blocks)
        txn = execute_compaction(engine.tm, engine.table, plan)
        engine.tm.commit(txn)
        import numpy as np

        for block in plan.filled_blocks:
            assert block.empty_slot_count() == 0
        if plan.partial_block is not None:
            live = plan.partial_block.live_slots()
            assert np.array_equal(live, np.arange(len(live)))
        for block in plan.empty_blocks:
            assert block.is_empty()

    def test_varlen_values_copied_not_aliased(self):
        engine = MiniEngine()
        engine.fill(n_blocks=2, delete_fraction=0.5)
        engine.gc.run_until_quiet()
        plan = plan_compaction(engine.table.blocks)
        txn = execute_compaction(engine.tm, engine.table, plan)
        engine.tm.commit(txn)
        # Values moved into filled blocks must live in those blocks' heaps.
        reader = engine.tm.begin()
        for _, row in engine.table.scan(reader):
            assert row.get(1) is not None

    def test_conflicting_user_txn_aborts_compaction(self):
        engine = MiniEngine()
        slots = engine.fill(n_blocks=2, delete_fraction=0.3)
        engine.gc.run_until_quiet()
        # A user transaction holds an uncommitted write on a source tuple.
        plan = plan_compaction(engine.table.blocks)
        src, _ = plan.moves[0]
        user = engine.tm.begin()
        assert engine.table.update(user, src, {1: "user write"})
        txn = execute_compaction(engine.tm, engine.table, plan)
        assert txn is None  # compaction yielded
        engine.tm.commit(user)
        assert engine.tm.active_count == 0

    def test_old_snapshots_see_premove_state(self):
        engine = MiniEngine()
        engine.fill(n_blocks=2, delete_fraction=0.4)
        engine.gc.run_until_quiet()
        old_reader = engine.tm.begin()
        before = sorted(r.get(0) for _, r in engine.table.scan(old_reader))
        plan = plan_compaction(engine.table.blocks)
        txn = execute_compaction(engine.tm, engine.table, plan)
        engine.tm.commit(txn)
        after_for_old = sorted(r.get(0) for _, r in engine.table.scan(old_reader))
        # The old snapshot must see exactly the same logical rows (moved
        # copies are invisible inserts; originals are invisible deletes).
        assert after_for_old == before
