"""Tests for the Data Table API: MVCC reads and writes."""

import pytest

from repro.arrowfmt.datatypes import FLOAT64, INT64, UTF8
from repro.errors import StorageError, TransactionAborted
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.storage.tuple_slot import TupleSlot
from repro.txn.manager import TransactionManager


@pytest.fixture
def layout():
    return BlockLayout(
        [ColumnSpec("id", INT64), ColumnSpec("name", UTF8), ColumnSpec("price", FLOAT64)]
    )


@pytest.fixture
def tm():
    return TransactionManager()


@pytest.fixture
def table(layout):
    return DataTable(BlockStore(), layout, "t")


def committed_insert(tm, table, values):
    txn = tm.begin()
    slot = table.insert(txn, values)
    tm.commit(txn)
    return slot


class TestInsert:
    def test_insert_and_read_back(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "widget", 2: 9.5})
        txn = tm.begin()
        row = table.select(txn, slot)
        assert row.to_dict() == {0: 1, 1: "widget", 2: 9.5}

    def test_insert_requires_all_columns(self, tm, table):
        txn = tm.begin()
        with pytest.raises(StorageError):
            table.insert(txn, {0: 1})

    def test_null_values(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: None, 2: None})
        txn = tm.begin()
        row = table.select(txn, slot)
        assert row.get(1) is None and row.get(2) is None

    def test_uncommitted_insert_invisible_to_others(self, tm, table):
        writer = tm.begin()
        slot = table.insert(writer, {0: 1, 1: "x", 2: 0.0})
        reader = tm.begin()
        assert table.select(reader, slot) is None

    def test_own_insert_visible(self, tm, table):
        writer = tm.begin()
        slot = table.insert(writer, {0: 1, 1: "x", 2: 0.0})
        assert table.select(writer, slot).get(0) == 1

    def test_insert_invisible_to_older_snapshot(self, tm, table):
        reader = tm.begin()
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        assert table.select(reader, slot) is None

    def test_long_and_short_varlen(self, tm, table):
        long_value = "v" * 100
        slot = committed_insert(tm, table, {0: 1, 1: long_value, 2: 0.0})
        txn = tm.begin()
        assert table.select(txn, slot).get(1) == long_value

    def test_inserts_spill_to_new_blocks(self, tm):
        small_layout = BlockLayout([ColumnSpec("id", INT64)], block_size=1 << 12)
        table = DataTable(BlockStore(), small_layout, "small")
        txn = tm.begin()
        for i in range(small_layout.num_slots + 5):
            table.insert(txn, {0: i})
        tm.commit(txn)
        assert len(table.blocks) == 2
        assert table.live_tuple_count() == small_layout.num_slots + 5


class TestUpdate:
    def test_snapshot_isolation(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "old", 2: 1.0})
        reader = tm.begin()
        writer = tm.begin()
        assert table.update(writer, slot, {1: "new"})
        assert table.select(reader, slot).get(1) == "old"
        tm.commit(writer)
        # Still the old version: the reader's snapshot predates the commit.
        assert table.select(reader, slot).get(1) == "old"
        fresh = tm.begin()
        assert table.select(fresh, slot).get(1) == "new"

    def test_partial_update_leaves_other_columns(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "n", 2: 2.5})
        txn = tm.begin()
        table.update(txn, slot, {2: 9.9})
        tm.commit(txn)
        row = table.select(tm.begin(), slot)
        assert row.get(1) == "n" and row.get(2) == 9.9

    def test_write_write_conflict(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        a, b = tm.begin(), tm.begin()
        assert table.update(a, slot, {0: 10})
        assert not table.update(b, slot, {0: 20})
        assert b.must_abort
        with pytest.raises(TransactionAborted):
            tm.commit(b)
        tm.commit(a)

    def test_conflict_with_committed_newer_version(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        old = tm.begin()  # snapshot before the next commit
        quick = tm.begin()
        table.update(quick, slot, {0: 2})
        tm.commit(quick)
        # `old` must not clobber a version it cannot see.
        assert not table.update(old, slot, {0: 3})

    def test_update_to_null_and_back(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        txn = tm.begin()
        table.update(txn, slot, {1: None})
        tm.commit(txn)
        assert table.select(tm.begin(), slot).get(1) is None
        txn = tm.begin()
        table.update(txn, slot, {1: "back"})
        tm.commit(txn)
        assert table.select(tm.begin(), slot).get(1) == "back"

    def test_multiple_versions_traversed(self, tm, table):
        slot = committed_insert(tm, table, {0: 0, 1: "v0", 2: 0.0})
        readers = [tm.begin()]
        for i in range(1, 4):
            txn = tm.begin()
            table.update(txn, slot, {1: f"v{i}"})
            tm.commit(txn)
            readers.append(tm.begin())
        for i, reader in enumerate(readers):
            assert table.select(reader, slot).get(1) == f"v{i}"

    def test_empty_delta_rejected(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        with pytest.raises(StorageError):
            table.update(tm.begin(), slot, {})

    def test_same_txn_sequential_updates(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "a", 2: 0.0})
        txn = tm.begin()
        assert table.update(txn, slot, {1: "b"})
        assert table.update(txn, slot, {1: "c"})
        assert table.select(txn, slot).get(1) == "c"
        tm.commit(txn)
        assert table.select(tm.begin(), slot).get(1) == "c"


class TestDelete:
    def test_delete_visibility(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        reader = tm.begin()
        deleter = tm.begin()
        assert table.delete(deleter, slot)
        tm.commit(deleter)
        assert table.select(reader, slot) is not None  # old snapshot
        assert table.select(tm.begin(), slot) is None  # new snapshot

    def test_delete_nonexistent_rejected(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        txn = tm.begin()
        table.delete(txn, slot)
        tm.commit(txn)
        with pytest.raises(StorageError):
            table.delete(tm.begin(), slot)

    def test_delete_then_conflicting_write(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        a, b = tm.begin(), tm.begin()
        assert table.delete(a, slot)
        assert not table.update(b, slot, {0: 5})

    def test_insert_delete_same_txn(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x", 2: 0.0})
        assert table.delete(txn, slot)
        assert table.select(txn, slot) is None
        tm.commit(txn)
        assert table.select(tm.begin(), slot) is None


class TestAbort:
    def test_abort_restores_fixed_and_varlen(self, tm, table):
        long_value = "original long value over twelve bytes"
        slot = committed_insert(tm, table, {0: 7, 1: long_value, 2: 1.0})
        txn = tm.begin()
        table.update(txn, slot, {0: 8, 1: "clobbered!", 2: 2.0})
        tm.abort(txn)
        row = table.select(tm.begin(), slot)
        assert row.to_dict() == {0: 7, 1: long_value, 2: 1.0}

    def test_abort_insert_removes_tuple(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x", 2: 0.0})
        tm.abort(txn)
        assert table.select(tm.begin(), slot) is None

    def test_abort_delete_restores_tuple(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        txn = tm.begin()
        table.delete(txn, slot)
        tm.abort(txn)
        assert table.select(tm.begin(), slot).get(0) == 1

    def test_abort_releases_conflict(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        loser = tm.begin()
        table.update(loser, slot, {0: 99})
        tm.abort(loser)
        winner = tm.begin()
        assert table.update(winner, slot, {0: 42})
        tm.commit(winner)
        assert table.select(tm.begin(), slot).get(0) == 42

    def test_abort_restores_null_state(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: None, 2: 0.0})
        txn = tm.begin()
        table.update(txn, slot, {1: "not null anymore"})
        tm.abort(txn)
        assert table.select(tm.begin(), slot).get(1) is None

    def test_writes_after_abort_rejected(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        txn = tm.begin()
        tm.abort(txn)
        with pytest.raises(StorageError):
            table.update(txn, slot, {0: 2})


class TestScan:
    def test_scan_sees_committed_only(self, tm, table):
        for i in range(5):
            committed_insert(tm, table, {0: i, 1: f"r{i}", 2: 0.0})
        pending = tm.begin()
        table.insert(pending, {0: 99, 1: "pending", 2: 0.0})
        reader = tm.begin()
        rows = [row.get(0) for _, row in table.scan(reader)]
        assert rows == [0, 1, 2, 3, 4]

    def test_scan_projection(self, tm, table):
        committed_insert(tm, table, {0: 1, 1: "x", 2: 3.5})
        reader = tm.begin()
        [(_, row)] = list(table.scan(reader, column_ids=[2]))
        assert row.to_dict() == {2: 3.5}

    def test_scan_includes_deleted_for_old_snapshots(self, tm, table):
        slot = committed_insert(tm, table, {0: 1, 1: "x", 2: 0.0})
        old_reader = tm.begin()
        deleter = tm.begin()
        table.delete(deleter, slot)
        tm.commit(deleter)
        assert [r.get(0) for _, r in table.scan(old_reader)] == [1]
        assert list(table.scan(tm.begin())) == []


class TestSlotResolution:
    def test_foreign_block_rejected(self, tm, table):
        with pytest.raises(StorageError):
            table.select(tm.begin(), TupleSlot(12345, 0))
