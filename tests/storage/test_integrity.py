"""Tests for the database integrity checker."""

import numpy as np
import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.storage.constants import BlockState
from repro.storage.integrity import check_database, check_table


def build(rows=900, freeze=True, cold_format="gather"):
    db = Database(logging_enabled=False, cold_threshold_epochs=1,
                  cold_format=cold_format)
    info = db.create_table(
        "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
        block_size=1 << 13, watch_cold=True,
    )
    with db.transaction() as txn:
        slots = [
            info.table.insert(txn, {0: i, 1: f"value-{i}-long-enough-to-spill"})
            for i in range(rows)
        ]
    if freeze:
        db.freeze_table("t")
    return db, info, slots


class TestHealthyStates:
    def test_hot_database_clean(self):
        db, info, _ = build(freeze=False)
        report = db.verify_integrity()
        assert report.ok, report.findings
        assert report.blocks_checked == len(info.table.blocks)

    def test_frozen_database_clean(self):
        db, info, _ = build()
        report = db.verify_integrity()
        assert report.ok, report.findings
        assert report.frozen_blocks_validated >= 2

    def test_dictionary_format_clean(self):
        db, info, _ = build(cold_format="dictionary")
        report = db.verify_integrity()
        assert report.ok, report.findings

    def test_mid_lifecycle_clean(self):
        db, info, slots = build()
        # Reheat one block with a write, leave it mid-churn.
        with db.transaction() as txn:
            info.table.update(txn, slots[0], {1: "changed-to-something-long!"})
        report = db.verify_integrity()
        assert report.ok, report.findings

    def test_after_heavy_churn_and_recovery(self):
        db, info, slots = build(freeze=False)
        import random

        rng = random.Random(1)
        for _ in range(150):
            with db.transaction() as txn:
                slot = rng.choice(slots)
                row = info.table.select(txn, slot)
                if row is not None:
                    info.table.update(txn, slot, {1: "u" * rng.randint(1, 40)})
        db.freeze_table("t")
        assert db.verify_integrity().ok


class TestCorruptionDetected:
    def test_dangling_heap_id(self):
        db, info, _ = build(freeze=False)
        block = info.table.blocks[0]
        # Free a heap entry out from under a live slot.
        from repro.storage.varlen import read_entry

        entry = read_entry(block.varlen_entry_view(1, 0))
        assert entry.owns_buffer
        block.varlen_heaps[1].free(entry.pointer)
        report = check_table(info.table)
        assert any("dangling heap id" in f for f in report.findings)

    def test_misdirected_chain_record(self):
        db, info, slots = build(freeze=False)
        writer = db.begin()
        info.table.update(writer, slots[0], {0: 99})
        block = info.table.blocks[0]
        # Move the chain head onto the wrong slot.
        block.version_ptrs[1] = block.version_ptrs[0]
        report = check_table(info.table)
        assert any("chain record points at" in f for f in report.findings)
        db.abort(writer)

    def test_frozen_block_with_gap(self):
        db, info, slots = build()
        frozen = next(b for b in info.table.blocks if b.state is BlockState.FROZEN)
        frozen.allocation_bitmap.clear(0)  # punch a hole behind its back
        report = check_table(info.table)
        assert any("dense prefix" in f for f in report.findings)

    def test_zone_map_violation(self):
        db, info, _ = build()
        frozen = next(b for b in info.table.blocks if b.state is BlockState.FROZEN)
        assert 0 in frozen.zone_maps
        frozen.column_view(0)[0] = 10**15  # out-of-zone value written raw
        report = check_table(info.table)
        assert any("zone map" in f for f in report.findings)

    def test_gathered_reference_out_of_bounds(self):
        db, info, _ = build()
        frozen = next(b for b in info.table.blocks if b.state is BlockState.FROZEN)
        offsets, values = frozen.gathered[1]
        frozen.gathered[1] = (offsets, values[: len(values) // 2])  # truncate
        report = check_table(info.table)
        assert not report.ok
