"""Tests for block layout computation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arrowfmt.datatypes import FLOAT64, INT8, INT16, INT32, INT64, UTF8
from repro.errors import StorageError
from repro.storage.constants import (
    BLOCK_HEADER_SIZE,
    BLOCK_SIZE,
    COLUMN_ALIGNMENT,
    VARLEN_ENTRY_SIZE,
)
from repro.storage.layout import BlockLayout, ColumnSpec


class TestColumnSpec:
    def test_fixed_attr_size(self):
        assert ColumnSpec("a", INT64).attr_size == 8
        assert ColumnSpec("a", INT8).attr_size == 1

    def test_varlen_attr_size_is_entry_size(self):
        spec = ColumnSpec("s", UTF8)
        assert spec.is_varlen
        assert spec.attr_size == VARLEN_ENTRY_SIZE


class TestBlockLayout:
    def test_paper_micro_benchmark_layout(self):
        # Section 6.2: one 8-byte fixed column + one varlen column holds
        # ~32K tuples per 1 MB block.
        layout = BlockLayout([ColumnSpec("fixed", INT64), ColumnSpec("var", UTF8)])
        assert 30_000 < layout.num_slots < 45_000

    def test_capacity_uses_most_of_block(self):
        layout = BlockLayout([ColumnSpec("a", INT64)])
        # One more slot must not fit.
        assert layout._bytes_for(layout.num_slots + 1) > BLOCK_SIZE
        assert layout.used_bytes <= BLOCK_SIZE

    def test_offsets_are_aligned(self):
        layout = BlockLayout(
            [ColumnSpec("a", INT8), ColumnSpec("b", INT64), ColumnSpec("c", UTF8)]
        )
        assert layout.allocation_bitmap_offset % COLUMN_ALIGNMENT == 0
        for offset in layout.validity_offsets + layout.column_offsets:
            assert offset % COLUMN_ALIGNMENT == 0

    def test_regions_do_not_overlap(self):
        layout = BlockLayout(
            [ColumnSpec("a", INT16), ColumnSpec("b", INT64), ColumnSpec("c", UTF8)]
        )
        regions = [(layout.allocation_bitmap_offset, (layout.num_slots + 7) // 8)]
        for i, size in enumerate(layout.attr_sizes):
            regions.append((layout.validity_offsets[i], (layout.num_slots + 7) // 8))
            regions.append((layout.column_offsets[i], layout.num_slots * size))
        regions.sort()
        assert regions[0][0] >= BLOCK_HEADER_SIZE
        for (start_a, len_a), (start_b, _) in zip(regions, regions[1:]):
            assert start_a + len_a <= start_b

    def test_attribute_offset_constant_time_math(self):
        layout = BlockLayout([ColumnSpec("a", INT32), ColumnSpec("b", INT64)])
        assert (
            layout.attribute_offset(1, 10)
            == layout.column_offsets[1] + 10 * 8
        )

    def test_attribute_offset_bounds(self):
        layout = BlockLayout([ColumnSpec("a", INT64)])
        with pytest.raises(StorageError):
            layout.attribute_offset(0, layout.num_slots)

    def test_empty_layout_rejected(self):
        with pytest.raises(StorageError):
            BlockLayout([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(StorageError):
            BlockLayout([ColumnSpec("a", INT64), ColumnSpec("a", INT32)])

    def test_too_wide_tuple_rejected(self):
        many = [ColumnSpec(f"c{i}", INT64) for i in range(200_000)]
        with pytest.raises(StorageError):
            BlockLayout(many)

    def test_layout_key_groups_identical_layouts(self):
        a = BlockLayout([ColumnSpec("x", INT64), ColumnSpec("y", UTF8)])
        b = BlockLayout([ColumnSpec("x", INT64), ColumnSpec("y", UTF8)])
        c = BlockLayout([ColumnSpec("x", INT64), ColumnSpec("z", UTF8)])
        assert a.layout_key() == b.layout_key()
        assert a.layout_key() != c.layout_key()

    def test_column_id_helpers(self):
        layout = BlockLayout(
            [ColumnSpec("a", INT64), ColumnSpec("s", UTF8), ColumnSpec("f", FLOAT64)]
        )
        assert layout.varlen_column_ids() == [1]
        assert layout.fixed_column_ids() == [0, 2]
        assert layout.index_of("f") == 2
        with pytest.raises(StorageError):
            layout.index_of("nope")


@given(
    st.lists(
        st.sampled_from([INT8, INT16, INT32, INT64, FLOAT64, UTF8]),
        min_size=1,
        max_size=12,
    )
)
def test_layout_always_fits_block(dtypes):
    layout = BlockLayout([ColumnSpec(f"c{i}", t) for i, t in enumerate(dtypes)])
    assert layout.used_bytes <= BLOCK_SIZE
    assert layout.num_slots >= 1
    # Greedy maximality: one more slot would overflow.
    assert layout._bytes_for(layout.num_slots + 1) > BLOCK_SIZE
