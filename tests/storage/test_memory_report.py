"""Tests for block/table memory accounting and array slicing."""

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.arrowfmt.array import slice_array
from repro.arrowfmt.builder import array_from_pylist
from repro.arrowfmt.datatypes import INT64 as AF_INT64, UTF8 as AF_UTF8
from repro.errors import ArrowFormatError
from repro.storage.memory_report import block_memory, table_memory


def build(rows=400, freeze=False, repeated_values=False):
    db = Database(logging_enabled=False, cold_threshold_epochs=1,
                  cold_format="dictionary" if repeated_values else "gather")
    info = db.create_table(
        "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
        block_size=1 << 13, watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(rows):
            value = (
                f"repeated-value-{i % 3}" if repeated_values
                else f"unique-value-{i}-padded-out"
            )
            info.table.insert(txn, {0: i, 1: value})
    if freeze:
        db.freeze_table("t")
    return db, info


class TestBlockMemory:
    def test_hot_block_heap_accounted(self):
        db, info = build()
        report = block_memory(info.table.blocks[0])
        assert report.state == "HOT"
        assert report.varlen_heap_bytes > 0
        assert report.gathered_bytes == 0
        assert report.total_bytes > report.block_bytes

    def test_frozen_block_gathered_accounted(self):
        db, info = build(freeze=True)
        frozen = [b for b in info.table.blocks if b.state.name == "FROZEN"]
        report = block_memory(frozen[0])
        assert report.gathered_bytes > 0
        assert report.varlen_heap_bytes == 0  # gather reclaimed the heap

    def test_dictionary_block_smaller_when_values_repeat(self):
        gather_db, gather_info = build(freeze=True, repeated_values=False)
        dict_db, dict_info = build(freeze=True, repeated_values=True)
        gather_frozen = [
            b for b in gather_info.table.blocks if b.state.name == "FROZEN"
        ][0]
        dict_frozen = [
            b for b in dict_info.table.blocks if b.state.name == "FROZEN"
        ][0]
        gather_report = block_memory(gather_frozen)
        dict_report = block_memory(dict_frozen)
        # 3 distinct values dictionary-encode far below the unique gather.
        assert dict_report.dictionary_bytes < gather_report.gathered_bytes

    def test_table_rollup(self):
        db, info = build(rows=900, freeze=True)
        report = table_memory(info.table)
        assert report.live_tuples == 900
        assert len(report.blocks) == len(info.table.blocks)
        assert report.total_bytes == sum(b.total_bytes for b in report.blocks)


class TestSlicedArray:
    def test_slice_values(self):
        array = array_from_pylist([10, 20, 30, 40, 50], AF_INT64)
        window = slice_array(array, 1, 3)
        assert window.to_pylist() == [20, 30, 40]
        assert len(window) == 3

    def test_slice_respects_parent_validity(self):
        array = array_from_pylist(["a", None, "c"], AF_UTF8)
        window = slice_array(array, 1, 2)
        assert window.to_pylist() == [None, "c"]
        assert window.null_count == 1

    def test_nested_slices_flatten(self):
        array = array_from_pylist(list(range(10)), AF_INT64)
        inner = slice_array(slice_array(array, 2, 6), 1, 3)
        assert inner.parent is array
        assert inner.to_pylist() == [3, 4, 5]

    def test_zero_copy_buffers_shared(self):
        array = array_from_pylist([1, 2, 3], AF_INT64)
        window = slice_array(array, 0, 2)
        assert window.buffers() == array.buffers()

    def test_out_of_bounds_rejected(self):
        array = array_from_pylist([1, 2, 3], AF_INT64)
        with pytest.raises(ArrowFormatError):
            slice_array(array, 2, 5)
        with pytest.raises(ArrowFormatError):
            slice_array(array, -1, 1)

    def test_empty_slice(self):
        array = array_from_pylist([1], AF_INT64)
        assert slice_array(array, 1, 0).to_pylist() == []
