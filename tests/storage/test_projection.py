"""Tests for ProjectedRow."""

import pytest

from repro.errors import StorageError
from repro.storage.projection import ProjectedRow


class TestProjectedRow:
    def test_get_set(self):
        row = ProjectedRow({0: 1})
        row.set(2, "x")
        assert row.get(0) == 1
        assert row.get(2) == "x"
        assert len(row) == 2

    def test_none_is_a_value(self):
        row = ProjectedRow({1: None})
        assert row.get(1) is None
        assert 1 in row

    def test_missing_column_raises(self):
        with pytest.raises(StorageError):
            ProjectedRow().get(5)

    def test_column_ids_sorted(self):
        row = ProjectedRow({3: "c", 1: "a", 2: "b"})
        assert row.column_ids == [1, 2, 3]
        assert list(row.items()) == [(1, "a"), (2, "b"), (3, "c")]

    def test_apply_onto_restricts_to_target_columns(self):
        # A before-image only overwrites columns the reader projected.
        before = ProjectedRow({0: "old", 1: "other"})
        target = ProjectedRow({0: "new"})
        before.apply_onto(target)
        assert target.to_dict() == {0: "old"}

    def test_copy_is_independent(self):
        row = ProjectedRow({0: 1})
        clone = row.copy()
        clone.set(0, 2)
        assert row.get(0) == 1

    def test_equality(self):
        assert ProjectedRow({0: 1}) == ProjectedRow({0: 1})
        assert ProjectedRow({0: 1}) != ProjectedRow({0: 2})
        assert ProjectedRow({0: 1}) != ProjectedRow({1: 1})

    def test_to_dict_is_a_copy(self):
        row = ProjectedRow({0: 1})
        exported = row.to_dict()
        exported[0] = 99
        assert row.get(0) == 1
