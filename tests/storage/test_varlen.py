"""Tests for the relaxed VarlenEntry format (Figure 6)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.constants import VARLEN_ENTRY_SIZE, VARLEN_INLINE_LIMIT
from repro.storage.varlen import (
    VarlenHeap,
    read_entry,
    read_value,
    write_entry,
    write_gathered_entry,
)


def fresh_view():
    return np.zeros(VARLEN_ENTRY_SIZE, dtype=np.uint8)


class TestInlineValues:
    def test_figure_6_short_value_inlined(self):
        # "Data" "base4all" (12 bytes) fits entirely within the entry.
        view, heap = fresh_view(), VarlenHeap()
        write_entry(view, b"Database4all", heap)
        entry = read_entry(view)
        assert entry.is_inlined
        assert len(heap) == 0
        assert read_value(view, heap, None) == b"Database4all"

    def test_empty_value(self):
        view, heap = fresh_view(), VarlenHeap()
        write_entry(view, b"", heap)
        assert read_value(view, heap, None) == b""

    def test_boundary_twelve_bytes_inlined(self):
        view, heap = fresh_view(), VarlenHeap()
        write_entry(view, b"x" * VARLEN_INLINE_LIMIT, heap)
        assert read_entry(view).is_inlined
        assert len(heap) == 0

    def test_thirteen_bytes_out_of_line(self):
        view, heap = fresh_view(), VarlenHeap()
        write_entry(view, b"x" * (VARLEN_INLINE_LIMIT + 1), heap)
        assert not read_entry(view).is_inlined
        assert len(heap) == 1

    def test_prefix_of_short_value(self):
        view, heap = fresh_view(), VarlenHeap()
        write_entry(view, b"Tran", heap)
        entry = read_entry(view)
        assert entry.prefix == b"Tran"
        assert entry.size == 4


class TestOutOfLineValues:
    def test_figure_6_long_value(self):
        view, heap = fresh_view(), VarlenHeap()
        value = b"Transactions on Arrow"
        write_entry(view, value, heap)
        entry = read_entry(view)
        assert entry.size == 21
        assert entry.prefix == b"Tran"
        assert entry.owns_buffer
        assert read_value(view, heap, None) == value

    def test_update_is_constant_size(self):
        # The core of Section 4.1: an update only rewrites the 16-byte entry.
        view, heap = fresh_view(), VarlenHeap()
        write_entry(view, b"a much longer initial value", heap)
        write_entry(view, b"the replacement value, also long", heap)
        assert read_value(view, heap, None) == b"the replacement value, also long"

    def test_heap_accounting(self):
        heap = VarlenHeap()
        view = fresh_view()
        write_entry(view, b"x" * 100, heap)
        assert heap.bytes_used == 100
        heap.free(read_entry(view).pointer)
        assert heap.bytes_used == 0

    def test_heap_double_free_detected(self):
        heap = VarlenHeap()
        heap_id = heap.put(b"x" * 20)
        heap.free(heap_id)
        with pytest.raises(StorageError):
            heap.free(heap_id)

    def test_heap_dangling_read_detected(self):
        with pytest.raises(StorageError):
            VarlenHeap().get(0)


class TestGatheredEntries:
    def test_gathered_entry_reads_from_buffer(self):
        view, heap = fresh_view(), VarlenHeap()
        gathered = np.frombuffer(b"aaaaHello, gathered world!zzz", dtype=np.uint8)
        write_gathered_entry(view, 22, b"Hell", offset=4)
        entry = read_entry(view)
        assert not entry.owns_buffer
        assert read_value(view, heap, gathered) == b"Hello, gathered world!"

    def test_gathered_entry_missing_buffer(self):
        view = fresh_view()
        write_gathered_entry(view, 20, b"abcd", offset=0)
        with pytest.raises(StorageError):
            read_value(view, VarlenHeap(), None)

    def test_short_values_must_not_be_gathered(self):
        with pytest.raises(StorageError):
            write_gathered_entry(fresh_view(), 5, b"abcd", offset=0)

    def test_gathered_buffer_too_short(self):
        view = fresh_view()
        write_gathered_entry(view, 50, b"abcd", offset=0)
        short = np.frombuffer(b"tooshort", dtype=np.uint8)
        with pytest.raises(StorageError):
            read_value(view, VarlenHeap(), short)


class TestEntryValidation:
    def test_bad_view_size(self):
        with pytest.raises(StorageError):
            read_entry(np.zeros(8, dtype=np.uint8))

    def test_corrupt_negative_size(self):
        view = fresh_view()
        view[0:4] = np.frombuffer(np.int32(-5).tobytes(), dtype=np.uint8)
        with pytest.raises(StorageError):
            read_entry(view)


@given(st.binary(max_size=200))
def test_write_read_roundtrip_property(value):
    view, heap = fresh_view(), VarlenHeap()
    write_entry(view, value, heap)
    assert read_value(view, heap, None) == value
    entry = read_entry(view)
    assert entry.size == len(value)
    assert entry.is_inlined == (len(value) <= VARLEN_INLINE_LIMIT)
