"""Tests for RawBlock: state machine, reader counter, slot allocation."""

import threading

import pytest

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.errors import BlockStateError, StorageError
from repro.storage.block import RawBlock
from repro.storage.block_store import BlockStore
from repro.storage.constants import BlockState
from repro.storage.layout import BlockLayout, ColumnSpec


@pytest.fixture
def layout():
    return BlockLayout([ColumnSpec("id", INT64), ColumnSpec("name", UTF8)])


@pytest.fixture
def block(layout):
    return RawBlock(layout, block_id=0)


class TestStateMachine:
    def test_blocks_start_hot(self, block):
        assert block.state is BlockState.HOT

    def test_cas_success_and_failure(self, block):
        assert block.compare_and_swap_state(BlockState.HOT, BlockState.COOLING)
        assert block.state is BlockState.COOLING
        assert not block.compare_and_swap_state(BlockState.HOT, BlockState.FREEZING)

    def test_user_txn_preempts_cooling(self, block):
        # Section 4.3: transactions may CAS cooling back to hot.
        block.set_state(BlockState.COOLING)
        block.touch_hot()
        assert block.state is BlockState.HOT

    def test_touch_hot_on_frozen_waits_for_readers(self, block):
        block.set_state(BlockState.FROZEN)
        assert block.begin_frozen_read()
        done = threading.Event()

        def writer():
            block.touch_hot()
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        # The writer has flipped the flag but must wait for us.
        assert not done.wait(0.05)
        block.end_frozen_read()
        assert done.wait(1.0)
        thread.join()
        assert block.state is BlockState.HOT

    def test_touch_hot_noop_when_hot(self, block):
        block.touch_hot()
        assert block.state is BlockState.HOT

    def test_frozen_read_refused_when_hot(self, block):
        assert not block.begin_frozen_read()

    def test_reader_counter(self, block):
        block.set_state(BlockState.FROZEN)
        assert block.begin_frozen_read()
        assert block.begin_frozen_read()
        assert block.reader_count == 2
        block.end_frozen_read()
        block.end_frozen_read()
        assert block.reader_count == 0

    def test_unmatched_end_read_rejected(self, block):
        with pytest.raises(BlockStateError):
            block.end_frozen_read()

    def test_touch_hot_keeps_stale_gathered_buffers(self, block):
        # Relaxed entries may still point into the gathered buffer, so it
        # must survive the FROZEN -> HOT transition (it is simply stale).
        import numpy as np

        block.gathered[1] = (np.zeros(1, dtype=np.int32), np.zeros(1, dtype=np.uint8))
        block.set_state(BlockState.FROZEN)
        block.touch_hot()
        assert 1 in block.gathered


class TestSlotAllocation:
    def test_sequential_allocation(self, block):
        assert block.allocate_slot() == 0
        assert block.allocate_slot() == 1
        assert block.allocation_bitmap.get(0)

    def test_exhaustion_returns_none(self, layout):
        small = BlockLayout([ColumnSpec("id", INT64)], block_size=1 << 12)
        block = RawBlock(small, 0)
        count = 0
        while block.allocate_slot() is not None:
            count += 1
        assert count == small.num_slots
        assert block.allocate_slot() is None

    def test_deleted_slots_not_reused_without_reset(self, block):
        a = block.allocate_slot()
        block.allocate_slot()
        block.allocation_bitmap.clear(a)
        # Insert head only moves forward (recycling is compaction's job).
        assert block.allocate_slot() == 2

    def test_reset_insert_head_rescans(self, block):
        a = block.allocate_slot()
        block.allocate_slot()
        block.allocation_bitmap.clear(a)
        block.reset_insert_head()
        assert block.allocate_slot() == a

    def test_empty_and_counts(self, block):
        assert block.is_empty()
        block.allocate_slot()
        assert not block.is_empty()
        assert block.empty_slot_count() == block.layout.num_slots - 1

    def test_concurrent_allocation_unique(self, layout):
        block = RawBlock(layout, 0)
        results = []
        lock = threading.Lock()

        def worker():
            local = [block.allocate_slot() for _ in range(500)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 2000
        assert len(set(results)) == 2000


class TestViews:
    def test_fixed_column_view_is_block_memory(self, block):
        view = block.column_view(0)
        view[3] = 99
        assert block.column_view(0)[3] == 99
        assert len(view) == block.layout.num_slots

    def test_varlen_view_wrong_kind_rejected(self, block):
        with pytest.raises(StorageError):
            block.column_view(1)
        with pytest.raises(StorageError):
            block.varlen_entry_view(0, 0)

    def test_varlen_region_is_16_bytes_per_slot(self, block):
        region = block.varlen_region_view(1)
        assert len(region) == block.layout.num_slots * 16

    def test_version_column_starts_empty(self, block):
        assert not block.has_active_versions()
        block.version_ptrs[0] = object()
        assert block.has_active_versions()


class TestBlockStore:
    def test_allocate_and_get(self, layout):
        store = BlockStore()
        block = store.allocate(layout)
        assert store.get(block.block_id) is block
        assert store.live_count == 1

    def test_ids_unique(self, layout):
        store = BlockStore()
        ids = {store.allocate(layout).block_id for _ in range(10)}
        assert len(ids) == 10

    def test_release_empty_block(self, layout):
        store = BlockStore()
        block = store.allocate(layout)
        store.release(block)
        assert store.freed_count == 1
        with pytest.raises(StorageError):
            store.get(block.block_id)

    def test_release_nonempty_rejected(self, layout):
        store = BlockStore()
        block = store.allocate(layout)
        block.allocate_slot()
        with pytest.raises(StorageError):
            store.release(block)

    def test_double_release_rejected(self, layout):
        store = BlockStore()
        block = store.allocate(layout)
        store.release(block)
        with pytest.raises(StorageError):
            store.release(block)

    def test_double_release_counted_in_obs(self, layout):
        from repro.obs.registry import MetricRegistry

        reg = MetricRegistry()
        store = BlockStore(registry=reg)
        block = store.allocate(layout)
        store.release(block)
        for _ in range(2):
            with pytest.raises(StorageError):
                store.release(block)
        assert reg.counter("storage.block_double_free_total").value == 2
        assert store.freed_count == 1  # double frees never inflate the count

    def test_stale_handle_cannot_free_recycled_id(self, layout):
        store = BlockStore()
        stale = store.allocate(layout)
        store.release(stale)
        # A new block may reuse storage but never the identity; releasing
        # through the stale handle must not touch it.
        fresh = store.allocate(layout)
        with pytest.raises(StorageError):
            store.release(stale)
        assert store.get(fresh.block_id) is fresh
