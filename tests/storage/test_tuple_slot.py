"""Tests for TupleSlot packing (Figure 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.constants import OFFSET_BITS
from repro.storage.tuple_slot import TupleSlot


class TestTupleSlot:
    def test_pack_layout_matches_figure_5(self):
        slot = TupleSlot(block_id=0x10DB, offset=1)
        packed = slot.pack()
        assert packed == (0x10DB << 20) | 1
        assert packed & ((1 << OFFSET_BITS) - 1) == 1

    def test_roundtrip(self):
        slot = TupleSlot(7, 12345)
        assert TupleSlot.unpack(slot.pack()) == slot

    def test_offset_must_fit_20_bits(self):
        TupleSlot(0, (1 << OFFSET_BITS) - 1)  # max legal
        with pytest.raises(StorageError):
            TupleSlot(0, 1 << OFFSET_BITS)

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            TupleSlot(-1, 0)
        with pytest.raises(StorageError):
            TupleSlot(0, -1)

    def test_block_id_range(self):
        max_block = (1 << (64 - OFFSET_BITS)) - 1
        assert TupleSlot(max_block, 0).pack() < (1 << 64)
        with pytest.raises(StorageError):
            TupleSlot(max_block + 1, 0)

    def test_unpack_rejects_non_64_bit(self):
        with pytest.raises(StorageError):
            TupleSlot.unpack(1 << 64)
        with pytest.raises(StorageError):
            TupleSlot.unpack(-1)

    def test_ordering_is_block_then_offset(self):
        assert TupleSlot(1, 5) < TupleSlot(2, 0)
        assert TupleSlot(1, 5) < TupleSlot(1, 6)

    def test_hashable_for_write_sets(self):
        assert len({TupleSlot(1, 2), TupleSlot(1, 2), TupleSlot(1, 3)}) == 2


@given(
    st.integers(min_value=0, max_value=(1 << 44) - 1),
    st.integers(min_value=0, max_value=(1 << 20) - 1),
)
def test_pack_unpack_roundtrip_property(block_id, offset):
    slot = TupleSlot(block_id, offset)
    packed = slot.pack()
    assert 0 <= packed < (1 << 64)
    assert TupleSlot.unpack(packed) == slot
