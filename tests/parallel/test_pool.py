"""Worker-pool lifecycle: dispatch, crash fallback, respawn, degradation."""

import os
import signal
import time

import pytest

from repro.obs.registry import MetricRegistry
from repro.parallel.arena import shm_available
from repro.parallel.pool import WorkerPool, default_start_method

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture
def pool():
    p = WorkerPool(2)
    yield p
    p.stop()


class TestLifecycle:
    def test_lazy_start_and_warm(self, pool):
        assert not pool.started
        assert pool.warm()
        assert pool.started
        assert pool.alive_count() == 2

    def test_stop_is_idempotent_and_restartable(self, pool):
        assert pool.warm()
        pids = set(pool.worker_pids())
        pool.stop()
        pool.stop()
        assert pool.alive_count() == 0
        assert pool.warm()  # restart spawns fresh workers
        assert set(pool.worker_pids()).isdisjoint(pids)

    def test_ping_round_trip(self, pool):
        results = pool.run_fragments("ping", [(), (), ()])
        assert results == ["pong", "pong", "pong"]


class TestDegradation:
    def test_unknown_kind_returns_none_per_fragment(self, pool):
        reg_results = pool.run_fragments("no-such-kind", [(), ()])
        assert reg_results == [None, None]
        # The pool survives a poisoned fragment.
        assert pool.run_fragments("ping", [()]) == ["pong"]

    def test_worker_crash_mid_fragment_falls_back(self, pool):
        assert pool.warm()
        # "crash" makes the worker _exit(1) without answering; the dispatch
        # loop must notice the dead worker and give the fragment back.
        results = pool.run_fragments("crash", [()], timeout=10.0)
        assert results == [None]
        # The dead worker was respawned; the pool still works.
        deadline = time.monotonic() + 5.0
        while pool.alive_count() < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.alive_count() == 2
        assert pool.run_fragments("ping", [()]) == ["pong"]

    def test_sigkilled_worker_is_respawned(self, pool):
        assert pool.warm()
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while victim in pool.worker_pids() and time.monotonic() < deadline:
            pool.run_fragments("ping", [()], timeout=5.0)  # triggers reap
            time.sleep(0.05)
        assert victim not in pool.worker_pids()
        assert pool.run_fragments("ping", [()]) == ["pong"]

    def test_counters_track_dispatch_and_fallback(self):
        reg = MetricRegistry()
        pool = WorkerPool(2, registry=reg)
        try:
            assert pool.run_fragments("ping", [(), ()]) == ["pong", "pong"]
            pool.run_fragments("no-such-kind", [()])
            assert reg.counter("parallel.tasks_dispatched_total").value == 3
            assert reg.counter("parallel.tasks_completed_total").value == 2
            assert reg.counter("parallel.task_failures_total").value == 1
            assert reg.counter("parallel.fallbacks_total").value == 1
            assert reg.gauge("parallel.workers_configured").value == 2
            assert reg.gauge("parallel.workers_alive").value == 2
        finally:
            pool.stop()


class TestStartMethods:
    def test_default_honors_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        assert default_start_method() == "spawn"
        monkeypatch.delenv("REPRO_PARALLEL_START_METHOD")
        assert default_start_method() in ("fork", "spawn")

    def test_spawn_method_round_trips(self):
        pool = WorkerPool(1, start_method="spawn")
        try:
            assert pool.run_fragments("ping", [()], timeout=60.0) == ["pong"]
        finally:
            pool.stop()

    def test_bogus_start_method_marks_pool_broken(self):
        with pytest.raises(ValueError):
            WorkerPool(1, start_method="no-such-method")


class TestScannerFallback:
    """Parallel scans must answer correctly with the pool in any state."""

    def _build(self, workers):
        from repro import ColumnSpec, Database, INT64, UTF8

        db = Database(
            logging_enabled=False,
            cold_threshold_epochs=1,
            parallel_workers=workers,
        )
        info = db.create_table(
            "t",
            [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13,
            watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(1200):
                info.table.insert(txn, {0: i, 1: f"v-{i}"})
        db.freeze_table("t")
        return db, info

    def _scan_ids(self, db, info, pool=None):
        from repro.query.scan import TableScanner

        scanner = TableScanner(db.txn_manager, info.table, pool=pool)
        out = []
        for batch in scanner.batches():
            out.extend(batch.pylist(0))
        return out

    def test_disabled_pool_serves_serially(self):
        db, info = self._build(workers=0)
        try:
            assert db.parallel_pool is None
            assert self._scan_ids(db, info) == list(range(1200))
        finally:
            db.close()

    def test_stopped_pool_falls_back_without_failing(self):
        db, info = self._build(workers=2)
        try:
            pool = db.parallel_pool
            assert pool.warm()
            pool.stop()
            pool._broken = True  # simulate an unstartable pool
            assert self._scan_ids(db, info, pool=pool) == list(range(1200))
        finally:
            db.close()

    def test_worker_killed_mid_query_query_still_answers(self):
        db, info = self._build(workers=2)
        try:
            pool = db.parallel_pool
            assert pool.warm()
            # Kill every worker: all fragments come back None and the scan
            # recomputes them in-process under its held pins.
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            assert self._scan_ids(db, info, pool=pool) == list(range(1200))
        finally:
            db.close()
