"""Parallel results must be *identical* to serial — never approximately so.

Every test here builds one database, runs the serial path and the parallel
path over the same snapshot, and compares full materialized contents (and,
for Flight, the raw payload bytes).  Parallelism is a pure performance
lever; any divergence is a bug in the shared-memory placement or the
worker's batch reconstruction.
"""

import pytest

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.export.flight import export_stream
from repro.parallel.arena import shm_available
from repro.query.scan import TableScanner

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

COLUMNS = [
    ColumnSpec("id", INT64),
    ColumnSpec("amount", FLOAT64),
    ColumnSpec("note", UTF8),
]


def build(rows=1500, nulls=True, freeze=True, workers=2, **db_kwargs):
    db = Database(
        logging_enabled=False,
        cold_threshold_epochs=1,
        parallel_workers=workers,
        **db_kwargs,
    )
    info = db.create_table(
        "t", COLUMNS, block_size=1 << 13, watch_cold=freeze
    )
    slots = []
    with db.transaction() as txn:
        for i in range(rows):
            amount = None if nulls and i % 7 == 0 else float(i % 90)
            note = None if nulls and i % 11 == 0 else f"note-{i}-{'x' * (i % 5)}"
            slots.append(info.table.insert(txn, {0: i, 1: amount, 2: note}))
    if freeze:
        db.freeze_table("t")
    return db, info, slots


def materialize(scanner):
    """Every batch's full contents, in scan order."""
    out = []
    for batch in scanner.batches():
        out.append(
            (batch.num_rows, tuple(tuple(batch.pylist(c)) for c in range(3)))
        )
    return out


def assert_scan_equivalent(db, info, **scan_kwargs):
    serial = TableScanner(db.txn_manager, info.table, **scan_kwargs)
    parallel = TableScanner(
        db.txn_manager, info.table, pool=db.parallel_pool, **scan_kwargs
    )
    assert materialize(serial) == materialize(parallel)
    assert serial.frozen_blocks_scanned == parallel.frozen_blocks_scanned
    assert serial.hot_blocks_scanned == parallel.hot_blocks_scanned
    assert serial.blocks_pruned == parallel.blocks_pruned
    return serial, parallel


class TestScanEquivalence:
    def test_fixed_varlen_and_nulls(self):
        db, info, _ = build()
        try:
            serial, _ = assert_scan_equivalent(db, info)
            assert serial.frozen_blocks_scanned >= 2
        finally:
            db.close()

    def test_projection(self):
        db, info, _ = build()
        try:
            for column_ids in ([0], [2], [1, 2]):
                s = TableScanner(
                    db.txn_manager, info.table, column_ids=column_ids
                )
                p = TableScanner(
                    db.txn_manager,
                    info.table,
                    column_ids=column_ids,
                    pool=db.parallel_pool,
                )
                s_rows = [
                    tuple(tuple(b.pylist(c)) for c in column_ids)
                    for b in s.batches()
                ]
                p_rows = [
                    tuple(tuple(b.pylist(c)) for c in column_ids)
                    for b in p.batches()
                ]
                assert s_rows == p_rows
        finally:
            db.close()

    def test_selection_vectors_from_range_filters(self):
        db, info, _ = build()
        try:
            serial, _ = assert_scan_equivalent(
                db, info, range_filters={0: (200, 1000), 1: (10.0, 60.0)}
            )
            assert serial.blocks_pruned >= 1  # zone maps did prune
        finally:
            db.close()

    def test_mixed_hot_and_frozen(self):
        db, info, _ = build()
        try:
            with db.transaction() as txn:
                for i in range(5000, 5200):
                    info.table.insert(txn, {0: i, 1: 1.0, 2: "hot"})
            serial, _ = assert_scan_equivalent(db, info)
            assert serial.hot_blocks_scanned >= 1
            assert serial.frozen_blocks_scanned >= 1
        finally:
            db.close()

    def test_reheated_block_descriptor_is_ignored(self):
        db, info, slots = build()
        try:
            # Updating reheats the first block: its descriptor's frozen_at
            # no longer matches, so the parallel scan must serve that block
            # in-process (the arena copy is stale).
            with db.transaction() as txn:
                info.table.update(txn, slots[0], {1: 12345.0})
            assert_scan_equivalent(db, info)
        finally:
            db.close()

    def test_refreeze_replaces_descriptor(self):
        db, info, slots = build()
        try:
            with db.transaction() as txn:
                info.table.update(txn, slots[0], {2: "rewritten"})
            db.freeze_table("t")
            serial, _ = assert_scan_equivalent(db, info)
            assert serial.hot_blocks_scanned == 0
        finally:
            db.close()

    def test_dictionary_blocks_stay_in_process(self):
        db, info, _ = build(cold_format="dictionary")
        try:
            # Dictionary-compressed blocks never get a descriptor; the
            # parallel scan serves them in-process and must still agree.
            assert all(b.shm_descriptor is None for b in info.table.blocks)
            assert_scan_equivalent(db, info)
        finally:
            db.close()

    def test_concurrent_freeze_mid_scan(self):
        db, info, _ = build(rows=1500)
        try:
            serial = TableScanner(db.txn_manager, info.table)
            parallel = TableScanner(
                db.txn_manager, info.table, pool=db.parallel_pool
            )
            s_iter, p_iter = serial.batches(), parallel.batches()
            s_out = [next(s_iter)]
            p_out = [next(p_iter)]  # both snapshots are now established
            with db.transaction() as txn:
                for i in range(9000, 9800):
                    info.table.insert(txn, {0: i, 1: 2.0, 2: "late"})
            db.freeze_table("t")  # grows the arena mid-scan
            s_out.extend(s_iter)
            p_out.extend(p_iter)
            s_rows = [tuple(tuple(b.pylist(c)) for c in range(3)) for b in s_out]
            p_rows = [tuple(tuple(b.pylist(c)) for c in range(3)) for b in p_out]
            assert s_rows == p_rows
        finally:
            db.close()

    def test_spawn_start_method(self):
        db, info, _ = build(
            rows=600, workers=2, parallel_start_method="spawn"
        )
        try:
            assert db.parallel_pool.start_method == "spawn"
            assert db.parallel_pool.warm(timeout=60.0)
            assert_scan_equivalent(db, info)
        finally:
            db.close()


class TestExportEquivalence:
    def test_flight_stream_byte_identical(self):
        db, info, _ = build()
        try:
            serial = export_stream(db.txn_manager, info.table)
            parallel = export_stream(
                db.txn_manager, info.table, pool=db.parallel_pool
            )
            assert serial.payload == parallel.payload
            assert serial.batches == parallel.batches
            assert serial.frozen_blocks == parallel.frozen_blocks
            assert serial.materialized_blocks == parallel.materialized_blocks
        finally:
            db.close()

    def test_flight_stream_mixed_hot_frozen_byte_identical(self):
        db, info, _ = build()
        try:
            with db.transaction() as txn:
                for i in range(7000, 7300):
                    info.table.insert(txn, {0: i, 1: 3.5, 2: None})
            serial = export_stream(db.txn_manager, info.table)
            parallel = export_stream(
                db.txn_manager, info.table, pool=db.parallel_pool
            )
            assert serial.payload == parallel.payload
            assert parallel.materialized_blocks >= 1
        finally:
            db.close()

    def test_exporter_flight_method_uses_pool(self):
        from repro.export import TableExporter
        from repro.export.flight import client_receive

        db, info, _ = build()
        try:
            exporter = TableExporter(
                db.txn_manager, info.table, pool=db.parallel_pool
            )
            result = exporter.export("flight")
            assert result.rows == 1500
            completed = db.obs.counter("parallel.tasks_completed_total").value
            assert completed >= 1  # the pool really did the serialization
            # And the client parses the parallel-produced stream.
            serial = export_stream(db.txn_manager, info.table)
            assert client_receive(serial.payload).num_rows == 1500
        finally:
            db.close()

    def test_empty_table_exports_identically(self):
        db, info, _ = build(rows=0, freeze=False)
        try:
            serial = export_stream(db.txn_manager, info.table)
            parallel = export_stream(
                db.txn_manager, info.table, pool=db.parallel_pool
            )
            assert serial.payload == parallel.payload
        finally:
            db.close()


class TestBlockStoreIntegration:
    def test_released_block_frees_its_arena_slot(self):
        db, info, slots = build(rows=1500)
        try:
            used_before = db.obs.gauge("arena.slots_used").value
            assert used_before > 0
            # Delete everything; compaction empties blocks and the deferred
            # GC releases them — each release must free its arena slot too.
            with db.transaction() as txn:
                for slot in slots:
                    info.table.delete(txn, slot)
            db.run_maintenance(passes=8)
            assert db.block_store.freed_count > 0
            assert db.obs.gauge("arena.slots_used").value < used_before
        finally:
            db.close()
