"""Shared-memory arena hygiene: names, unlink-on-last-release, double-free."""

import os

import numpy as np
import pytest

from repro.errors import StorageError
from repro.obs.registry import MetricRegistry
from repro.parallel.arena import SharedMemoryArena, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


class TestNaming:
    def test_deterministic_prefix_namespacing(self):
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=2)
        try:
            assert arena.prefix.startswith(f"repro-{os.getpid():x}-")
            slot = arena.allocate(100)
            assert slot.segment == f"{arena.prefix}-0"
            assert arena.segment_names() == [slot.segment]
        finally:
            arena.close()

    def test_two_arenas_never_collide(self):
        a = SharedMemoryArena(slot_size=4096, slots_per_segment=2)
        b = SharedMemoryArena(slot_size=4096, slots_per_segment=2)
        try:
            a.allocate(100)
            b.allocate(100)
            assert set(a.segment_names()).isdisjoint(b.segment_names())
        finally:
            a.close()
            b.close()

    def test_slot_size_must_be_8_aligned(self):
        with pytest.raises(StorageError):
            SharedMemoryArena(slot_size=1001)


class TestAllocation:
    def test_view_round_trips_bytes(self):
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=4)
        try:
            slot = arena.allocate(1000)
            view = arena.view(slot)
            view[:] = np.arange(1000, dtype=np.uint8) % 251
            again = arena.view(slot)
            assert np.array_equal(again, np.arange(1000, dtype=np.uint8) % 251)
            del view, again  # views pin the mapping; drop before close
        finally:
            arena.close()

    def test_multi_slot_run_is_contiguous(self):
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=4)
        try:
            big = arena.allocate(4096 * 3)  # three slots
            assert big.slot_count == 3
            assert arena.view(big).nbytes == 4096 * 3
        finally:
            arena.close()

    def test_oversized_allocation_gets_dedicated_segment(self):
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=2)
        try:
            slot = arena.allocate(4096 * 5)  # more than slots_per_segment
            assert slot.slot_count == 5
        finally:
            arena.close()

    def test_slots_reused_after_release(self):
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=4)
        try:
            first = arena.allocate(100)
            keeper = arena.allocate(100)  # keeps the segment alive
            arena.release(first)
            second = arena.allocate(100)
            assert second.segment_index == first.segment_index
            assert second.slot_index == first.slot_index
            arena.release(keeper)
            arena.release(second)
        finally:
            arena.close()

    def test_empty_allocation_rejected(self):
        arena = SharedMemoryArena(slot_size=4096)
        try:
            with pytest.raises(StorageError):
                arena.allocate(0)
        finally:
            arena.close()


class TestHygiene:
    def test_unlink_on_last_release(self):
        reg = MetricRegistry()
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=2, registry=reg)
        try:
            a = arena.allocate(100)
            b = arena.allocate(100)
            name = a.segment
            assert shm_exists(name)
            arena.release(a)
            assert shm_exists(name)  # b still holds the segment
            arena.release(b)
            assert not shm_exists(name)
            assert arena.segment_names() == []
            assert reg.counter("arena.segments_unlinked_total").value == 1
        finally:
            arena.close()

    def test_close_unlinks_everything_and_is_idempotent(self):
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=2)
        arena.allocate(100)
        arena.allocate(4096 * 3)
        names = arena.segment_names()
        assert names and all(shm_exists(n) for n in names)
        arena.close()
        arena.close()  # idempotent
        assert all(not shm_exists(n) for n in names)
        assert arena.closed

    def test_allocate_after_close_rejected(self):
        arena = SharedMemoryArena(slot_size=4096)
        arena.close()
        with pytest.raises(StorageError):
            arena.allocate(100)

    def test_double_free_rejected_and_counted(self):
        reg = MetricRegistry()
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=2, registry=reg)
        try:
            slot = arena.allocate(100)
            keeper = arena.allocate(100)
            arena.release(slot)
            with pytest.raises(StorageError):
                arena.release(slot)
            assert reg.counter("arena.slot_double_free_total").value == 1
            arena.release(keeper)
        finally:
            arena.close()

    def test_release_after_segment_unlinked_rejected(self):
        reg = MetricRegistry()
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=2, registry=reg)
        try:
            slot = arena.allocate(100)
            arena.release(slot)  # last slot: segment unlinked
            with pytest.raises(StorageError):
                arena.release(slot)
            assert reg.counter("arena.slot_double_free_total").value == 1
        finally:
            arena.close()

    def test_obs_gauges_track_usage(self):
        reg = MetricRegistry()
        arena = SharedMemoryArena(slot_size=4096, slots_per_segment=4, registry=reg)
        try:
            a = arena.allocate(100)
            b = arena.allocate(4096 * 2)
            assert reg.gauge("arena.segments").value == 1
            assert reg.gauge("arena.slots_used").value == 3
            assert reg.counter("arena.allocations_total").value == 2
            arena.release(a)
            arena.release(b)
            assert reg.gauge("arena.slots_used").value == 0
            assert reg.counter("arena.releases_total").value == 2
        finally:
            arena.close()


class TestDatabaseLifecycle:
    def test_database_close_leaves_no_segments(self):
        from repro import ColumnSpec, Database, INT64, UTF8

        db = Database(
            logging_enabled=False, cold_threshold_epochs=1, parallel_workers=2
        )
        info = db.create_table(
            "t",
            [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13,
            watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(500):
                info.table.insert(txn, {0: i, 1: f"v-{i}"})
        db.freeze_table("t")
        assert any(b.shm_descriptor is not None for b in info.table.blocks)
        names = db.arena.segment_names()
        assert names and all(shm_exists(n) for n in names)
        db.close()
        assert all(not shm_exists(n) for n in names)
