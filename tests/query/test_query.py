"""Tests for the vectorized analytics layer over Arrow-native storage."""

import numpy as np
import pytest

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.query import TableScanner, aggregate, filter_mask, group_by_aggregate
from repro.query.ops import AggregateResult


def build(rows=300, freeze=True, nulls=False):
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "sales",
        [
            ColumnSpec("region", INT64),
            ColumnSpec("amount", FLOAT64),
            ColumnSpec("note", UTF8),
        ],
        block_size=1 << 13,
        watch_cold=freeze,
    )
    with db.transaction() as txn:
        for i in range(rows):
            amount = None if nulls and i % 7 == 0 else float(i % 50)
            info.table.insert(txn, {0: i % 4, 1: amount, 2: f"note-{i}"})
    if freeze:
        db.freeze_table("sales")
    return db, info


class TestScanner:
    def test_frozen_fast_path_used(self):
        db, info = build()
        scanner = TableScanner(db.txn_manager, info.table)
        total = sum(batch.num_rows for batch in scanner.batches())
        assert total == 300
        assert scanner.frozen_blocks_scanned >= 1

    def test_hot_fallback(self):
        db, info = build(freeze=False)
        scanner = TableScanner(db.txn_manager, info.table)
        total = sum(batch.num_rows for batch in scanner.batches())
        assert total == 300
        assert scanner.frozen_blocks_scanned == 0
        assert scanner.hot_blocks_scanned >= 1

    def test_frozen_fixed_columns_are_numpy(self):
        db, info = build()
        scanner = TableScanner(db.txn_manager, info.table, column_ids=[0, 1])
        batch = next(scanner.batches())
        assert isinstance(batch.column(0), np.ndarray)
        assert batch.from_frozen

    def test_frozen_varlen_columns_are_lazy_views(self):
        from repro.query import ArrowColumnView

        db, info = build()
        scanner = TableScanner(db.txn_manager, info.table, column_ids=[2])
        batch = next(scanner.batches())
        column = batch.column(2)
        # Frozen varlen columns are served as a lazy Arrow view: point
        # lookups hit the array directly, full materialization is deferred.
        assert isinstance(column, ArrowColumnView)
        assert column._values is None
        assert column[0].startswith("note-")
        assert column._values is None  # point lookup did not materialize
        as_list = column.to_pylist()
        assert isinstance(as_list, list)
        assert len(as_list) == len(column) == batch.num_rows
        assert all(isinstance(v, str) and v.startswith("note-") for v in as_list)

    def test_projection_restricts_columns(self):
        db, info = build()
        scanner = TableScanner(db.txn_manager, info.table, column_ids=[1])
        batch = next(scanner.batches())
        with pytest.raises(Exception):
            batch.column(0)

    def test_mixed_hot_and_frozen(self):
        # Three blocks: two freezable, so reheating one leaves one frozen.
        db, info = build(rows=600)
        frozen = [b for b in info.table.blocks if b.state.name == "FROZEN"]
        assert len(frozen) >= 2
        frozen[0].touch_hot()
        scanner = TableScanner(db.txn_manager, info.table)
        total = sum(b.num_rows for b in scanner.batches())
        assert total == 600
        assert scanner.hot_blocks_scanned >= 1
        assert scanner.frozen_blocks_scanned >= 1

    def test_uncommitted_rows_invisible(self):
        db, info = build(freeze=False)
        pending = db.begin()
        info.table.insert(pending, {0: 9, 1: 1.0, 2: "pending"})
        scanner = TableScanner(db.txn_manager, info.table)
        assert sum(b.num_rows for b in scanner.batches()) == 300


class TestAggregates:
    def test_sum_count_min_max_mean(self):
        db, info = build()
        result = aggregate(TableScanner(db.txn_manager, info.table), value_column=1)
        expected = [float(i % 50) for i in range(300)]
        assert result.count == 300
        assert result.total == pytest.approx(sum(expected))
        assert result.minimum == 0.0
        assert result.maximum == 49.0
        assert result.mean == pytest.approx(sum(expected) / 300)

    def test_aggregate_matches_hot_path(self):
        frozen_db, frozen_info = build()
        hot_db, hot_info = build(freeze=False)
        frozen = aggregate(TableScanner(frozen_db.txn_manager, frozen_info.table), 1)
        hot = aggregate(TableScanner(hot_db.txn_manager, hot_info.table), 1)
        assert frozen.total == pytest.approx(hot.total)
        assert frozen.count == hot.count

    def test_filtered_aggregate(self):
        db, info = build()
        result = aggregate(
            TableScanner(db.txn_manager, info.table),
            value_column=1,
            filter_column=0,
            predicate=lambda region: region == 2,
        )
        expected = [float(i % 50) for i in range(300) if i % 4 == 2]
        assert result.count == len(expected)
        assert result.total == pytest.approx(sum(expected))

    def test_nulls_skipped(self):
        db, info = build(nulls=True)
        result = aggregate(TableScanner(db.txn_manager, info.table), 1)
        expected = [float(i % 50) for i in range(300) if i % 7 != 0]
        assert result.count == len(expected)
        assert result.total == pytest.approx(sum(expected))

    def test_empty_aggregate(self):
        db = Database(logging_enabled=False)
        info = db.create_table("e", [ColumnSpec("x", INT64)])
        result = aggregate(TableScanner(db.txn_manager, info.table), 0)
        assert result.count == 0
        assert result.mean is None


class TestGroupBy:
    def test_group_by_matches_reference(self):
        db, info = build()
        groups = group_by_aggregate(
            TableScanner(db.txn_manager, info.table), key_column=0, value_column=1
        )
        reference: dict[int, list[float]] = {}
        for i in range(300):
            reference.setdefault(i % 4, []).append(float(i % 50))
        assert set(groups) == set(reference)
        for key, values in reference.items():
            assert groups[key].count == len(values)
            assert groups[key].total == pytest.approx(sum(values))

    def test_group_by_hot_equals_frozen(self):
        frozen_db, frozen_info = build()
        hot_db, hot_info = build(freeze=False)
        frozen = group_by_aggregate(
            TableScanner(frozen_db.txn_manager, frozen_info.table), 0, 1
        )
        hot = group_by_aggregate(TableScanner(hot_db.txn_manager, hot_info.table), 0, 1)
        assert {k: v.total for k, v in frozen.items()} == pytest.approx(
            {k: v.total for k, v in hot.items()}
        )


class TestFilterMask:
    def test_vectorized_predicate(self):
        db, info = build()
        batch = next(TableScanner(db.txn_manager, info.table).batches())
        mask = filter_mask(batch, 0, lambda col: col > 1)
        assert mask.dtype == bool
        assert mask.sum() == sum(1 for v in batch.column(0) if v > 1)

    def test_scalar_predicate_on_varlen(self):
        db, info = build()
        batch = next(TableScanner(db.txn_manager, info.table).batches())
        mask = filter_mask(batch, 2, lambda s: s.endswith("7"))
        kept = [v for v, m in zip(batch.column(2), mask) if m]
        assert all(v.endswith("7") for v in kept)

    def test_bad_vectorized_shape_rejected(self):
        from repro.errors import StorageError

        db, info = build()
        batch = next(TableScanner(db.txn_manager, info.table).batches())
        with pytest.raises(StorageError):
            filter_mask(batch, 0, lambda col: np.array([True]))


class TestAggregateResult:
    def test_update_from_list_with_nones(self):
        result = AggregateResult()
        result.update([1.0, None, 3.0])
        assert result.count == 2
        assert result.total == 4.0

    def test_update_empty(self):
        result = AggregateResult()
        result.update([])
        result.update(np.array([]))
        assert result.count == 0
