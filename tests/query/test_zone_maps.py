"""Tests for zone maps and block pruning."""

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.query import TableScanner, aggregate
from repro.storage.constants import BlockState


def build(rows=1200, cold_format="gather"):
    """Blocks hold consecutive id ranges, so zone maps are selective."""
    db = Database(logging_enabled=False, cold_threshold_epochs=1,
                  cold_format=cold_format)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
        block_size=1 << 13,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(rows):
            info.table.insert(txn, {0: i, 1: f"row-{i}"})
    db.freeze_table("t")
    return db, info


class TestZoneMapComputation:
    def test_gather_builds_zone_maps(self):
        db, info = build()
        frozen = [b for b in info.table.blocks if b.state is BlockState.FROZEN]
        assert frozen
        for block in frozen:
            low, high = block.zone_maps[0]
            live = block.column_view(0)[: block.allocation_bitmap.count_set()]
            assert low == live.min()
            assert high == live.max()

    def test_dictionary_format_also_builds_zone_maps(self):
        db, info = build(cold_format="dictionary")
        frozen = [b for b in info.table.blocks if b.state is BlockState.FROZEN]
        assert frozen
        assert all(0 in b.zone_maps for b in frozen)

    def test_varlen_columns_have_no_zone_map(self):
        db, info = build()
        frozen = [b for b in info.table.blocks if b.state is BlockState.FROZEN]
        assert all(1 not in b.zone_maps for b in frozen)

    def test_null_only_column_has_no_zone_map(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = db.create_table(
            "n", [ColumnSpec("x", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13, watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(700):
                info.table.insert(txn, {0: None, 1: "v"})
        db.freeze_table("n")
        frozen = [b for b in info.table.blocks if b.state is BlockState.FROZEN]
        assert frozen
        assert all(0 not in b.zone_maps for b in frozen)

    def test_refreeze_recomputes(self):
        db, info = build()
        frozen = [b for b in info.table.blocks if b.state is BlockState.FROZEN]
        block = frozen[0]
        old_zone = block.zone_maps[0]
        from repro.storage.tuple_slot import TupleSlot

        with db.transaction() as txn:
            info.table.update(txn, TupleSlot(block.block_id, 0), {0: 10_000})
        db.freeze_table("t")
        assert block.zone_maps[0][1] == 10_000
        assert block.zone_maps[0] != old_zone


class TestPruning:
    def test_disjoint_blocks_pruned(self):
        db, info = build()
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0],
            range_filters={0: (0, 50)},
        )
        total = sum(b.num_rows for b in scanner.batches())
        assert scanner.blocks_pruned >= 1
        # Pruning must keep every block that *could* contain matches.
        assert total >= 51

    def test_pruned_aggregate_equals_unpruned(self):
        db, info = build()
        low, high = 100, 400
        pruned_scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0], range_filters={0: (low, high)}
        )
        pruned = aggregate(
            pruned_scanner, value_column=0, filter_column=0,
            predicate=lambda col: (col >= low) & (col <= high),
        )
        full_scanner = TableScanner(db.txn_manager, info.table, column_ids=[0])
        full = aggregate(
            full_scanner, value_column=0, filter_column=0,
            predicate=lambda col: (col >= low) & (col <= high),
        )
        assert pruned.count == full.count == high - low + 1
        assert pruned.total == full.total
        assert pruned_scanner.blocks_pruned > 0

    def test_open_ended_ranges(self):
        db, info = build()
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0], range_filters={0: (1000, None)}
        )
        list(scanner.batches())
        assert scanner.blocks_pruned >= 1
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0], range_filters={0: (None, 10)}
        )
        list(scanner.batches())
        assert scanner.blocks_pruned >= 1

    def test_hot_blocks_pruned_via_write_side_maps(self):
        # Reheating seeds the widen-only hot zone maps from the frozen
        # ones, so hot blocks stay prunable (and stay correct).
        db, info = build()
        for block in list(info.table.blocks):
            block.touch_hot()
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0], range_filters={0: (0, 1)}
        )
        result = aggregate(
            scanner, value_column=0, filter_column=0,
            predicate=lambda col: (col >= 0) & (col <= 1),
        )
        assert result.count == 2
        assert scanner.blocks_pruned >= 1

    def test_hot_zone_maps_widen_on_write(self):
        # Writing an out-of-range value into a reheated block widens its
        # hot map, so the block is no longer pruned for that range.
        db, info = build()
        last = info.table.blocks[-1]
        last.touch_hot()
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0], range_filters={0: (-5, -1)}
        )
        assert sum(b.selected_count for b in scanner.batches()) == 0
        assert scanner.blocks_pruned == len(info.table.blocks)
        with db.transaction() as txn:
            info.table.insert(txn, {0: -3, 1: "below-range"})
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0], range_filters={0: (-5, -1)}
        )
        assert sum(b.selected_count for b in scanner.batches()) == 1

    def test_no_filters_means_no_pruning(self):
        db, info = build()
        scanner = TableScanner(db.txn_manager, info.table, column_ids=[0])
        total = sum(b.num_rows for b in scanner.batches())
        assert total == 1200
        assert scanner.blocks_pruned == 0
