"""Tests for the fluent Query builder."""

import pytest

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.errors import StorageError
from repro.query import Query


@pytest.fixture(scope="module")
def sales_db():
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "sales",
        [
            ColumnSpec("id", INT64),
            ColumnSpec("region", INT64),
            ColumnSpec("amount", FLOAT64),
            ColumnSpec("note", UTF8),
        ],
        block_size=1 << 13,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(1000):
            info.table.insert(
                txn, {0: i, 1: i % 5, 2: float(i % 100), 3: f"note-{i}"}
            )
    db.freeze_table("sales")
    return db


REFERENCE = [(i, i % 5, float(i % 100), f"note-{i}") for i in range(1000)]


class TestAggregates:
    def test_unfiltered_sum(self, sales_db):
        expected = sum(r[2] for r in REFERENCE)
        assert Query(sales_db, "sales").sum("amount") == pytest.approx(expected)

    def test_count_with_predicate(self, sales_db):
        got = Query(sales_db, "sales").where("region", "==", 2).count()
        assert got == sum(1 for r in REFERENCE if r[1] == 2)

    def test_conjunction(self, sales_db):
        query = (
            Query(sales_db, "sales")
            .where("region", "==", 1)
            .where("amount", ">", 50.0)
        )
        expected = [r for r in REFERENCE if r[1] == 1 and r[2] > 50.0]
        assert query.count() == len(expected)
        assert query.sum("amount") == pytest.approx(sum(r[2] for r in expected))

    def test_min_max_avg(self, sales_db):
        query = Query(sales_db, "sales").where("region", "==", 0)
        amounts = [r[2] for r in REFERENCE if r[1] == 0]
        assert query.min("amount") == min(amounts)
        assert query.max("amount") == max(amounts)
        assert query.avg("amount") == pytest.approx(sum(amounts) / len(amounts))

    def test_group_by_sum(self, sales_db):
        got = Query(sales_db, "sales").group_by("region").sum("amount")
        expected: dict[int, float] = {}
        for _, region, amount, _ in REFERENCE:
            expected[region] = expected.get(region, 0.0) + amount
        assert got == pytest.approx(expected)

    def test_group_by_with_filter(self, sales_db):
        got = (
            Query(sales_db, "sales")
            .where("amount", ">=", 90.0)
            .group_by("region")
            .count()
        )
        expected: dict[int, int] = {}
        for _, region, amount, _ in REFERENCE:
            if amount >= 90.0:
                expected[region] = expected.get(region, 0) + 1
        assert got == expected


class TestRows:
    def test_to_rows_names_and_values(self, sales_db):
        rows = Query(sales_db, "sales").where("id", "==", 7).to_rows()
        assert rows == [{"id": 7, "region": 2, "amount": 7.0, "note": "note-7"}]

    def test_limit(self, sales_db):
        rows = Query(sales_db, "sales").to_rows(limit=5)
        assert len(rows) == 5

    def test_varlen_predicate(self, sales_db):
        rows = Query(sales_db, "sales").where("note", "==", "note-123").to_rows()
        assert [r["id"] for r in rows] == [123]


class TestPruningIntegration:
    def test_range_predicates_prune_blocks(self, sales_db):
        query = Query(sales_db, "sales").where_between("id", 0, 50)
        assert query.count() == 51
        scanner = query._scanner([0])
        list(scanner.batches())
        assert scanner.blocks_pruned >= 1

    def test_equality_predicate_prunes(self, sales_db):
        query = Query(sales_db, "sales").where("id", "==", 999)
        scanner = query._scanner([0])
        list(scanner.batches())
        assert scanner.blocks_pruned >= 1
        assert query.count() == 1


class TestValidation:
    def test_bad_operator(self, sales_db):
        with pytest.raises(StorageError):
            Query(sales_db, "sales").where("id", "~", 1)

    def test_unknown_column(self, sales_db):
        with pytest.raises(Exception):
            Query(sales_db, "sales").where("nope", "==", 1)

    def test_results_match_transactional_scan(self, sales_db):
        # The builder must agree with the MVCC scan it bypasses for frozen
        # blocks.
        txn = sales_db.begin()
        table = sales_db.catalog.table("sales")
        expected = sum(
            row.get(2)
            for _, row in table.scan(txn, [1, 2])
            if row.get(1) == 3
        )
        sales_db.commit(txn)
        got = Query(sales_db, "sales").where("region", "==", 3).sum("amount")
        assert got == pytest.approx(expected)
