"""Equivalence and contract tests for the vectorized snapshot scan.

The vectorized hot-block path (`TableScanner(vectorized=True)`, the
default) must be indistinguishable — byte for byte on fixed-width
columns, value for value on varlen — from the row-at-a-time reference
path (`vectorized=False`), which calls ``DataTable.select`` once per
slot.  The tests here drive both paths under the same snapshot against
tables with version chains, NULLs, deletions, and concurrent writers,
plus pin the selection-vector and snapshot-consistency contracts.
"""

import threading

import numpy as np
import pytest

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.query import ArrowColumnView, TableScanner, aggregate
from repro.query.ops import filter_masks
from repro.storage.tuple_slot import TupleSlot


def build(rows=400, nulls=True):
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [
            ColumnSpec("id", INT64),
            ColumnSpec("amount", FLOAT64),
            ColumnSpec("note", UTF8),
        ],
        block_size=1 << 13,
    )
    slots = []
    with db.transaction() as txn:
        for i in range(rows):
            amount = None if nulls and i % 7 == 0 else float(i)
            note = None if nulls and i % 11 == 0 else f"note-{i}"
            slots.append(info.table.insert(txn, {0: i, 1: amount, 2: note}))
    return db, info, slots


def churn(db, info, slots):
    """Build version chains: updates, deletes, NULL flips."""
    with db.transaction() as txn:
        for i in range(0, len(slots), 5):
            info.table.update(txn, slots[i], {1: float(i) * 10.0, 2: f"upd-{i}"})
        for i in range(3, len(slots), 17):
            info.table.delete(txn, slots[i])
        for i in range(1, len(slots), 13):
            info.table.update(txn, slots[i], {1: None})


def assert_batches_equal(fast, slow):
    """Vectorized batch must match the row-wise oracle exactly."""
    assert fast.num_rows == slow.num_rows
    assert set(fast.columns) == set(slow.columns)
    for cid, vector in fast.columns.items():
        oracle = slow.columns[cid]
        if isinstance(vector, np.ndarray):
            assert isinstance(oracle, np.ndarray)
            assert vector.dtype == oracle.dtype
            f_nulls = fast.null_masks.get(cid)
            s_nulls = slow.null_masks.get(cid)
            if f_nulls is None and s_nulls is None:
                assert vector.tobytes() == oracle.tobytes()
            else:
                assert f_nulls is not None and s_nulls is not None
                assert np.array_equal(f_nulls, s_nulls)
                valid = ~f_nulls
                assert np.array_equal(vector[valid], oracle[valid])
        else:
            assert list(vector) == list(oracle)


def scan_pair(db, info, txn=None, **kwargs):
    fast = TableScanner(db.txn_manager, info.table, txn=txn, **kwargs)
    slow = TableScanner(
        db.txn_manager, info.table, txn=txn, vectorized=False, **kwargs
    )
    return list(fast.batches()), list(slow.batches())


class TestHotEquivalence:
    def test_clean_hot_blocks(self):
        db, info, _ = build()
        fast, slow = scan_pair(db, info)
        assert fast and len(fast) == len(slow)
        for f, s in zip(fast, slow):
            assert_batches_equal(f, s)

    def test_with_version_chains(self):
        db, info, slots = build()
        churn(db, info, slots)
        fast, slow = scan_pair(db, info)
        assert len(fast) == len(slow)
        for f, s in zip(fast, slow):
            assert_batches_equal(f, s)

    def test_uncommitted_writer_invisible(self):
        db, info, slots = build(rows=100, nulls=False)
        writer = db.txn_manager.begin()
        info.table.update(writer, slots[0], {1: -1.0, 2: "dirty"})
        info.table.delete(writer, slots[1])
        info.table.insert(writer, {0: 999, 1: 9.0, 2: "new"})
        try:
            fast, slow = scan_pair(db, info)
            for f, s in zip(fast, slow):
                assert_batches_equal(f, s)
            total = sum(b.num_rows for b in fast)
            assert total == 100  # writer's churn invisible to the snapshot
            assert -1.0 not in fast[0].column(1)
        finally:
            db.txn_manager.abort(writer)

    def test_concurrent_writer_threads(self):
        """Scans racing real writer threads stay equal to the oracle."""
        db, info, slots = build(rows=200, nulls=False)
        stop = threading.Event()
        errors = []

        def mutate():
            i = 0
            while not stop.is_set():
                try:
                    with db.transaction() as txn:
                        slot = slots[i % len(slots)]
                        info.table.update(
                            txn, slot, {1: float(i), 2: f"w-{i}"}
                        )
                    i += 1
                except Exception as exc:  # pragma: no cover - fail loud
                    errors.append(exc)
                    return

        thread = threading.Thread(target=mutate, daemon=True)
        thread.start()
        try:
            for _ in range(10):
                txn = db.txn_manager.begin()
                try:
                    fast, slow = scan_pair(db, info, txn=txn)
                finally:
                    db.txn_manager.commit(txn)
                assert len(fast) == len(slow)
                for f, s in zip(fast, slow):
                    assert_batches_equal(f, s)
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not errors

    def test_rows_patched_counts_chained_slots_only(self):
        db, info, slots = build(rows=100, nulls=False)
        db.quiesce()  # unlink the committed insert chains
        scanner = TableScanner(db.txn_manager, info.table)
        list(scanner.batches())
        assert scanner.rows_patched == 0  # no chains left
        writer = db.txn_manager.begin()
        for slot in slots[:7]:
            info.table.update(writer, slot, {1: 0.5})
        scanner = TableScanner(db.txn_manager, info.table)
        list(scanner.batches())
        db.txn_manager.abort(writer)
        assert scanner.rows_patched == 7


class TestSnapshotConsistency:
    def test_single_snapshot_across_blocks(self):
        """All hot blocks of one scan share one snapshot (one txn)."""
        db, info, slots = build(rows=400, nulls=False)
        assert len(info.table.blocks) > 1
        scanner = TableScanner(db.txn_manager, info.table, column_ids=[0, 1])
        it = scanner.batches()
        first = next(it)
        with db.transaction() as txn:
            for slot in slots:
                info.table.update(txn, slot, {1: -100.0})
        rest = list(it)
        for batch in [first, *rest]:
            assert not (batch.column(1) == -100.0).any()

    def test_caller_txn_pins_snapshot_and_survives(self):
        db, info, slots = build(rows=50, nulls=False)
        txn = db.txn_manager.begin()
        scanner = TableScanner(db.txn_manager, info.table, txn=txn)
        before = sum(b.num_rows for b in scanner.batches())
        with db.transaction() as w:
            info.table.insert(w, {0: 50, 1: 1.0, 2: "late"})
        scanner = TableScanner(db.txn_manager, info.table, txn=txn)
        after = sum(b.num_rows for b in scanner.batches())
        assert before == after == 50  # pinned snapshot; txn not committed
        db.txn_manager.commit(txn)


class TestSelectionVectors:
    def test_inclusive_bounds_are_exact(self):
        db, info, _ = build(rows=100, nulls=False)
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0], range_filters={0: (10, 19)}
        )
        batches = list(scanner.batches())
        selected = np.concatenate([b.gather(0) for b in batches])
        assert sorted(selected.tolist()) == list(range(10, 20))

    def test_nulls_excluded_from_selection(self):
        db, info, _ = build(rows=100, nulls=True)
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[1],
            range_filters={1: (None, 1e9)},
        )
        for batch in scanner.batches():
            mask = batch.selection_mask()
            nulls = batch.null_masks.get(1)
            assert mask is not None
            if nulls is not None:
                assert not (mask & nulls).any()

    def test_contradictory_bounds_select_nothing(self):
        db, info, _ = build(rows=60, nulls=False)
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0], range_filters={0: (30, 10)}
        )
        assert sum(b.selected_count for b in scanner.batches()) == 0

    def test_aggregate_consumes_selection(self):
        db, info, _ = build(rows=100, nulls=False)
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[0, 1],
            range_filters={0: (0, 9)},
        )
        result = aggregate(scanner, value_column=1)
        assert result.count == 10
        assert result.total == float(sum(range(10)))

    def test_selection_on_unprojected_filter_column_skipped(self):
        """A filter on a column outside the projection must not select."""
        db, info, _ = build(rows=40, nulls=False)
        scanner = TableScanner(
            db.txn_manager, info.table, column_ids=[1], range_filters={0: (0, 3)}
        )
        for batch in scanner.batches():
            # Conservative: all rows selected, caller re-applies.
            assert batch.selected_count == batch.num_rows


class TestFilterMasks:
    def test_null_distinct_from_false(self):
        db, info, _ = build(rows=70, nulls=True)
        scanner = TableScanner(db.txn_manager, info.table, column_ids=[1])
        for batch in scanner.batches():
            mask, nulls = filter_masks(batch, 1, lambda col: col >= 0)
            # Every row is >= 0 or NULL; the two masks partition the batch.
            assert not (mask & nulls).any()
            assert (mask | nulls).all()
            expected_nulls = batch.null_masks.get(
                1, np.zeros(batch.num_rows, dtype=bool)
            )
            assert np.array_equal(nulls, expected_nulls)

    def test_varlen_masks(self):
        db, info, _ = build(rows=70, nulls=True)
        scanner = TableScanner(db.txn_manager, info.table, column_ids=[2])
        for batch in scanner.batches():
            mask, nulls = filter_masks(batch, 2, lambda v: v.startswith("note-"))
            values = batch.pylist(2)
            for i, v in enumerate(values):
                assert nulls[i] == (v is None)
                assert mask[i] == (v is not None and v.startswith("note-"))


class TestFrozenVarlenViews:
    def test_lazy_view_equivalent_to_rowwise(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = db.create_table(
            "f",
            [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13,
            watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(300):
                info.table.insert(txn, {0: i, 1: None if i % 9 == 0 else f"s-{i}"})
        db.freeze_table("f")
        scanner = TableScanner(db.txn_manager, info.table)
        rows = []
        for batch in scanner.batches():
            view = batch.column(1)
            if batch.from_frozen:
                assert isinstance(view, ArrowColumnView)
            rows.extend(zip(batch.pylist(0), batch.pylist(1)))
        assert rows == [
            (i, None if i % 9 == 0 else f"s-{i}") for i in range(300)
        ]


class TestExporterUsesVectorizedScan:
    def test_rows_match_storage(self):
        from repro.export.exporter import TableExporter

        db, info, slots = build(rows=120)
        churn(db, info, slots)
        exporter = TableExporter(db.txn_manager, info.table)
        rows = exporter._scan_rows()
        # Oracle: per-slot select under one txn.
        txn = db.txn_manager.begin()
        expected = []
        for slot in slots:
            row = info.table.select(txn, slot, [0, 1, 2])
            if row is not None:
                expected.append(tuple(row.to_dict()[c] for c in (0, 1, 2)))
        db.txn_manager.commit(txn)
        assert sorted(rows, key=lambda r: r[0]) == sorted(
            expected, key=lambda r: r[0]
        )
