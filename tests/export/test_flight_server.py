"""Tests for the Flight-style RPC service surface."""

import json

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.errors import SerializationError
from repro.export.flight_server import FlightClient, FlightServer, FlightTicket


@pytest.fixture
def served_db():
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "orders",
        [ColumnSpec("id", INT64), ColumnSpec("memo", UTF8)],
        block_size=1 << 13,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(1000):
            info.table.insert(txn, {0: i, 1: f"memo-{i}"})
    db.freeze_table("orders")
    db.create_table("empty", [ColumnSpec("x", INT64)])
    return db, info


class TestTickets:
    def test_roundtrip(self):
        ticket = FlightTicket("t", 2, 5)
        assert FlightTicket.decode(ticket.encode()) == ticket

    def test_bad_ticket(self):
        with pytest.raises(SerializationError):
            FlightTicket.decode(b"not json at all{{")
        with pytest.raises(SerializationError):
            FlightTicket.decode(json.dumps({"nope": 1}).encode())


class TestServer:
    def test_list_flights(self, served_db):
        db, info = served_db
        flights = {f.table: f for f in FlightServer(db).list_flights()}
        assert flights["orders"].total_rows == 1000
        assert flights["orders"].total_blocks == len(info.table.blocks)
        assert flights["empty"].total_rows == 0

    def test_endpoints_partition_blocks(self, served_db):
        db, info = served_db
        server = FlightServer(db, partition_blocks=1)
        [orders] = [f for f in server.list_flights() if f.table == "orders"]
        assert len(orders.endpoints) == len(info.table.blocks)
        covered = sum(e.block_count for e in orders.endpoints)
        assert covered == len(info.table.blocks)

    def test_get_schema(self, served_db):
        db, _ = served_db
        spec = json.loads(FlightServer(db).get_schema("orders"))
        assert [f["name"] for f in spec["fields"]] == ["id", "memo"]

    def test_do_get_full_table(self, served_db):
        db, _ = served_db
        server = FlightServer(db)
        from repro.arrowfmt import ipc

        table = ipc.read_table(server.do_get(FlightTicket("orders")))
        assert table.num_rows == 1000

    def test_do_get_block_range(self, served_db):
        db, info = served_db
        server = FlightServer(db)
        from repro.arrowfmt import ipc

        first = ipc.read_table(server.do_get(FlightTicket("orders", 0, 1)))
        assert 0 < first.num_rows < 1000

    def test_do_get_encoded_ticket(self, served_db):
        db, _ = served_db
        server = FlightServer(db)
        from repro.arrowfmt import ipc

        payload = server.do_get(FlightTicket("orders", 0, None).encode())
        assert ipc.read_table(payload).num_rows == 1000


class TestClient:
    def test_fetch_table_sharded(self, served_db):
        db, _ = served_db
        client = FlightClient(FlightServer(db, partition_blocks=1))
        table = client.fetch_table("orders")
        assert sorted(table.column_values("id")) == list(range(1000))

    def test_iter_batches(self, served_db):
        db, _ = served_db
        client = FlightClient(FlightServer(db))
        total = sum(batch.num_rows for batch in client.iter_batches("orders"))
        assert total == 1000

    def test_unknown_table(self, served_db):
        db, _ = served_db
        client = FlightClient(FlightServer(db))
        with pytest.raises(SerializationError):
            client.fetch_table("ghost")
        with pytest.raises(SerializationError):
            list(client.iter_batches("ghost"))

    def test_hot_blocks_served_transactionally(self, served_db):
        db, info = served_db
        # Reheat a block; the server must materialize it.
        frozen = [b for b in info.table.blocks if b.state.name == "FROZEN"]
        frozen[0].touch_hot()
        client = FlightClient(FlightServer(db))
        table = client.fetch_table("orders")
        assert table.num_rows == 1000
