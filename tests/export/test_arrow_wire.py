"""Tests for the Arrow-as-wire-protocol export path."""

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.export import TableExporter
from repro.export.arrow_wire import client_receive, export_arrow_wire


def build(rows=400, freeze=True):
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
        block_size=1 << 14,
        watch_cold=freeze,
    )
    with db.transaction() as txn:
        for i in range(rows):
            value = None if i % 13 == 0 else f"value-{i}-long-enough-to-spill"
            info.table.insert(txn, {0: i, 1: value})
    if freeze:
        db.freeze_table("t")
    return db, info


class TestArrowWire:
    def test_roundtrip(self):
        db, info = build()
        payload = export_arrow_wire(db.txn_manager, info.table)
        table = client_receive(payload)
        assert table.num_rows == 400
        assert table.column_values("id") == sorted(table.column_values("id"))

    def test_nulls_preserved(self):
        db, info = build(rows=30)
        table = client_receive(export_arrow_wire(db.txn_manager, info.table))
        assert table.column_values("s")[0] is None

    def test_insensitive_to_block_state(self):
        # By-value serialization happens whether blocks are frozen or hot.
        frozen_db, frozen_info = build()
        hot_db, hot_info = build(freeze=False)
        frozen_payload = export_arrow_wire(frozen_db.txn_manager, frozen_info.table)
        hot_payload = export_arrow_wire(hot_db.txn_manager, hot_info.table)
        assert (
            client_receive(frozen_payload).to_pydict()
            == client_receive(hot_payload).to_pydict()
        )

    def test_exporter_integration(self):
        db, info = build(rows=800)
        exporter = TableExporter(db.txn_manager, info.table)
        result = exporter.export("arrow-wire")
        assert result.rows == 800
        assert result.method == "arrow-wire"

    def test_paper_claim_native_storage_beats_wire_conversion(self):
        # Section 6.3's closing point: Arrow as a drop-in wire protocol does
        # not achieve the potential of Arrow-native storage.  Best-of-3 per
        # method: single timings can catch a scheduling hiccup under load.
        db, info = build(rows=4000)
        exporter = TableExporter(db.txn_manager, info.table)
        wire = min(
            (exporter.export("arrow-wire") for _ in range(3)),
            key=lambda r: r.serialization_seconds,
        )
        native = min(
            (exporter.export("flight") for _ in range(3)),
            key=lambda r: r.serialization_seconds,
        )
        assert native.serialization_seconds < wire.serialization_seconds
        assert native.throughput_mb_per_sec > wire.throughput_mb_per_sec
