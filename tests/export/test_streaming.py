"""Tests for pipelined RDMA export with partial-availability messages."""

import time

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.export.network import NetworkProfile
from repro.export.streaming import (
    AVAILABILITY_MESSAGE_BYTES,
    pipelined_rdma_export,
    stream_blocks,
)


def build(rows=900, freeze=True):
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
        block_size=1 << 13,
        watch_cold=freeze,
    )
    with db.transaction() as txn:
        for i in range(rows):
            info.table.insert(txn, {0: i, 1: f"value-{i}"})
    if freeze:
        db.freeze_table("t")
    return db, info


class TestStreamBlocks:
    def test_covers_all_rows(self):
        db, info = build()
        total = sum(batch.num_rows for batch in stream_blocks(db.txn_manager, info.table))
        assert total == 900

    def test_mixed_temperatures(self):
        db, info = build()
        info.table.blocks[0].touch_hot()
        total = sum(batch.num_rows for batch in stream_blocks(db.txn_manager, info.table))
        assert total == 900


class TestPipelinedExport:
    def test_all_chunks_delivered_in_order(self):
        db, info = build()
        seen = []
        result = pipelined_rdma_export(
            db.txn_manager, info.table, client_work=lambda b: seen.append(b.num_rows)
        )
        assert result.total_rows == 900
        assert [c.index for c in result.chunks] == list(range(len(result.chunks)))
        assert sum(seen) == 900

    def test_availability_monotone(self):
        db, info = build()
        result = pipelined_rdma_export(db.txn_manager, info.table, lambda b: None)
        availability = [c.available_at for c in result.chunks]
        assert availability == sorted(availability)
        assert result.transfer_done_at == pytest.approx(availability[-1])

    def test_pipelining_overlaps_work_and_wire(self):
        db, info = build(rows=1800)

        def slow_client(batch):
            time.sleep(0.002)

        # A slow link makes transfers comparable to client work.
        slow_link = NetworkProfile("slow", 5e6, 1e-4)
        result = pipelined_rdma_export(
            db.txn_manager, info.table, slow_client, profile=slow_link
        )
        assert result.client_done_at < result.unpipelined_seconds
        assert result.pipelining_speedup > 1.0

    def test_client_never_reads_before_available(self):
        db, info = build()
        result = pipelined_rdma_export(db.txn_manager, info.table, lambda b: None)
        clock = 0.0
        for chunk in result.chunks:
            clock = max(clock, chunk.available_at)
        assert result.client_done_at >= result.chunks[-1].available_at

    def test_availability_message_charged(self):
        db, info = build(rows=300)
        result = pipelined_rdma_export(db.txn_manager, info.table, lambda b: None)
        # Each chunk's transfer includes the notification's wire time.
        link = NetworkProfile.RDMA_10_GBE
        for chunk in result.chunks:
            floor = (
                (chunk.nbytes + AVAILABILITY_MESSAGE_BYTES)
                / link.bandwidth_bytes_per_sec
                + 2 * link.latency_sec_per_message
            )
            assert chunk.transfer_seconds == pytest.approx(floor)

    def test_empty_table(self):
        db = Database(logging_enabled=False)
        info = db.create_table("e", [ColumnSpec("x", INT64)])
        result = pipelined_rdma_export(db.txn_manager, info.table, lambda b: None)
        assert result.total_rows == 0
        assert result.pipelining_speedup == 1.0


class TestMetrics:
    def test_metrics_snapshot_keys(self):
        db, info = build(rows=900)  # several blocks so some can freeze
        with db.transaction() as txn:
            info.table.insert(txn, {0: 1000, 1: "x"})
        metrics = db.metrics()
        assert metrics["tables"] == 1
        assert metrics["live_tuples"] == 901
        assert metrics["blocks_live"] >= 1
        assert metrics["transform_blocks_frozen"] >= 1
        assert metrics["wal_bytes_written"] == 0  # logging disabled
        assert set(metrics["block_states"]) == {"HOT", "COOLING", "FREEZING", "FROZEN"}

    def test_metrics_reflect_gc(self):
        db, info = build(rows=50, freeze=False)
        db.quiesce()
        metrics = db.metrics()
        assert metrics["gc_passes"] >= 1
        assert metrics["txns_pending_gc"] == 0
