"""Tests for the export protocols and the unified exporter."""

import pytest

from repro import Database, ColumnSpec, FLOAT64, INT64, UTF8
from repro.export import NetworkProfile, SimulatedNetwork, TableExporter
from repro.export import postgres_wire, vectorized
from repro.export.flight import client_receive, export_stream
from repro.export.rdma import CACHE_BYPASS_PENALTY, export_rdma
from repro.errors import SerializationError
from repro.storage.constants import BlockState


def build_db(rows=500, freeze=True, block_size=1 << 14):
    db = Database(cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("name", UTF8), ColumnSpec("x", FLOAT64)],
        block_size=block_size,
        watch_cold=freeze,
    )
    with db.transaction() as txn:
        for i in range(rows):
            name = None if i % 17 == 0 else f"name-{i}-padded-for-out-of-line"
            info.table.insert(txn, {0: i, 1: name, 2: i / 4})
    if freeze:
        db.freeze_table("t")
    return db, info


class TestNetworkModel:
    def test_transfer_time_formula(self):
        net = SimulatedNetwork(NetworkProfile("test", 1e6, 0.001))
        assert net.transmit(1_000_000, 2) == pytest.approx(1.0 + 0.002)
        assert net.bytes_sent == 1_000_000
        assert net.messages_sent == 2

    def test_negative_rejected(self):
        net = SimulatedNetwork()
        with pytest.raises(SerializationError):
            net.transmit(-1)

    def test_rdma_profile_lower_latency(self):
        assert (
            NetworkProfile.RDMA_10_GBE.latency_sec_per_message
            < NetworkProfile.TEN_GBE.latency_sec_per_message
        )


class TestPostgresWire:
    def test_roundtrip(self):
        rows = [(1, "hello", 2.5), (2, None, -1.0)]
        raw, count = postgres_wire.encode_rows(rows)
        assert count == 2
        decoded = postgres_wire.decode_rows(raw)
        assert decoded[0] == ("1", "hello", "2.5")
        assert decoded[1][1] is None

    def test_corrupt_stream_detected(self):
        with pytest.raises(SerializationError):
            postgres_wire.decode_rows(b"Xgarbage")

    def test_one_message_per_row(self):
        raw, count = postgres_wire.encode_rows([(i,) for i in range(10)])
        assert count == 10


class TestVectorized:
    def test_roundtrip_mixed_types(self):
        columns = [
            [1, 2, None],
            ["a", None, "ccc"],
            [1.5, 2.5, 3.5],
        ]
        raw, batches = vectorized.encode_table(columns, batch_rows=2)
        assert batches == 2
        decoded = vectorized.decode_table(raw)
        assert decoded == columns

    def test_empty_column_list_rejected(self):
        with pytest.raises(SerializationError):
            vectorized.encode_table([])

    def test_ragged_batch_rejected(self):
        with pytest.raises(SerializationError):
            vectorized.encode_batch([[1, 2], [1]])

    def test_batching_counts(self):
        columns = [[i for i in range(100)]]
        _, batches = vectorized.encode_table(columns, batch_rows=30)
        assert batches == 4


class TestFlight:
    def test_zero_copy_roundtrip_frozen(self):
        db, info = build_db(rows=800)
        stream = export_stream(db.txn_manager, info.table)
        assert stream.frozen_blocks >= 1
        table = client_receive(stream.payload)
        reader = db.begin()
        expected = sorted(r.get(0) for _, r in info.table.scan(reader))
        assert sorted(table.column_values("id")) == expected

    def test_hot_blocks_materialized(self):
        db, info = build_db(rows=300, freeze=False)
        stream = export_stream(db.txn_manager, info.table)
        assert stream.frozen_blocks == 0
        assert stream.materialized_blocks >= 1
        table = client_receive(stream.payload)
        assert table.num_rows == 300

    def test_nulls_preserved(self):
        db, info = build_db(rows=100)
        table = client_receive(export_stream(db.txn_manager, info.table).payload)
        names = table.column_values("name")
        assert names[0] is None  # i % 17 == 0

    def test_uncommitted_rows_not_exported(self):
        db, info = build_db(rows=50, freeze=False)
        pending = db.begin()
        info.table.insert(pending, {0: 999, 1: "pending", 2: 0.0})
        table = client_receive(export_stream(db.txn_manager, info.table).payload)
        assert 999 not in table.column_values("id")


class TestRdma:
    def test_frozen_blocks_are_pure_bandwidth(self):
        db, info = build_db(rows=800)
        # A fully frozen prefix: all blocks but the insertion head.
        transfer = export_rdma(db.txn_manager, info.table)
        assert transfer.frozen_blocks >= 1
        assert transfer.frozen_bytes > 0

    def test_hot_blocks_penalized(self):
        db, info = build_db(rows=300, freeze=False)
        transfer = export_rdma(db.txn_manager, info.table)
        assert transfer.materialized_blocks >= 1
        assert transfer.effective_bytes == pytest.approx(
            transfer.frozen_bytes + transfer.materialized_bytes * CACHE_BYPASS_PENALTY
        )


class TestTableExporter:
    def test_all_methods_agree_on_rows(self):
        db, info = build_db(rows=400)
        exporter = TableExporter(db.txn_manager, info.table)
        pg = exporter.export("postgres")
        vec = exporter.export("vectorized")
        fl = exporter.export("flight")
        assert pg.rows == vec.rows == fl.rows == 400

    def test_paper_ordering_when_frozen(self):
        # Figure 15 at high %frozen: flight and rdma beat the wire formats.
        db, info = build_db(rows=2000)
        exporter = TableExporter(db.txn_manager, info.table)
        results = {m: exporter.export(m) for m in ["postgres", "vectorized", "flight", "rdma"]}
        assert (
            results["postgres"].throughput_mb_per_sec
            < results["vectorized"].throughput_mb_per_sec
            < results["flight"].throughput_mb_per_sec
        )
        assert results["rdma"].throughput_mb_per_sec > results["vectorized"].throughput_mb_per_sec

    def test_unknown_method_rejected(self):
        db, info = build_db(rows=10, freeze=False)
        exporter = TableExporter(db.txn_manager, info.table)
        with pytest.raises(SerializationError):
            exporter.export("carrier-pigeon")

    def test_result_accounting(self):
        db, info = build_db(rows=100)
        result = TableExporter(db.txn_manager, info.table).export("vectorized")
        assert result.total_seconds == pytest.approx(
            result.serialization_seconds + result.wire_seconds + result.client_seconds
        )
        assert result.payload_bytes > 0
        assert result.throughput_mb_per_sec > 0
