"""Tests for server-side RDMA: leases, directory, writer waits."""

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.errors import StorageError
from repro.export.server_rdma import (
    LeaseManager,
    RdmaDirectory,
    guarded_touch_hot,
)
from repro.storage.constants import BlockState


class FakeClock:
    """An injectable clock tests advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def frozen_db():
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
        block_size=1 << 13, watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(900):
            info.table.insert(txn, {0: i, 1: f"v-{i}"})
    db.freeze_table("t")
    return db, info


class TestLeases:
    def test_grant_requires_frozen(self, frozen_db):
        db, info = frozen_db
        hot = next(b for b in info.table.blocks if b.state is BlockState.HOT)
        leases = LeaseManager()
        with pytest.raises(StorageError):
            leases.grant(hot)

    def test_grant_and_expiry(self, frozen_db):
        db, info = frozen_db
        clock = FakeClock()
        leases = LeaseManager(lease_seconds=1.0, clock=clock)
        frozen = next(b for b in info.table.blocks if b.state is BlockState.FROZEN)
        lease = leases.grant(frozen)
        assert lease.expires_at == 1.0
        assert leases.lease_remaining(frozen.block_id) == pytest.approx(1.0)
        clock.advance(1.5)
        assert leases.lease_remaining(frozen.block_id) < 0

    def test_regrant_extends(self, frozen_db):
        db, info = frozen_db
        clock = FakeClock()
        leases = LeaseManager(lease_seconds=1.0, clock=clock)
        frozen = next(b for b in info.table.blocks if b.state is BlockState.FROZEN)
        leases.grant(frozen)
        clock.advance(0.5)
        leases.grant(frozen)
        assert leases.lease_remaining(frozen.block_id) == pytest.approx(1.0)

    def test_writer_wait_counted(self, frozen_db):
        db, info = frozen_db
        leases = LeaseManager(lease_seconds=0.02)  # real clock, short lease
        frozen = next(b for b in info.table.blocks if b.state is BlockState.FROZEN)
        leases.grant(frozen)
        guarded_touch_hot(frozen, leases)
        assert frozen.state is BlockState.HOT
        assert leases.writer_waits == 1

    def test_unleased_block_reheats_immediately(self, frozen_db):
        db, info = frozen_db
        leases = LeaseManager(lease_seconds=10.0)
        frozen = next(b for b in info.table.blocks if b.state is BlockState.FROZEN)
        waited = guarded_touch_hot(frozen, leases)
        assert waited == 0.0
        assert leases.writer_waits == 0


class TestDirectory:
    def test_describe_advertises_frozen_only(self, frozen_db):
        db, info = frozen_db
        leases = LeaseManager(lease_seconds=5.0)
        directory = RdmaDirectory(info.table, leases)
        grants = directory.describe()
        frozen_count = sum(
            1 for b in info.table.blocks if b.state is BlockState.FROZEN
        )
        assert len(grants) == frozen_count >= 1
        assert all(g.nbytes > 0 for g in grants)

    def test_read_under_lease(self, frozen_db):
        db, info = frozen_db
        leases = LeaseManager(lease_seconds=5.0)
        directory = RdmaDirectory(info.table, leases)
        grants = directory.describe()
        total = sum(directory.read_block(g.block_id).num_rows for g in grants)
        live_in_frozen = sum(
            b.allocation_bitmap.count_set()
            for b in info.table.blocks
            if b.state is BlockState.FROZEN
        )
        assert total == live_in_frozen

    def test_expired_lease_refused(self, frozen_db):
        db, info = frozen_db
        clock = FakeClock()
        leases = LeaseManager(lease_seconds=1.0, clock=clock)
        directory = RdmaDirectory(info.table, leases)
        [first, *_] = directory.describe()
        clock.advance(2.0)
        with pytest.raises(StorageError):
            directory.read_block(first.block_id)

    def test_unleased_block_refused(self, frozen_db):
        db, info = frozen_db
        directory = RdmaDirectory(info.table, LeaseManager())
        frozen = next(b for b in info.table.blocks if b.state is BlockState.FROZEN)
        with pytest.raises(StorageError):
            directory.read_block(frozen.block_id)

    def test_write_after_lease_expiry_is_safe(self, frozen_db):
        # The full protocol: lease -> expiry -> reheat -> stale reader refused.
        db, info = frozen_db
        leases = LeaseManager(lease_seconds=0.01)
        directory = RdmaDirectory(info.table, leases)
        grants = directory.describe()
        target = grants[0].block_id
        block = info.table._block(target)
        guarded_touch_hot(block, leases)  # waits out the lease
        assert block.state is BlockState.HOT
        with pytest.raises(StorageError):
            directory.read_block(target)
