"""Tests for incremental export, background threads, and Query.explain."""

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.export.flight import client_receive, incremental_export
from repro.query import Query
from repro.storage.tuple_slot import TupleSlot


def build(rows=900):
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
        block_size=1 << 13,
        watch_cold=True,
    )
    with db.transaction() as txn:
        slots = [info.table.insert(txn, {0: i, 1: f"v-{i}"}) for i in range(rows)]
    db.freeze_table("t")
    return db, info, slots


class TestIncrementalExport:
    def test_first_export_ships_everything(self):
        db, info, _ = build()
        stream = incremental_export(db.txn_manager, info.table, since=0)
        table = client_receive(stream.payload)
        assert table.num_rows == 900
        assert stream.blocks_skipped == 0

    def test_second_export_skips_unchanged_frozen_blocks(self):
        db, info, _ = build()
        first = incremental_export(db.txn_manager, info.table, since=0)
        second = incremental_export(db.txn_manager, info.table, since=first.cursor)
        assert second.frozen_blocks_shipped == 0
        assert second.blocks_skipped >= 2
        # Hot blocks (the insertion block) still ship every time.
        table = client_receive(second.payload)
        assert table.num_rows < 900

    def test_changed_blocks_reship_after_refreeze(self):
        db, info, slots = build()
        first = incremental_export(db.txn_manager, info.table, since=0)
        # Modify one tuple (reheats its block), then re-freeze.
        with db.transaction() as txn:
            info.table.update(txn, slots[0], {1: "changed"})
        db.freeze_table("t")
        second = incremental_export(db.txn_manager, info.table, since=first.cursor)
        assert second.frozen_blocks_shipped >= 1
        table = client_receive(second.payload)
        assert "changed" in table.column_values("s")

    def test_cumulative_deltas_reconstruct_state(self):
        db, info, slots = build(rows=600)
        state: dict[int, str] = {}

        def apply(stream):
            table = client_receive(stream.payload)
            for row_id, value in zip(
                table.column_values("id"), table.column_values("s")
            ):
                state[row_id] = value

        first = incremental_export(db.txn_manager, info.table, since=0)
        apply(first)
        with db.transaction() as txn:
            info.table.update(txn, slots[5], {1: "amended"})
            info.table.insert(txn, {0: 6000, 1: "new row"})
        db.freeze_table("t")
        second = incremental_export(db.txn_manager, info.table, since=first.cursor)
        apply(second)
        reader = db.begin()
        engine = {
            row.get(0): row.get(1) for _, row in info.table.scan(reader)
        }
        db.commit(reader)
        assert state == engine


class TestBackgroundThreads:
    def test_background_maintenance_freezes_blocks(self):
        db = Database(cold_threshold_epochs=1)
        info = db.create_table(
            "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13, watch_cold=True,
        )
        db.start_background(gc_interval=0.002, transform_interval=0.004)
        try:
            with db.transaction() as txn:
                for i in range(900):
                    info.table.insert(txn, {0: i, 1: "v"})
            import time

            deadline = time.monotonic() + 5.0
            from repro.storage.constants import BlockState

            while time.monotonic() < deadline:
                if info.table.block_states()[BlockState.FROZEN] >= 2:
                    break
                time.sleep(0.01)
        finally:
            db.stop_background()
        from repro.storage.constants import BlockState

        assert info.table.block_states()[BlockState.FROZEN] >= 2

    def test_start_stop_idempotent(self):
        db = Database()
        db.start_background()
        db.start_background()  # no-op
        db.stop_background()
        db.stop_background()  # no-op

    def test_writes_remain_correct_under_background_maintenance(self):
        # Tuples are reached through the index because background
        # compaction moves them between slots while we write.
        import random

        db = Database(cold_threshold_epochs=1)
        info = db.create_table(
            "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 12, watch_cold=True,
        )
        index = db.create_index("t", "pk", ["id"])
        db.start_background(gc_interval=0.001, transform_interval=0.002)
        rng = random.Random(2)
        expected: dict[int, str] = {}
        try:
            for step in range(400):
                key = rng.randrange(120)

                def body(txn, key=key):
                    hits = index.lookup(txn, (key,))
                    if not hits:
                        info.table.insert(txn, {0: key, 1: f"v{key}"})
                        return f"v{key}"
                    slot, _ = hits[0]
                    value = f"u{key}-{rng.randint(0, 9)}"
                    if not info.table.update(txn, slot, {1: value}):
                        from repro.errors import TransactionAborted

                        raise TransactionAborted("retry")
                    return value

                expected[key] = db.run_transaction(body, retries=8)
        finally:
            db.stop_background()
        reader = db.begin()
        state = {row.get(0): row.get(1) for _, row in info.table.scan(reader)}
        db.commit(reader)
        assert state == expected


class TestExplain:
    def test_explain_reports_pruning_and_fast_path(self):
        db, info, _ = build(rows=1200)
        plan = Query(db, "t").where_between("id", 0, 50).explain()
        assert plan["blocks_pruned"] >= 1
        assert plan["blocks_in_place"] >= 1
        assert plan["rows_matched"] == 51
        assert plan["rows_examined"] < 1200
        assert 0 in plan["range_filters"]

    def test_explain_unfiltered(self):
        db, info, _ = build(rows=300)
        plan = Query(db, "t").explain()
        assert plan["rows_matched"] == plan["rows_examined"] == 300
        assert plan["blocks_pruned"] == 0
