"""Tests for the parallel garbage collector (Section 4.4)."""

import pytest

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.gc_engine.parallel import ParallelGarbageCollector
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.txn.manager import TransactionManager

LONG = "an out-of-line value well over twelve bytes long"


@pytest.fixture
def env():
    layout = BlockLayout(
        [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)], block_size=1 << 14
    )
    tm = TransactionManager()
    table = DataTable(BlockStore(), layout, "t")
    return tm, table


def churn(tm, table, tuples=50, updates=3):
    txn = tm.begin()
    slots = [table.insert(txn, {0: i, 1: LONG}) for i in range(tuples)]
    tm.commit(txn)
    for round_no in range(updates):
        txn = tm.begin()
        for slot in slots:
            table.update(txn, slot, {0: round_no, 1: LONG + str(round_no)})
        tm.commit(txn)
    return slots


class TestParallelGc:
    def test_validates_thread_count(self, env):
        tm, _ = env
        with pytest.raises(ValueError):
            ParallelGarbageCollector(tm, num_threads=0)

    def test_prunes_all_chains(self, env):
        tm, table = env
        slots = churn(tm, table)
        gc = ParallelGarbageCollector(tm, num_threads=4)
        for _ in range(6):
            gc.run()
        assert all(
            table.blocks[0].version_ptrs[s.offset] is None for s in slots
        )

    def test_counts_match_serial_semantics(self, env):
        tm, table = env
        churn(tm, table, tuples=30, updates=2)
        gc = ParallelGarbageCollector(tm, num_threads=3)
        total = 0
        for _ in range(6):
            total += gc.run()
        # 30 inserts + 2*30 updates; backed-off records are handled via the
        # deferred queue and do not show in the unlink count.
        assert total + gc.backoffs >= 90 - gc.backoffs

    def test_varlen_frees_happen_exactly_once(self, env):
        tm, table = env
        churn(tm, table, tuples=40, updates=4)
        gc = ParallelGarbageCollector(tm, num_threads=4)
        for _ in range(8):
            gc.run()  # any double-free raises StorageError inside workers
        heap = table.blocks[0].varlen_heaps[1]
        # Only the live values remain.
        assert len(heap) == 40

    def test_empty_pass(self, env):
        tm, _ = env
        gc = ParallelGarbageCollector(tm, num_threads=2)
        assert gc.run() == 0
        assert gc.stats.passes == 1

    def test_observer_still_driven(self, env):
        tm, table = env
        events = []

        class Observer:
            def observe_modification(self, block, epoch):
                events.append(("mod", block.block_id, epoch))

            def on_gc_pass(self, epoch):
                events.append(("pass", epoch))

        churn(tm, table, tuples=5, updates=1)
        gc = ParallelGarbageCollector(tm, access_observer=Observer(), num_threads=2)
        gc.run()
        assert ("pass", 1) in events
        assert any(kind == "mod" for kind, *_ in events)

    def test_reads_correct_under_concurrent_gc(self, env):
        import threading

        tm, table = env
        slots = churn(tm, table, tuples=30, updates=2)
        gc = ParallelGarbageCollector(tm, num_threads=4)
        errors = []

        def reader_thread():
            try:
                for _ in range(20):
                    txn = tm.begin()
                    for slot in slots:
                        row = table.select(txn, slot)
                        assert row is not None
                    tm.commit(txn)
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=reader_thread) for _ in range(3)]
        for t in threads:
            t.start()
        for _ in range(6):
            gc.run()
        for t in threads:
            t.join()
        assert not errors
