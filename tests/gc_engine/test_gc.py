"""Tests for the two-phase garbage collector and epoch protection."""

import pytest

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.gc_engine.collector import GarbageCollector
from repro.gc_engine.epoch import DeferredActionQueue
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.txn.manager import TransactionManager


@pytest.fixture
def tm():
    return TransactionManager()


@pytest.fixture
def table():
    layout = BlockLayout([ColumnSpec("id", INT64), ColumnSpec("s", UTF8)])
    return DataTable(BlockStore(), layout, "t")


LONG = "a long out-of-line value well over twelve bytes"
LONGER = "another long out-of-line value, even longer than the first"


class TestDeferredActionQueue:
    def test_runs_strictly_before_horizon(self):
        queue = DeferredActionQueue()
        fired = []
        queue.register(5, lambda: fired.append(5))
        queue.register(10, lambda: fired.append(10))
        queue.process(6)
        assert fired == [5]
        queue.process(11)
        assert fired == [5, 10]

    def test_equal_timestamp_not_run(self):
        queue = DeferredActionQueue()
        fired = []
        queue.register(5, lambda: fired.append(5))
        queue.process(5)
        assert fired == []

    def test_order_within_timestamp_is_fifo(self):
        queue = DeferredActionQueue()
        fired = []
        queue.register(1, lambda: fired.append("a"))
        queue.register(1, lambda: fired.append("b"))
        queue.process(2)
        assert fired == ["a", "b"]

    def test_len_counts_pending(self):
        queue = DeferredActionQueue()
        queue.register(1, lambda: None)
        assert len(queue) == 1
        queue.process(2)
        assert len(queue) == 0


class TestChainPruning:
    def test_prunes_invisible_versions(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x"})
        tm.commit(txn)
        for i in range(3):
            txn = tm.begin()
            table.update(txn, slot, {0: i})
            tm.commit(txn)
        gc = GarbageCollector(tm)
        gc.run()
        block = table.blocks[0]
        assert block.version_ptrs[slot.offset] is None
        assert gc.stats.records_unlinked == 4

    def test_does_not_prune_versions_needed_by_active_txn(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "old"})
        tm.commit(txn)
        reader = tm.begin()
        writer = tm.begin()
        table.update(writer, slot, {1: "new"})
        tm.commit(writer)
        gc = GarbageCollector(tm)
        gc.run()
        # The reader still needs the before-image of the update.
        assert table.select(reader, slot).get(1) == "old"
        tm.commit(reader)
        gc.run_until_quiet()
        assert table.blocks[0].version_ptrs[slot.offset] is None

    def test_aborted_records_pruned(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x"})
        tm.commit(txn)
        loser = tm.begin()
        table.update(loser, slot, {0: 9})
        tm.abort(loser)
        gc = GarbageCollector(tm)
        gc.run_until_quiet()
        assert table.blocks[0].version_ptrs[slot.offset] is None

    def test_stats_accumulate(self, tm, table):
        for i in range(3):
            txn = tm.begin()
            table.insert(txn, {0: i, 1: "v"})
            tm.commit(txn)
        gc = GarbageCollector(tm)
        gc.run()
        assert gc.stats.transactions_processed == 3
        assert gc.stats.passes == 1


class TestVarlenReclamation:
    def test_committed_update_frees_old_value_one_epoch_later(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: LONG})
        tm.commit(txn)
        block = table.blocks[0]
        heap = block.varlen_heaps[1]
        assert len(heap) == 1
        txn = tm.begin()
        table.update(txn, slot, {1: LONGER})
        tm.commit(txn)
        assert len(heap) == 2  # old value still referenced by the undo chain
        gc = GarbageCollector(tm)
        gc.run()  # unlink pass registers the deferred free
        gc.run()  # next pass executes it (horizon has advanced)
        assert len(heap) == 1
        assert heap.bytes_used == len(LONGER.encode())

    def test_aborted_update_frees_loser_value_immediately(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: LONG})
        tm.commit(txn)
        heap = table.blocks[0].varlen_heaps[1]
        loser = tm.begin()
        table.update(loser, slot, {1: LONGER})
        assert len(heap) == 2
        tm.abort(loser)
        assert len(heap) == 1
        # And GC must not double-free the survivor.
        gc = GarbageCollector(tm)
        gc.run_until_quiet()
        assert len(heap) == 1

    def test_inline_values_never_touch_heap(self, tm, table):
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "short"})
        tm.commit(txn)
        txn = tm.begin()
        table.update(txn, slot, {1: "tiny"})
        tm.commit(txn)
        gc = GarbageCollector(tm)
        gc.run_until_quiet()
        assert len(table.blocks[0].varlen_heaps[1]) == 0


class TestAccessObservation:
    def test_observer_sees_modified_blocks(self, tm, table):
        observations = []

        class Observer:
            def observe_modification(self, block, epoch):
                observations.append((block.block_id, epoch))

            def on_gc_pass(self, epoch):
                observations.append(("pass", epoch))

        txn = tm.begin()
        table.insert(txn, {0: 1, 1: "x"})
        tm.commit(txn)
        gc = GarbageCollector(tm, access_observer=Observer())
        gc.run()
        block_id = table.blocks[0].block_id
        assert (block_id, 1) in observations
        assert ("pass", 1) in observations
        assert table.blocks[0].last_modified_epoch == 1
