"""Tests for the IPC stream serialization."""

import pytest

from repro.arrowfmt.builder import DictionaryBuilder, array_from_pylist
from repro.arrowfmt.datatypes import (
    BOOL,
    DictionaryType,
    Field,
    FLOAT64,
    INT32,
    INT64,
    Schema,
    UTF8,
)
from repro.arrowfmt.ipc import MAGIC, read_table, write_table
from repro.arrowfmt.table import RecordBatch, Table
from repro.errors import ArrowFormatError


def roundtrip(table):
    return read_table(write_table(table))


class TestIpcRoundtrip:
    def test_mixed_types(self):
        schema = Schema(
            [
                Field("id", INT64, False),
                Field("price", FLOAT64),
                Field("name", UTF8),
                Field("active", BOOL),
            ]
        )
        batch = RecordBatch(
            schema,
            [
                array_from_pylist([1, 2, 3], INT64),
                array_from_pylist([1.5, None, 3.25], FLOAT64),
                array_from_pylist(["a", "bb", None], UTF8),
                array_from_pylist([True, False, None], BOOL),
            ],
        )
        table = Table(schema, [batch])
        back = roundtrip(table)
        assert back.to_pydict() == table.to_pydict()
        assert back.schema == schema

    def test_multiple_batches(self):
        schema = Schema([Field("x", INT64)])
        batches = [
            RecordBatch(schema, [array_from_pylist(list(range(i, i + 4)), INT64)])
            for i in range(0, 12, 4)
        ]
        back = roundtrip(Table(schema, batches))
        assert len(back.batches) == 3
        assert back.column_values("x") == list(range(12))

    def test_empty_table(self):
        schema = Schema([Field("x", INT64)])
        back = roundtrip(Table(schema))
        assert back.num_rows == 0
        assert back.schema == schema

    def test_dictionary_column(self):
        dtype = DictionaryType(INT32, UTF8)
        schema = Schema([Field("city", dtype)])
        codes = DictionaryBuilder(UTF8).extend(["nyc", "sf", None, "nyc"]).finish()
        back = roundtrip(Table(schema, [RecordBatch(schema, [codes])]))
        assert back.column_values("city") == ["nyc", "sf", None, "nyc"]

    def test_preserves_metadata(self):
        schema = Schema([Field("x", INT64)], metadata={"origin": "block-7"})
        back = roundtrip(Table(schema))
        assert dict(back.schema.metadata) == {"origin": "block-7"}


class TestIpcErrors:
    def test_bad_magic(self):
        with pytest.raises(ArrowFormatError):
            read_table(b"NOTMAGIC" + b"\x00" * 32)

    def test_truncated_stream(self):
        schema = Schema([Field("x", INT64)])
        table = Table(schema, [RecordBatch(schema, [array_from_pylist([1], INT64)])])
        raw = write_table(table)
        with pytest.raises(ArrowFormatError):
            read_table(raw[: len(raw) // 2])

    def test_magic_prefix_present(self):
        schema = Schema([Field("x", INT64)])
        raw = write_table(Table(schema))
        assert raw.startswith(MAGIC)

    def test_garbage_after_header(self):
        schema = Schema([Field("x", INT64)])
        raw = write_table(Table(schema))
        # Replace the end marker with junk.
        corrupted = raw[:-4] + b"JUNK"
        with pytest.raises(ArrowFormatError):
            read_table(corrupted)
