"""Tests for the Arrow structural validator — including over live exports."""

import numpy as np
import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.arrowfmt.array import FixedSizeArray, VarBinaryArray
from repro.arrowfmt.buffer import Buffer
from repro.arrowfmt.builder import DictionaryBuilder, array_from_pylist
from repro.arrowfmt.datatypes import Field, INT64 as AF_INT64, Schema, UTF8 as AF_UTF8
from repro.arrowfmt.table import RecordBatch, Table
from repro.arrowfmt.validate import validate_array, validate_batch, validate_table
from repro.errors import ArrowFormatError


class TestValidateArray:
    def test_good_arrays_pass(self):
        validate_array(array_from_pylist([1, None, 3], AF_INT64))
        validate_array(array_from_pylist(["a", None, "ccc"], AF_UTF8))
        validate_array(DictionaryBuilder().extend(["x", "y", "x"]).finish())

    def test_sliced_array_passes(self):
        from repro.arrowfmt.array import slice_array

        validate_array(slice_array(array_from_pylist([1, 2, 3], AF_INT64), 1, 2))

    def test_corrupt_offsets_detected(self):
        array = array_from_pylist(["ab", "cd"], AF_UTF8)
        array.offsets_numpy()[1] = 100  # beyond values buffer
        with pytest.raises(ArrowFormatError):
            validate_array(array)

    def test_non_monotone_offsets_detected(self):
        array = array_from_pylist(["ab", "cd"], AF_UTF8)
        array.offsets_numpy()[1] = 4
        array.offsets_numpy()[2] = 2
        with pytest.raises(ArrowFormatError):
            validate_array(array)

    def test_out_of_range_dictionary_code_detected(self):
        array = DictionaryBuilder().extend(["x", "y"]).finish()
        array.codes.to_numpy()[0] = 99
        with pytest.raises(ArrowFormatError):
            validate_array(array)

    def test_short_values_buffer_detected(self):
        bad = FixedSizeArray.__new__(FixedSizeArray)
        bad.dtype = AF_INT64
        bad.length = 10
        bad.values = Buffer.allocate(8)
        bad.validity = None
        with pytest.raises(ArrowFormatError):
            validate_array(bad)


class TestValidateBatchAndTable:
    def test_good_batch(self):
        schema = Schema([Field("x", AF_INT64)])
        validate_batch(RecordBatch(schema, [array_from_pylist([1], AF_INT64)]))

    def test_exported_blocks_are_valid_arrow(self):
        # The real point: everything the engine exports must validate.
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = db.create_table(
            "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13, watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(900):
                value = None if i % 11 == 0 else f"value-{i}-long-enough-to-spill"
                info.table.insert(txn, {0: i, 1: value})
        db.freeze_table("t")
        from repro.export.flight import client_receive, export_stream

        table = client_receive(export_stream(db.txn_manager, info.table).payload)
        validate_table(table)

    def test_dictionary_export_valid(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1,
                      cold_format="dictionary")
        info = db.create_table(
            "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13, watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(700):
                info.table.insert(txn, {0: i, 1: f"repeated-{i % 4}"})
        db.freeze_table("t")
        from repro.transform.arrow_view import block_to_record_batch
        from repro.storage.constants import BlockState

        for block in info.table.blocks:
            if block.state is BlockState.FROZEN:
                validate_batch(block_to_record_batch(block))

    def test_in_place_views_of_frozen_blocks_validate(self):
        db = Database(logging_enabled=False, cold_threshold_epochs=1)
        info = db.create_table(
            "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
            block_size=1 << 13, watch_cold=True,
        )
        with db.transaction() as txn:
            for i in range(800):
                info.table.insert(txn, {0: i, 1: "v" * (i % 30)})
        db.freeze_table("t")
        from repro.storage.constants import BlockState
        from repro.transform.arrow_view import block_to_record_batch

        frozen = [b for b in info.table.blocks if b.state is BlockState.FROZEN]
        assert frozen
        for block in frozen:
            validate_batch(block_to_record_batch(block))
