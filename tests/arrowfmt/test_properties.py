"""Property-based tests for the Arrow format layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrowfmt.buffer import Bitmap
from repro.arrowfmt.builder import (
    DictionaryBuilder,
    FixedSizeBuilder,
    VarBinaryBuilder,
    array_from_pylist,
)
from repro.arrowfmt.datatypes import Field, INT64, Schema, UTF8
from repro.arrowfmt.ipc import read_table, write_table
from repro.arrowfmt.table import RecordBatch, Table

int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
opt_int64s = st.one_of(st.none(), int64s)
opt_text = st.one_of(st.none(), st.text(max_size=20))


@given(st.lists(opt_int64s, max_size=200))
def test_fixed_builder_roundtrip(values):
    array = FixedSizeBuilder(INT64).extend(values).finish()
    assert array.to_pylist() == values
    assert array.null_count == sum(v is None for v in values)


@given(st.lists(opt_text, max_size=100))
def test_varbinary_builder_roundtrip(values):
    array = VarBinaryBuilder(UTF8).extend(values).finish()
    assert array.to_pylist() == values


@given(st.lists(opt_text, max_size=100))
def test_varbinary_offsets_invariants(values):
    array = VarBinaryBuilder(UTF8).extend(values).finish()
    offsets = array.offsets_numpy()
    assert offsets[0] == 0
    assert np.all(np.diff(offsets) >= 0)
    assert offsets[-1] == sum(len(v.encode()) for v in values if v is not None)


@given(st.lists(opt_text, max_size=100))
def test_dictionary_roundtrip_and_sortedness(values):
    array = DictionaryBuilder(UTF8).extend(values).finish()
    assert array.to_pylist() == values
    dictionary = array.dictionary.to_pylist()
    assert dictionary == sorted(dictionary)
    assert len(set(dictionary)) == len(dictionary)


@given(st.lists(st.booleans(), max_size=300))
def test_bitmap_roundtrip(bits):
    mask = np.array(bits, dtype=bool)
    bitmap = Bitmap.from_numpy(mask)
    assert np.array_equal(bitmap.to_numpy(), mask)
    assert bitmap.count_set() == int(mask.sum())


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.lists(opt_int64s, min_size=1, max_size=30), st.just(None)),
        min_size=1,
        max_size=4,
    )
)
def test_ipc_roundtrip_any_batches(batch_specs):
    schema = Schema([Field("v", INT64)])
    batches = [
        RecordBatch(schema, [array_from_pylist(values, INT64)])
        for values, _ in batch_specs
    ]
    table = Table(schema, batches)
    back = read_table(write_table(table))
    assert back.to_pydict() == table.to_pydict()
    assert [b.num_rows for b in back.batches] == [b.num_rows for b in table.batches]
