"""Tests for the logical type system, fields, and schemas."""

import pytest

from repro.arrowfmt.datatypes import (
    BINARY,
    BOOL,
    FLOAT64,
    INT32,
    INT64,
    UTF8,
    DictionaryType,
    Field,
    Schema,
    type_from_json,
)
from repro.errors import ArrowFormatError


class TestTypes:
    def test_fixed_width_properties(self):
        assert INT64.byte_width == 8
        assert INT32.byte_width == 4
        assert FLOAT64.numpy_dtype.kind == "f"

    def test_type_equality_structural(self):
        assert DictionaryType(INT32, UTF8) == DictionaryType(INT32, UTF8)
        assert DictionaryType(INT32, UTF8) != DictionaryType(INT32, BINARY)
        assert INT64 != INT32

    def test_types_hashable(self):
        assert len({INT64, INT64, INT32}) == 2

    def test_utf8_flag(self):
        assert UTF8.is_utf8
        assert not BINARY.is_utf8

    def test_dictionary_requires_fixed_index(self):
        with pytest.raises(ArrowFormatError):
            DictionaryType(UTF8, UTF8)  # type: ignore[arg-type]

    def test_json_roundtrip_primitives(self):
        for dtype in (INT64, FLOAT64, BOOL, UTF8, BINARY):
            assert type_from_json(dtype.to_json()) == dtype

    def test_json_roundtrip_dictionary(self):
        dtype = DictionaryType(INT32, UTF8)
        assert type_from_json(dtype.to_json()) == dtype

    def test_json_unknown_kind(self):
        with pytest.raises(ArrowFormatError):
            type_from_json({"kind": "tensor"})


class TestSchema:
    def test_field_lookup(self):
        schema = Schema([Field("id", INT64, False), Field("name", UTF8)])
        assert schema.field("name").dtype == UTF8
        assert schema.index_of("id") == 0
        assert schema.names == ["id", "name"]

    def test_missing_field(self):
        schema = Schema([Field("id", INT64)])
        with pytest.raises(ArrowFormatError):
            schema.field("nope")
        with pytest.raises(ArrowFormatError):
            schema.index_of("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ArrowFormatError):
            Schema([Field("x", INT64), Field("x", UTF8)])

    def test_schema_json_roundtrip(self):
        schema = Schema(
            [Field("id", INT64, False), Field("name", UTF8)],
            metadata={"table": "item"},
        )
        assert Schema.from_json(schema.to_json()) == schema

    def test_schema_iterable_and_sized(self):
        schema = Schema([Field("a", INT64), Field("b", UTF8)])
        assert len(schema) == 2
        assert [f.name for f in schema] == ["a", "b"]

    def test_tpcc_item_schema_like_figure_2(self):
        # Figure 2 of the paper describes TPC-C ITEM through Arrow's DDL.
        schema = Schema(
            [
                Field("i_id", INT32, False),
                Field("i_im_id", INT32),
                Field("i_name", UTF8),
                Field("i_price", FLOAT64),
                Field("i_data", UTF8),
            ]
        )
        assert len(schema) == 5
        assert schema.field("i_price").dtype == FLOAT64
