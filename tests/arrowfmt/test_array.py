"""Tests for fixed-size, varbinary, and dictionary arrays."""

import numpy as np
import pytest

from repro.arrowfmt.array import (
    DictionaryArray,
    FixedSizeArray,
    VarBinaryArray,
    concat_varbinary,
    total_buffer_bytes,
)
from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.arrowfmt.builder import (
    DictionaryBuilder,
    FixedSizeBuilder,
    VarBinaryBuilder,
)
from repro.arrowfmt.datatypes import BINARY, INT32, INT64, UTF8
from repro.errors import ArrowFormatError


class TestFixedSizeArray:
    def test_from_numpy_and_getitem(self):
        array = FixedSizeArray.from_numpy(np.array([5, 6, 7]), INT64)
        assert array[1] == 6
        assert array.to_pylist() == [5, 6, 7]
        assert array.null_count == 0

    def test_nulls(self):
        validity = Bitmap.from_numpy(np.array([True, False, True]))
        array = FixedSizeArray.from_numpy(np.array([1, 2, 3]), INT64, validity)
        assert array.to_pylist() == [1, None, 3]
        assert array.null_count == 1

    def test_to_numpy_zero_copy(self):
        data = np.array([1, 2, 3], dtype=np.int64)
        array = FixedSizeArray.from_numpy(data, INT64)
        data[0] = 42
        assert array[0] == 42

    def test_buffer_too_small(self):
        with pytest.raises(ArrowFormatError):
            FixedSizeArray(INT64, 10, Buffer.allocate(8))

    def test_index_out_of_range(self):
        array = FixedSizeArray.from_numpy(np.array([1]), INT64)
        with pytest.raises(ArrowFormatError):
            array[1]

    def test_buffers_validity_first(self):
        validity = Bitmap.from_numpy(np.array([True]))
        array = FixedSizeArray.from_numpy(np.array([1]), INT64, validity)
        buffers = array.buffers()
        assert buffers[0] is validity.buffer
        assert buffers[1] is array.values


class TestVarBinaryArray:
    def test_figure_3_layout(self):
        # The exact example of Figure 3: ["JOE", null, "MARK"].
        array = VarBinaryBuilder(UTF8).extend(["JOE", None, "MARK"]).finish()
        offsets = list(array.offsets_numpy())
        assert offsets == [0, 3, 3, 7]
        assert array.values.to_bytes() == b"JOEMARK"
        assert array.to_pylist() == ["JOE", None, "MARK"]

    def test_binary_returns_bytes(self):
        array = VarBinaryBuilder(BINARY).extend([b"\x00\xff"]).finish()
        assert array[0] == b"\x00\xff"

    def test_empty_strings(self):
        array = VarBinaryBuilder(UTF8).extend(["", "a", ""]).finish()
        assert array.to_pylist() == ["", "a", ""]

    def test_offsets_must_be_monotonic(self):
        offsets = Buffer.from_numpy(np.array([0, 5, 3], dtype=np.int32))
        with pytest.raises(ArrowFormatError):
            VarBinaryArray(UTF8, 2, offsets, Buffer.allocate(8))

    def test_final_offset_bounded_by_values(self):
        offsets = Buffer.from_numpy(np.array([0, 4, 100], dtype=np.int32))
        with pytest.raises(ArrowFormatError):
            VarBinaryArray(UTF8, 2, offsets, Buffer.allocate(8))

    def test_value_bytes_none_for_null(self):
        array = VarBinaryBuilder(UTF8).extend([None]).finish()
        assert array.value_bytes(0) is None

    def test_concat(self):
        a = VarBinaryBuilder(UTF8).extend(["x", None]).finish()
        b = VarBinaryBuilder(UTF8).extend(["yz"]).finish()
        merged = concat_varbinary([a, b])
        assert merged.to_pylist() == ["x", None, "yz"]

    def test_concat_empty_rejected(self):
        with pytest.raises(ArrowFormatError):
            concat_varbinary([])


class TestDictionaryArray:
    def test_codes_reference_sorted_dictionary(self):
        array = DictionaryBuilder(UTF8).extend(["beta", "alpha", "beta"]).finish()
        assert array.dictionary.to_pylist() == ["alpha", "beta"]
        assert list(array.codes.to_numpy()) == [1, 0, 1]
        assert array.to_pylist() == ["beta", "alpha", "beta"]

    def test_nulls(self):
        array = DictionaryBuilder(UTF8).extend(["a", None]).finish()
        assert array.to_pylist() == ["a", None]
        assert array.null_count == 1

    def test_dictionary_size(self):
        array = DictionaryBuilder(UTF8).extend(["a", "b", "a", "c"]).finish()
        assert array.dictionary_size == 3

    def test_out_of_range_code_rejected(self):
        array = DictionaryBuilder(UTF8).extend(["a"]).finish()
        array.codes.to_numpy()[0] = 7
        with pytest.raises(ArrowFormatError):
            array[0]


class TestBufferAccounting:
    def test_total_buffer_bytes_counts_all(self):
        array = VarBinaryBuilder(UTF8).extend(["abcd", "ef"]).finish()
        # offsets: 3 int32 = 12 bytes; values: 6 bytes; no validity.
        assert total_buffer_bytes(array) == 12 + 6

    def test_fixed_size_bytes(self):
        array = FixedSizeBuilder(INT32).extend([1, 2, 3]).finish()
        assert total_buffer_bytes(array) == 12


class TestEquality:
    def test_array_equality_by_content(self):
        a = FixedSizeBuilder(INT64).extend([1, None]).finish()
        b = FixedSizeBuilder(INT64).extend([1, None]).finish()
        c = FixedSizeBuilder(INT64).extend([1, 2]).finish()
        assert a == b
        assert a != c
