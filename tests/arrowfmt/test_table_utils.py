"""Tests for Table.select / slice / concat utilities."""

import pytest

from repro.arrowfmt.builder import array_from_pylist
from repro.arrowfmt.datatypes import Field, INT64, Schema, UTF8
from repro.arrowfmt.table import RecordBatch, Table
from repro.errors import ArrowFormatError


def make_table(batch_sizes):
    schema = Schema([Field("x", INT64), Field("s", UTF8)])
    batches, base = [], 0
    for size in batch_sizes:
        batches.append(
            RecordBatch(
                schema,
                [
                    array_from_pylist(list(range(base, base + size)), INT64),
                    array_from_pylist([f"v{base + i}" for i in range(size)], UTF8),
                ],
            )
        )
        base += size
    return Table(schema, batches)


class TestSelect:
    def test_projection(self):
        table = make_table([3, 2])
        projected = table.select(["s"])
        assert projected.schema.names == ["s"]
        assert projected.column_values("s") == [f"v{i}" for i in range(5)]

    def test_reorder(self):
        table = make_table([2])
        projected = table.select(["s", "x"])
        assert projected.schema.names == ["s", "x"]
        assert list(projected.iter_rows()) == [("v0", 0), ("v1", 1)]

    def test_unknown_column(self):
        with pytest.raises(ArrowFormatError):
            make_table([1]).select(["nope"])

    def test_zero_copy(self):
        table = make_table([3])
        projected = table.select(["x"])
        assert projected.batches[0].columns[0] is table.batches[0].columns[0]


class TestSlice:
    def test_within_one_batch(self):
        table = make_table([10])
        window = table.slice(2, 4)
        assert window.column_values("x") == [2, 3, 4, 5]

    def test_across_batches(self):
        table = make_table([4, 4, 4])
        window = table.slice(3, 6)
        assert window.column_values("x") == [3, 4, 5, 6, 7, 8]

    def test_full_and_empty(self):
        table = make_table([3, 3])
        assert table.slice(0, 6).column_values("x") == list(range(6))
        assert table.slice(6, 0).num_rows == 0

    def test_out_of_bounds(self):
        table = make_table([3])
        with pytest.raises(ArrowFormatError):
            table.slice(1, 5)
        with pytest.raises(ArrowFormatError):
            table.slice(-1, 1)

    def test_varlen_and_nulls_preserved(self):
        schema = Schema([Field("s", UTF8)])
        batch = RecordBatch(schema, [array_from_pylist(["a", None, "c", "d"], UTF8)])
        window = Table(schema, [batch]).slice(1, 2)
        assert window.column_values("s") == [None, "c"]


class TestConcat:
    def test_concat(self):
        merged = Table.concat([make_table([2]), make_table([3])])
        assert merged.num_rows == 5
        assert len(merged.batches) == 2

    def test_mismatched_schema(self):
        other = Table(Schema([Field("y", INT64)]))
        with pytest.raises(ArrowFormatError):
            Table.concat([make_table([1]), other])

    def test_empty_list(self):
        with pytest.raises(ArrowFormatError):
            Table.concat([])
