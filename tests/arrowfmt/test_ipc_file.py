"""Tests for the random-access Arrow file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrowfmt.builder import array_from_pylist
from repro.arrowfmt.datatypes import Field, INT64, Schema, UTF8
from repro.arrowfmt.ipc import (
    FILE_MAGIC,
    file_batch_count,
    read_file,
    read_file_batch,
    write_file,
)
from repro.arrowfmt.table import RecordBatch, Table
from repro.errors import ArrowFormatError, ReproError


def make_table(batch_sizes):
    schema = Schema([Field("x", INT64), Field("s", UTF8)])
    batches = []
    base = 0
    for size in batch_sizes:
        batches.append(
            RecordBatch(
                schema,
                [
                    array_from_pylist(list(range(base, base + size)), INT64),
                    array_from_pylist([f"v{base + i}" for i in range(size)], UTF8),
                ],
            )
        )
        base += size
    return Table(schema, batches)


class TestFileFormat:
    def test_roundtrip(self):
        table = make_table([3, 5, 2])
        back = read_file(write_file(table))
        assert back.to_pydict() == table.to_pydict()
        assert len(back.batches) == 3

    def test_magic_framing(self):
        raw = write_file(make_table([2]))
        assert raw.startswith(FILE_MAGIC)
        assert raw.endswith(FILE_MAGIC)

    def test_random_access_single_batch(self):
        table = make_table([4, 4, 4])
        raw = write_file(table)
        middle = read_file_batch(raw, 1)
        assert middle.column("x").to_pylist() == [4, 5, 6, 7]

    def test_batch_count(self):
        raw = write_file(make_table([1, 1, 1, 1]))
        assert file_batch_count(raw) == 4

    def test_empty_table(self):
        raw = write_file(make_table([]))
        assert file_batch_count(raw) == 0
        assert read_file(raw).num_rows == 0

    def test_index_out_of_range(self):
        raw = write_file(make_table([2]))
        with pytest.raises(ArrowFormatError):
            read_file_batch(raw, 1)
        with pytest.raises(ArrowFormatError):
            read_file_batch(raw, -1)

    def test_bad_magic_rejected(self):
        with pytest.raises(ArrowFormatError):
            read_file(b"NOTAFILE" + b"\x00" * 64)

    def test_missing_trailer_rejected(self):
        raw = write_file(make_table([2]))
        with pytest.raises(ArrowFormatError):
            read_file(raw[:-4])


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=200))
def test_file_reader_never_crashes_on_garbage(raw):
    try:
        read_file(raw)
    except ReproError:
        pass


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 8), max_size=5), st.integers(0, 10**6), st.integers(0, 255))
def test_file_reader_survives_corruption(sizes, position, value):
    raw = write_file(make_table(sizes))
    position %= len(raw)
    mutated = raw[:position] + bytes([value]) + raw[position + 1 :]
    try:
        read_file(mutated).to_pydict()
    except (ReproError, ValueError, UnicodeDecodeError):
        pass
