"""Tests for record batches and tables."""

import pytest

from repro.arrowfmt.builder import array_from_pylist
from repro.arrowfmt.datatypes import Field, INT64, Schema, UTF8
from repro.arrowfmt.table import RecordBatch, Table
from repro.errors import ArrowFormatError


def make_schema():
    return Schema([Field("id", INT64, False), Field("name", UTF8)])


def make_batch(ids, names):
    schema = make_schema()
    return RecordBatch(
        schema,
        [array_from_pylist(ids, INT64), array_from_pylist(names, UTF8)],
    )


class TestRecordBatch:
    def test_basic_accessors(self):
        batch = make_batch([1, 2], ["a", "b"])
        assert batch.num_rows == 2
        assert batch.column("name").to_pylist() == ["a", "b"]
        assert batch.row(1) == (2, "b")

    def test_to_pydict(self):
        batch = make_batch([1], ["x"])
        assert batch.to_pydict() == {"id": [1], "name": ["x"]}

    def test_column_count_mismatch(self):
        schema = make_schema()
        with pytest.raises(ArrowFormatError):
            RecordBatch(schema, [array_from_pylist([1], INT64)])

    def test_column_length_mismatch(self):
        schema = make_schema()
        with pytest.raises(ArrowFormatError):
            RecordBatch(
                schema,
                [
                    array_from_pylist([1, 2], INT64),
                    array_from_pylist(["a"], UTF8),
                ],
            )

    def test_column_type_mismatch(self):
        schema = make_schema()
        with pytest.raises(ArrowFormatError):
            RecordBatch(
                schema,
                [
                    array_from_pylist(["not int"], UTF8),
                    array_from_pylist(["a"], UTF8),
                ],
            )

    def test_non_nullable_rejects_nulls(self):
        with pytest.raises(ArrowFormatError):
            make_batch([1, None], ["a", "b"])

    def test_nbytes_positive(self):
        assert make_batch([1], ["abc"]).nbytes() > 0


class TestTable:
    def test_from_batches(self):
        table = Table.from_batches([make_batch([1], ["a"]), make_batch([2], ["b"])])
        assert table.num_rows == 2
        assert table.column_values("id") == [1, 2]

    def test_from_batches_empty_rejected(self):
        with pytest.raises(ArrowFormatError):
            Table.from_batches([])

    def test_append_batch_schema_check(self):
        table = Table(make_schema())
        other_schema = Schema([Field("x", INT64)])
        bad = RecordBatch(other_schema, [array_from_pylist([1], INT64)])
        with pytest.raises(ArrowFormatError):
            table.append_batch(bad)

    def test_iter_rows_spans_batches(self):
        table = Table.from_batches(
            [make_batch([1, 2], ["a", "b"]), make_batch([3], ["c"])]
        )
        assert list(table.iter_rows()) == [(1, "a"), (2, "b"), (3, "c")]

    def test_to_pydict(self):
        table = Table.from_batches([make_batch([1], [None])])
        assert table.to_pydict() == {"id": [1], "name": [None]}

    def test_empty_table(self):
        table = Table(make_schema())
        assert table.num_rows == 0
        assert table.nbytes() == 0
