"""Tests for aligned buffers and validity bitmaps."""

import numpy as np
import pytest

from repro.arrowfmt.buffer import ALIGNMENT, Bitmap, Buffer
from repro.errors import ArrowFormatError


class TestBuffer:
    def test_allocate_pads_to_alignment(self):
        buf = Buffer.allocate(13)
        assert buf.size == 13
        assert len(buf.data) % ALIGNMENT == 0
        assert len(buf.data) >= 13

    def test_allocate_zeroed(self):
        buf = Buffer.allocate(64)
        assert not buf.data.any()

    def test_allocate_zero_bytes(self):
        buf = Buffer.allocate(0)
        assert buf.size == 0
        assert buf.to_bytes() == b""

    def test_allocate_negative_raises(self):
        with pytest.raises(ArrowFormatError):
            Buffer.allocate(-1)

    def test_from_bytes_roundtrip(self):
        raw = b"hello world"
        assert Buffer.from_bytes(raw).to_bytes() == raw

    def test_from_numpy_zero_copy(self):
        array = np.arange(4, dtype=np.int64)
        buf = Buffer.from_numpy(array)
        array[0] = 99
        assert buf.typed_view(np.dtype("int64"))[0] == 99

    def test_from_numpy_rejects_non_contiguous(self):
        array = np.arange(10, dtype=np.int64)[::2]
        with pytest.raises(ArrowFormatError):
            Buffer.from_numpy(array)

    def test_view_bounds(self):
        buf = Buffer.allocate(16)
        assert len(buf.view(8, 8)) == 8
        with pytest.raises(ArrowFormatError):
            buf.view(10, 8)
        with pytest.raises(ArrowFormatError):
            buf.view(-1, 4)

    def test_view_is_zero_copy(self):
        buf = Buffer.allocate(8)
        buf.view(0, 8)[3] = 42
        assert buf.data[3] == 42

    def test_typed_view_alignment_check(self):
        buf = Buffer.allocate(16)
        with pytest.raises(ArrowFormatError):
            buf.typed_view(np.dtype("int64"), offset=4)

    def test_typed_view_values(self):
        array = np.array([1.5, -2.5], dtype=np.float64)
        buf = Buffer.from_numpy(array)
        assert list(buf.typed_view(np.dtype("float64"))) == [1.5, -2.5]

    def test_equality_is_content_based(self):
        assert Buffer.from_bytes(b"abc") == Buffer.from_bytes(b"abc")
        assert Buffer.from_bytes(b"abc") != Buffer.from_bytes(b"abd")

    def test_logical_size_cannot_exceed_backing(self):
        with pytest.raises(ArrowFormatError):
            Buffer(np.zeros(4, dtype=np.uint8), size=5)


class TestBitmap:
    def test_allocate_all_clear(self):
        bm = Bitmap.allocate(10)
        assert bm.count_set() == 0
        assert not any(bm.get(i) for i in range(10))

    def test_allocate_all_set(self):
        bm = Bitmap.allocate(10, all_set=True)
        assert bm.count_set() == 10
        assert all(bm.get(i) for i in range(10))

    def test_all_set_clears_padding_bits(self):
        # 10 bits => 2 bytes; the 6 trailing bits must be 0 for exact popcounts.
        bm = Bitmap.allocate(10, all_set=True)
        assert bm.buffer.data[1] == 0b00000011

    def test_set_and_clear(self):
        bm = Bitmap.allocate(16)
        bm.set(3)
        bm.set(15)
        assert bm.get(3) and bm.get(15)
        bm.clear(3)
        assert not bm.get(3)
        assert bm.count_set() == 1

    def test_lsb_first_bit_order(self):
        bm = Bitmap.allocate(8)
        bm.set(0)
        assert bm.buffer.data[0] == 0b00000001
        bm.set(7)
        assert bm.buffer.data[0] == 0b10000001

    def test_out_of_range(self):
        bm = Bitmap.allocate(8)
        with pytest.raises(ArrowFormatError):
            bm.get(8)
        with pytest.raises(ArrowFormatError):
            bm.set(-1)

    def test_to_numpy_roundtrip(self):
        mask = np.array([True, False, True, True, False], dtype=bool)
        bm = Bitmap.from_numpy(mask)
        assert np.array_equal(bm.to_numpy(), mask)

    def test_set_and_clear_indices(self):
        mask = np.array([True, False, False, True], dtype=bool)
        bm = Bitmap.from_numpy(mask)
        assert list(bm.set_indices()) == [0, 3]
        assert list(bm.clear_indices()) == [1, 2]

    def test_length_zero(self):
        bm = Bitmap.allocate(0)
        assert bm.count_set() == 0
        assert len(bm.to_numpy()) == 0

    def test_buffer_too_small_rejected(self):
        with pytest.raises(ArrowFormatError):
            Bitmap(Buffer.allocate(1), 9)
