"""Tests for the B+-tree index structure."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.bplus_tree import BPlusTree


class TestBasics:
    def test_insert_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(3, "b")
        assert tree.search(5) == ["a"]
        assert tree.search(3) == ["b"]
        assert tree.search(99) == []

    def test_duplicate_keys(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "x")
        tree.insert(1, "y")
        assert sorted(tree.search(1)) == ["x", "y"]
        assert len(tree) == 2

    def test_delete(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "x")
        tree.insert(1, "y")
        assert tree.delete(1, "x")
        assert tree.search(1) == ["y"]
        assert not tree.delete(1, "x")  # already gone
        assert not tree.delete(42, "z")  # never present

    def test_contains_and_len(self):
        tree = BPlusTree(order=4)
        assert 1 not in tree
        tree.insert(1, "v")
        assert 1 in tree
        assert len(tree) == 1

    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)

    def test_splits_maintain_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(200))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.insert(k, k * 10)
        assert tree.keys() == sorted(range(200))
        assert tree.depth() > 1
        for k in range(200):
            assert tree.search(k) == [k * 10]

    def test_tuple_keys(self):
        tree = BPlusTree()
        tree.insert((1, "b"), "x")
        tree.insert((1, "a"), "y")
        tree.insert((0, "z"), "w")
        assert tree.keys() == [(0, "z"), (1, "a"), (1, "b")]


class TestRangeScan:
    def build(self, n=100):
        tree = BPlusTree(order=8)
        for i in range(n):
            tree.insert(i, f"v{i}")
        return tree

    def test_full_scan(self):
        tree = self.build(50)
        pairs = list(tree.range_scan())
        assert [k for k, _ in pairs] == list(range(50))

    def test_bounded_scan(self):
        tree = self.build()
        pairs = list(tree.range_scan(10, 20))
        assert [k for k, _ in pairs] == list(range(10, 21))

    def test_exclusive_high(self):
        tree = self.build()
        pairs = list(tree.range_scan(10, 20, inclusive_high=False))
        assert [k for k, _ in pairs] == list(range(10, 20))

    def test_open_ended(self):
        tree = self.build(30)
        assert [k for k, _ in tree.range_scan(low=25)] == [25, 26, 27, 28, 29]
        assert [k for k, _ in tree.range_scan(high=4)] == [0, 1, 2, 3, 4]

    def test_scan_with_duplicates(self):
        tree = BPlusTree(order=4)
        for i in range(5):
            tree.insert(1, i)
        assert len(list(tree.range_scan(1, 1))) == 5

    def test_empty_range(self):
        tree = self.build(10)
        assert list(tree.range_scan(100, 200)) == []


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(-100, 100), st.integers()), max_size=300))
def test_matches_reference_dict(pairs):
    tree = BPlusTree(order=5)
    reference: dict[int, list[int]] = {}
    for key, value in pairs:
        tree.insert(key, value)
        reference.setdefault(key, []).append(value)
    assert tree.keys() == sorted(reference)
    for key, values in reference.items():
        assert sorted(tree.search(key)) == sorted(values)
    scanned = [k for k, _ in tree.range_scan()]
    assert scanned == sorted(scanned)
    assert len(tree) == sum(len(v) for v in reference.values())


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=200),
    st.data(),
)
def test_delete_property(keys, data):
    tree = BPlusTree(order=4)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    to_delete = data.draw(
        st.lists(st.sampled_from(list(enumerate(keys))), max_size=len(keys), unique=True)
    )
    for i, key in to_delete:
        assert tree.delete(key, i)
    remaining = {(k, i) for i, k in enumerate(keys)} - {(k, i) for i, k in to_delete}
    assert len(tree) == len(remaining)
    for key, i in remaining:
        assert i in tree.search(key)
