"""Tests for transactional index maintenance and write amplification."""

import pytest

from repro.arrowfmt.datatypes import INT64, UTF8
from repro.errors import IndexError_
from repro.index.hash_index import HashIndex
from repro.index.manager import IndexManager
from repro.storage.block_store import BlockStore
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    layout = BlockLayout(
        [ColumnSpec("id", INT64), ColumnSpec("name", UTF8)], block_size=1 << 14
    )
    tm = TransactionManager()
    table = DataTable(BlockStore(), layout, "t")
    manager = IndexManager()
    index = manager.create_index("t.pk", table, [0])
    return tm, table, manager, index


class TestHashIndex:
    def test_insert_search_delete(self):
        idx = HashIndex()
        idx.insert("k", 1)
        idx.insert("k", 2)
        assert sorted(idx.search("k")) == [1, 2]
        assert idx.delete("k", 1)
        assert idx.search("k") == [2]
        assert not idx.delete("missing", 0)
        assert len(idx) == 1


class TestMaintenance:
    def test_insert_indexed(self, env):
        tm, table, _, index = env
        txn = tm.begin()
        slot = table.insert(txn, {0: 7, 1: "x"})
        tm.commit(txn)
        reader = tm.begin()
        [(found_slot, row)] = index.lookup(reader, (7,))
        assert found_slot == slot
        assert row.get(1) == "x"

    def test_delete_removes_entry(self, env):
        tm, table, _, index = env
        txn = tm.begin()
        slot = table.insert(txn, {0: 7, 1: "x"})
        tm.commit(txn)
        txn = tm.begin()
        table.delete(txn, slot)
        tm.commit(txn)
        assert index.structure.search((7,)) == []

    def test_key_update_moves_entry(self, env):
        tm, table, _, index = env
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x"})
        tm.commit(txn)
        txn = tm.begin()
        table.update(txn, slot, {0: 2})
        tm.commit(txn)
        reader = tm.begin()
        assert index.lookup(reader, (1,)) == []
        assert index.lookup(reader, (2,))[0][0] == slot

    def test_non_key_update_ignored(self, env):
        tm, table, _, index = env
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x"})
        tm.commit(txn)
        ops_before = index.maintenance_ops
        txn = tm.begin()
        table.update(txn, slot, {1: "y"})
        tm.commit(txn)
        assert index.maintenance_ops == ops_before

    def test_abort_compensates_insert(self, env):
        tm, table, _, index = env
        txn = tm.begin()
        table.insert(txn, {0: 9, 1: "doomed"})
        tm.abort(txn)
        assert index.structure.search((9,)) == []

    def test_abort_compensates_delete(self, env):
        tm, table, _, index = env
        txn = tm.begin()
        slot = table.insert(txn, {0: 9, 1: "x"})
        tm.commit(txn)
        txn = tm.begin()
        table.delete(txn, slot)
        tm.abort(txn)
        reader = tm.begin()
        assert index.lookup(reader, (9,))[0][0] == slot

    def test_mvcc_filtering_at_lookup(self, env):
        tm, table, _, index = env
        writer = tm.begin()
        table.insert(writer, {0: 5, 1: "pending"})
        reader = tm.begin()
        # The entry exists in the index but the tuple is invisible.
        assert index.lookup(reader, (5,)) == []
        tm.commit(writer)
        assert index.lookup(tm.begin(), (5,))

    def test_range_scan_visible_only(self, env):
        tm, table, _, index = env
        txn = tm.begin()
        for i in range(10):
            table.insert(txn, {0: i, 1: f"r{i}"})
        tm.commit(txn)
        txn = tm.begin()
        keys = [k for k, _, _ in index.range_scan(txn, (3,), (6,))]
        assert keys == [(3,), (4,), (5,), (6,)]


class TestWriteAmplification:
    def test_movement_costs_two_ops_per_index(self, env):
        tm, table, manager, index = env
        hash_idx = manager.create_index("t.aux", table, [0], kind="hash")
        txn = tm.begin()
        slot = table.insert(txn, {0: 1, 1: "x"})
        tm.commit(txn)
        base = manager.total_maintenance_ops()
        # Simulate what compaction does: delete + insert_into elsewhere.
        from repro.storage.tuple_slot import TupleSlot

        txn = tm.begin()
        row = table.select(txn, slot)
        table.delete(txn, slot)
        table.insert_into(txn, TupleSlot(slot.block_id, slot.offset + 1), row.to_dict())
        tm.commit(txn)
        # 2 ops (delete + insert) × 2 indexes.
        assert manager.total_maintenance_ops() - base == 4


class TestManager:
    def test_duplicate_name_rejected(self, env):
        _, table, manager, _ = env
        with pytest.raises(IndexError_):
            manager.create_index("t.pk", table, [0])

    def test_backfill_existing_rows(self, env):
        tm, table, manager, _ = env
        txn = tm.begin()
        for i in range(5):
            table.insert(txn, {0: 100 + i, 1: "v"})
        tm.commit(txn)
        backfill = tm.begin()
        late = manager.create_index("t.late", table, [0], backfill_txn=backfill)
        tm.commit(backfill)
        assert len(late) == 5

    def test_bad_key_column_rejected(self, env):
        _, table, manager, _ = env
        with pytest.raises(IndexError_):
            manager.create_index("t.bad", table, [42])
        with pytest.raises(IndexError_):
            manager.create_index("t.empty", table, [])

    def test_range_scan_requires_btree(self, env):
        tm, table, manager, _ = env
        hash_idx = manager.create_index("t.h", table, [0], kind="hash")
        with pytest.raises(IndexError_):
            list(hash_idx.range_scan(tm.begin()))
