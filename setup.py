"""Setuptools entry point.

A classic ``setup.py`` is kept alongside ``pyproject.toml`` because the
offline environment has no ``wheel`` package, so ``pip install -e .`` must
use the legacy develop path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Arrow-native OLTP storage engine: reproduction of 'Mainlining "
        "Databases' (Li et al., VLDB 2020)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
)
