"""Figure 13: write amplification of the transformation algorithms.

Every tuple that changes physical location invalidates its index entries,
at a constant cost per movement per index — so the comparison reduces to
counting movements.  Snapshot moves *every* live tuple in the compacted
blocks; the approximate and optimal planners move only what is needed to
fill gaps, with the approximate plan provably within ``t mod s`` movements
of optimal.

Paper shape: the hybrid planners beat Snapshot by orders of magnitude when
blocks are nearly full and by ~2× at 50% empty, the gap narrowing as
emptiness grows; approximate ≈ optimal throughout.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.reporting import format_series
from repro.transform.compaction import plan_compaction, plan_compaction_optimal
from repro.workloads.synthetic import SyntheticConfig, build_synthetic_table

from conftest import publish, scaled

EMPTY_AXIS = [0, 1, 5, 10, 20, 40, 60, 80]
N_BLOCKS = scaled(6, minimum=3)


def build(percent_empty: float):
    db = Database(logging_enabled=False)
    info = build_synthetic_table(
        db, "s", SyntheticConfig(n_blocks=N_BLOCKS, percent_empty=percent_empty)
    )
    return db, info


def test_plan_approximate(benchmark):
    _, info = build(20)
    plan = benchmark(plan_compaction, info.table.blocks)
    assert plan.movement_count > 0


def test_plan_optimal(benchmark):
    _, info = build(20)
    plan = benchmark(plan_compaction_optimal, info.table.blocks)
    assert plan.movement_count > 0


def test_report_figure_13(benchmark):
    def run():
        series = {"Snapshot": [], "Approximate": [], "Optimal": []}
        for empty in EMPTY_AXIS:
            _, info = build(empty)
            live = info.table.live_tuple_count()
            approx = plan_compaction(info.table.blocks)
            optimal = plan_compaction_optimal(info.table.blocks)
            # Snapshot rewrites every live tuple of every non-empty block.
            series["Snapshot"].append(live)
            series["Approximate"].append(approx.movement_count)
            series["Optimal"].append(optimal.movement_count)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig13_write_amplification",
        format_series(
            "Figure 13 — tuples moved per transformation pass "
            f"({N_BLOCKS} blocks)",
            "%empty",
            EMPTY_AXIS,
            series,
        ),
    )
    slots = None
    for i, empty in enumerate(EMPTY_AXIS):
        assert series["Optimal"][i] <= series["Approximate"][i]
        assert series["Approximate"][i] <= series["Snapshot"][i]
    # Orders of magnitude better when nearly full...
    assert series["Approximate"][1] * 10 < series["Snapshot"][1]
    # ...and still winning around half empty.
    mid = EMPTY_AXIS.index(40)
    assert series["Approximate"][mid] < series["Snapshot"][mid]
