"""Ablation: fixed vs dynamic compaction-group policy (the paper's future work).

Figure 14 ends with: "the DBMS should employ an intelligent policy that
dynamically forms groups of different sizes based on the blocks it is
compacting.  We defer this problem as future work."  This bench compares
the paper's fixed-size policy against the implemented
:class:`~repro.transform.policy.WriteBudgetPolicy` across emptiness levels,
reporting blocks freed and the *maximum* single-transaction write-set — the
abort-exposure metric a dynamic policy is supposed to tame.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.reporting import format_table
from repro.transform.compaction import execute_compaction, plan_compaction
from repro.transform.policy import FixedGroupPolicy, WriteBudgetPolicy
from repro.workloads.synthetic import SyntheticConfig, build_synthetic_table

from conftest import publish, scaled

EMPTY_AXIS = [5, 20, 60]
TOTAL_BLOCKS = scaled(16, minimum=8)
BUDGET = 800


def build(percent_empty: float):
    db = Database(logging_enabled=False)
    info = build_synthetic_table(
        db,
        "s",
        SyntheticConfig(
            n_blocks=TOTAL_BLOCKS, percent_empty=percent_empty, block_size=1 << 14
        ),
    )
    return db, info


def one_pass(db, info, policy) -> tuple[int, int]:
    """Compact under ``policy``; returns (blocks freed, max write-set)."""
    freed = 0
    max_write_set = 0
    for group in policy.form_groups(list(info.table.blocks)):
        plan = plan_compaction(group)
        txn = execute_compaction(db.txn_manager, info.table, plan)
        if txn is None:
            continue
        db.txn_manager.commit(txn)
        max_write_set = max(max_write_set, len(txn.undo_buffer))
        freed += len(plan.empty_blocks)
    return freed, max_write_set


def test_fixed_policy_pass(benchmark):
    db, info = build(20)
    benchmark.pedantic(
        lambda: one_pass(db, info, FixedGroupPolicy(TOTAL_BLOCKS)), rounds=1, iterations=1
    )


def test_budget_policy_pass(benchmark):
    db, info = build(20)
    benchmark.pedantic(
        lambda: one_pass(db, info, WriteBudgetPolicy(BUDGET, min_group=1)),
        rounds=1,
        iterations=1,
    )


def test_report_group_policy_ablation(benchmark):
    def run():
        rows = []
        for empty in EMPTY_AXIS:
            db, info = build(empty)
            fixed_freed, fixed_ws = one_pass(db, info, FixedGroupPolicy(TOTAL_BLOCKS))
            db, info = build(empty)
            budget_freed, budget_ws = one_pass(
                db, info, WriteBudgetPolicy(BUDGET, min_group=1)
            )
            rows.append((empty, fixed_freed, fixed_ws, budget_freed, budget_ws))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_group_policy",
        format_table(
            f"Ablation — fixed (size {TOTAL_BLOCKS}) vs write-budget "
            f"({BUDGET} moves) group policy",
            ["%empty", "fixed freed", "fixed max ws", "budget freed", "budget max ws"],
            rows,
        ),
    )
    for empty, fixed_freed, fixed_ws, budget_freed, budget_ws in rows:
        if empty >= 20:
            # The dynamic policy must cap the write-set well below the
            # monolithic group's while still reclaiming most blocks.
            assert budget_ws <= fixed_ws
            assert budget_freed >= fixed_freed * 0.5
