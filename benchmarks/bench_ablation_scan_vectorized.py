"""Ablation: vectorized hot-block scans vs the row-at-a-time baseline.

The vectorized snapshot scan copies a hot block's fixed-width columns
under one latch acquisition and patches version chains only where they
exist, instead of taking the latch and walking the chain for every slot
(`DataTable.select` per row).  This bench aggregates over a hot table —
part of it churned so version chains are present — through both paths
and reports rows/sec and the speedup.
"""

from __future__ import annotations

import time

import pytest

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.bench.reporting import format_table
from repro.query import TableScanner, aggregate

from conftest import publish, scaled

ROWS = scaled(30_000, minimum=5_000)
#: Fraction of rows updated before measuring, so the vectorized path has
#: real version chains to patch (not just the clean-block fast case).
CHURN_EVERY = 20


@pytest.fixture(scope="module")
def hot_table():
    db = Database(logging_enabled=False)
    info = db.create_table(
        "h",
        [
            ColumnSpec("id", INT64),
            ColumnSpec("amount", FLOAT64),
            ColumnSpec("note", UTF8),
        ],
        block_size=1 << 14,
    )
    slots = []
    with db.transaction() as txn:
        for i in range(ROWS):
            slots.append(
                info.table.insert(txn, {0: i, 1: float(i % 97), 2: f"n-{i}"})
            )
    db.quiesce()  # unlink the bulk-load chains; churn below re-creates some
    with db.transaction() as txn:
        for i in range(0, ROWS, CHURN_EVERY):
            info.table.update(txn, slots[i], {1: -1.0})
    return db, info


def hot_sum(db, info, vectorized: bool):
    scanner = TableScanner(
        db.txn_manager, info.table, column_ids=[0, 1], vectorized=vectorized
    )
    result = aggregate(scanner, value_column=1)
    return result, scanner


def test_vectorized_hot_scan(benchmark, hot_table):
    db, info = hot_table
    result, scanner = benchmark.pedantic(
        lambda: hot_sum(db, info, vectorized=True), rounds=1, iterations=1
    )
    assert result.count == ROWS
    assert scanner.hot_blocks_scanned >= 1


def test_rowwise_hot_scan(benchmark, hot_table):
    db, info = hot_table
    result, _ = benchmark.pedantic(
        lambda: hot_sum(db, info, vectorized=False), rounds=1, iterations=1
    )
    assert result.count == ROWS


def test_report_scan_vectorized_ablation(benchmark, hot_table):
    db, info = hot_table

    def run():
        began = time.perf_counter()
        fast_result, fast_scanner = hot_sum(db, info, vectorized=True)
        fast_seconds = time.perf_counter() - began
        began = time.perf_counter()
        slow_result, _ = hot_sum(db, info, vectorized=False)
        slow_seconds = time.perf_counter() - began
        assert fast_result.count == slow_result.count == ROWS
        assert fast_result.total == slow_result.total
        return fast_seconds, slow_seconds, fast_scanner

    fast_seconds, slow_seconds, scanner = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = slow_seconds / fast_seconds
    publish(
        "ablation_scan_vectorized",
        format_table(
            f"Ablation — vectorized hot-block scan ({ROWS} rows, "
            f"1/{CHURN_EVERY} churned)",
            ["path", "seconds", "rows/sec", "speedup"],
            [
                (
                    "row-at-a-time",
                    f"{slow_seconds:.4f}",
                    f"{ROWS / slow_seconds:,.0f}",
                    "1.0x",
                ),
                (
                    "vectorized",
                    f"{fast_seconds:.4f}",
                    f"{ROWS / fast_seconds:,.0f}",
                    f"{speedup:.1f}x",
                ),
                (
                    "rows patched",
                    str(scanner.rows_patched),
                    "",
                    "",
                ),
            ],
        ),
    )
    # The latch-once bulk-copy path must beat per-tuple select by a wide
    # margin (acceptance floor from the issue).
    assert speedup >= 5.0, f"vectorized speedup only {speedup:.1f}x"
