"""Ablation: cost of the flight-recorder journal on the transaction path.

A TPC-C-lite transaction loop is timed under three configurations:

* **recorder on** — the default: every engine edge journals an event
  (thread-local staging list, periodic spill into the shared ring);
* **recorder off** — metrics stay enabled but the journal write path is a
  no-op, isolating the recorder's own cost from the counters';
* **obs disabled** — ``obs.configure(enabled=False)``: every
  instrumentation site degenerates to one attribute load and a branch.

The journal is designed to ride along for free (same principle as the
sharded counters): this benchmark enforces recorder-on ≤ 5% over
recorder-off, and that the hot ``record`` call itself stays cheap in both
the enabled and disabled configurations.
"""

from __future__ import annotations

import time

import pytest

from repro import Database, obs
from repro.obs.recorder import Recorder
from repro.bench.reporting import format_table
from repro.workloads.tpcc import TpccConfig, TpccDriver

from conftest import publish, scaled

TXNS = scaled(500, minimum=200)
TRIALS = 5


class _NoopRecorder(Recorder):
    """A recorder whose write path does nothing (the 'off' configuration)."""

    def record(self, kind, txn_id=None, block_id=None, **attrs):
        pass

    def note_txn_complete(self, txn_id, duration, status):
        pass


@pytest.fixture(autouse=True)
def _restore_obs_state():
    was = obs.is_enabled()
    yield
    obs.configure(enabled=was)


def _one_trial(config: str) -> tuple[float, int]:
    """One timed TPC-C run; returns (seconds, committed)."""
    obs.configure(enabled=config != "disabled")
    recorder = _NoopRecorder() if config == "off" else None
    db = Database(cold_threshold_epochs=1, logging_enabled=True, recorder=recorder)
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    began = time.perf_counter()
    run = driver.run(transactions_per_worker=TXNS)
    elapsed = time.perf_counter() - began
    if config == "on":
        assert len(db.recorder) > 0, "recorder-on run journaled nothing"
    return elapsed, run.committed


@pytest.fixture(scope="module")
def measurements():
    configs = ("on", "off", "disabled")
    _one_trial("on")  # warm caches/allocator before measuring anything
    best = {c: (float("inf"), 0) for c in configs}
    for _ in range(TRIALS):
        # Interleaved so every configuration sees the same machine noise.
        for config in configs:
            trial = _one_trial(config)
            if trial[0] < best[config][0]:
                best[config] = trial
    return best


def test_recorder_overhead_under_five_percent(benchmark, measurements):
    def run():
        rows = {}
        for config, (elapsed, committed) in measurements.items():
            rows[config] = committed / elapsed
        return rows

    txn_s = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = measurements["on"][0] / measurements["off"][0] - 1.0
    publish(
        "ablation_recorder_overhead",
        format_table(
            f"Ablation — flight-recorder overhead (TPC-C-lite, {TXNS} txns, "
            f"best of {TRIALS})",
            ["configuration", "txn/s", "overhead vs recorder off"],
            [
                ("recorder off", f"{txn_s['off']:,.0f}", "—"),
                ("recorder on", f"{txn_s['on']:,.0f}", f"{overhead * 100:+.1f}%"),
                (
                    "obs disabled",
                    f"{txn_s['disabled']:,.0f}",
                    f"{measurements['disabled'][0] / measurements['off'][0] * 100 - 100:+.1f}%",
                ),
            ],
        ),
    )
    committed = {c: m[1] for c, m in measurements.items()}
    assert committed["on"] == committed["off"] == committed["disabled"] > 0
    assert overhead < 0.05, (
        f"recorder-on run was {overhead * 100:.1f}% slower than recorder-off; "
        "the journal hot path has regressed"
    )


def _per_call_cost(fn, calls: int = 200_000) -> float:
    began = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - began) / calls


def test_record_call_is_cheap(benchmark):
    obs.configure(enabled=True)
    recorder = Recorder(capacity=4096)

    def enabled_cost():
        return _per_call_cost(lambda: recorder.record("bench.noop", txn_id=1))

    def disabled_cost():
        obs.configure(enabled=False)
        try:
            return _per_call_cost(lambda: recorder.record("bench.noop", txn_id=1))
        finally:
            obs.configure(enabled=True)

    costs = benchmark.pedantic(
        lambda: {"record (enabled)": enabled_cost(), "record (disabled)": disabled_cost()},
        rounds=1,
        iterations=1,
    )
    publish(
        "ablation_recorder_record_cost",
        format_table(
            "Ablation — journal record() cost per call",
            ["path", "ns/call"],
            [(name, f"{cost * 1e9:,.0f}") for name, cost in costs.items()],
        ),
    )
    # Enabled: an Event construction + list append (+ amortized spill).
    assert costs["record (enabled)"] < 1e-5
    # Disabled: one attribute load and a branch.
    assert costs["record (disabled)"] < 5e-7
