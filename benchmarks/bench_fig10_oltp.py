"""Figure 10: TPC-C performance with the transformation pipeline.

(a) Throughput vs worker threads for three configurations — transformation
disabled, varlen gather, dictionary compression.  The per-transaction costs
and the interference of the transformation process are *measured* on the
real engine (single worker, the GIL hides core parallelism); the thread
axis is then projected by the calibrated
:class:`~repro.bench.scaling_model.ScalingModel` of the paper's 20-core
machine.

(b) Fraction of cold-table blocks in the COOLING/FROZEN states at the end
of each run.

Paper shape: ≤10% throughput overhead for gather, more for dictionary
compression; near-complete block coverage for gather, lagging coverage for
dictionary compression at high worker counts; scaling degrades at 20
workers when threads outnumber physical cores.
"""

from __future__ import annotations

import pytest

from repro import Database, ShardedDatabase
from repro.bench.reporting import format_series, format_table
from repro.bench.scaling_model import ScalingModel
from repro.workloads.tpcc import TpccConfig, TpccDriver
from repro.workloads.tpcc.consistency import check_consistency
from repro.workloads.tpcc.schema import TPCC_SHARD_KEYS

from conftest import publish, scaled, shard_counts

TXNS = scaled(700, minimum=300)
WORKER_AXIS = [1, 2, 4, 8, 12, 16, 20]


def _one_trial(cold_format: str | None) -> tuple[float, float]:
    """One measured TPC-C run under a transformation configuration."""
    db = Database(
        cold_threshold_epochs=1,
        cold_format=cold_format or "gather",
        logging_enabled=True,
    )
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    # The paper runs transformation on a dedicated thread; its cost is
    # *interference* with the workers, not serialized pipeline work.
    # Intervals are scaled to this engine's throughput: the paper's ~10 ms
    # GC period against ~100k txn/s corresponds to tens of ms against our
    # hundreds of txn/s.
    if cold_format is not None:
        db.start_background(gc_interval=0.02, transform_interval=0.05)
    try:
        run = driver.run(transactions_per_worker=TXNS)
    finally:
        if cold_format is not None:
            db.stop_background()
            db.run_maintenance(passes=3)
    return run.throughput, driver.cold_coverage()


@pytest.fixture(scope="module")
def measurements():
    """Best-of-N per configuration, trials interleaved round-robin.

    Single 400-transaction runs swing with machine noise; interleaving the
    configurations' trials exposes them to the same noise environment so
    the *relative* overheads — what the figure is about — stay meaningful.
    """
    configs = {
        "No Transformation": None,
        "Varlen Gather": "gather",
        "Dictionary Compression": "dictionary",
    }
    best: dict[str, tuple[float, float]] = {name: (0.0, 0.0) for name in configs}
    for _ in range(3):
        for name, cold_format in configs.items():
            throughput, coverage = _one_trial(cold_format)
            if throughput > best[name][0]:
                best[name] = (throughput, coverage)
    return best


def test_tpcc_no_transformation(benchmark):
    db = Database(cold_threshold_epochs=1)
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    result = benchmark.pedantic(
        lambda: driver.run(transactions_per_worker=150), rounds=1, iterations=1
    )
    assert result.committed > 0


def test_tpcc_with_gather(benchmark):
    db = Database(cold_threshold_epochs=1, cold_format="gather")
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    result = benchmark.pedantic(
        lambda: driver.run(transactions_per_worker=150, maintenance_every=40),
        rounds=1,
        iterations=1,
    )
    assert result.committed > 0


def test_tpcc_with_dictionary(benchmark):
    db = Database(cold_threshold_epochs=1, cold_format="dictionary")
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    result = benchmark.pedantic(
        lambda: driver.run(transactions_per_worker=150, maintenance_every=40),
        rounds=1,
        iterations=1,
    )
    assert result.committed > 0


def _sharded_trial(n_shards: int) -> tuple[float, int, int]:
    """One TPC-C run against an ``n_shards``-way cluster.

    One warehouse per shard, so the spec's 15% remote payments and ~10%
    remote new-order lines become genuine cross-shard 2PC transactions.
    Returns ``(throughput, committed, cross_shard_commits)``.
    """
    if n_shards == 1:
        db = Database(cold_threshold_epochs=1, logging_enabled=True)
    else:
        db = ShardedDatabase(
            n_shards=n_shards,
            shard_keys=TPCC_SHARD_KEYS,
            cold_threshold_epochs=1,
            logging_enabled=True,
        )
    driver = TpccDriver(db, TpccConfig.small(warehouses=n_shards))
    driver.setup()
    run = driver.run(transactions_per_worker=scaled(300, minimum=150))
    report = check_consistency(db)
    assert report.consistent, "; ".join(report.violations)
    cross = 0
    if n_shards > 1:
        cross = int(db.obs.counter("cluster.txn_cross_shard_total").value)
    return run.throughput, run.committed, cross


def test_report_oltp_sharding(benchmark, request):
    """Throughput vs shard count with 2PC engaged on remote transactions.

    Select shard counts with ``--shards N[,N...]`` (default ``1,2,4``).
    The interesting shape is the *cost* of distribution on a single
    machine: every shard competes for the same interpreter, and
    cross-shard transactions pay prepare + decision forcing, so
    throughput should not scale with shard count — this benchmark prices
    the coordination, it does not simulate a real multi-node speedup.
    """
    counts = shard_counts(request.config)

    def run():
        return {n: _sharded_trial(n) for n in counts}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results[counts[0]][0]
    rows = [
        (
            str(n),
            f"{tput:.0f}",
            f"{tput / base:.2f}x",
            str(committed),
            str(cross),
        )
        for n, (tput, committed, cross) in results.items()
    ]
    publish(
        "fig10c_sharded_oltp",
        format_table(
            "Figure 10c — TPC-C on the sharded engine (one warehouse per "
            "shard; cross-shard commits via 2PC)",
            ["shards", "txn/s", "relative", "committed", "cross-shard 2PC"],
            rows,
        ),
    )
    for n, (tput, committed, cross) in results.items():
        assert committed > 0
        if n > 1:
            assert cross > 0, f"no cross-shard traffic at {n} shards"


def test_report_figure_10(benchmark, measurements):
    def run():
        base_rate = measurements["No Transformation"][0]
        curves = {}
        for name, (rate, _) in measurements.items():
            overhead = max(0.0, 1.0 - rate / base_rate)
            model = ScalingModel(base_rate, transform_overhead=overhead)
            curves[name] = [round(v) for v in model.curve(WORKER_AXIS)]
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig10a_tpcc_throughput",
        format_series(
            "Figure 10a — TPC-C throughput (txn/s; measured 1-worker rates, "
            "modeled thread axis)",
            "workers",
            WORKER_AXIS,
            curves,
        ),
    )
    coverage_rows = [
        (name, f"{coverage * 100:.0f}%")
        for name, (_, coverage) in measurements.items()
        if name != "No Transformation"
    ]
    publish(
        "fig10b_block_coverage",
        format_table(
            "Figure 10b — cold-table blocks in COOLING/FROZEN at end of run",
            ["configuration", "coverage"],
            coverage_rows,
        ),
    )
    # Paper shapes: the transformation's interference is bounded (the
    # paper reports <=10%; this machine resolves the effect to within a
    # ~20% noise band at this scale — the printed curves carry the real
    # numbers); dictionary compression is never materially cheaper than
    # the gather; the curve dips at 20 workers where threads exceed
    # physical cores.
    gather = curves["Varlen Gather"]
    none = curves["No Transformation"]
    dictionary = curves["Dictionary Compression"]
    assert gather[3] >= none[3] * 0.80
    assert dictionary[3] <= gather[3] * 1.10
    assert none[-1] < none[-2] * (20 / 16)  # sub-linear at 20 workers
