"""Figure 10: TPC-C performance with the transformation pipeline.

(a) Throughput vs worker threads for three configurations — transformation
disabled, varlen gather, dictionary compression.  The per-transaction costs
and the interference of the transformation process are *measured* on the
real engine (single worker, the GIL hides core parallelism); the thread
axis is then projected by the calibrated
:class:`~repro.bench.scaling_model.ScalingModel` of the paper's 20-core
machine.

(b) Fraction of cold-table blocks in the COOLING/FROZEN states at the end
of each run.

Paper shape: ≤10% throughput overhead for gather, more for dictionary
compression; near-complete block coverage for gather, lagging coverage for
dictionary compression at high worker counts; scaling degrades at 20
workers when threads outnumber physical cores.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.reporting import format_series, format_table
from repro.bench.scaling_model import ScalingModel
from repro.workloads.tpcc import TpccConfig, TpccDriver

from conftest import publish, scaled

TXNS = scaled(700, minimum=300)
WORKER_AXIS = [1, 2, 4, 8, 12, 16, 20]


def _one_trial(cold_format: str | None) -> tuple[float, float]:
    """One measured TPC-C run under a transformation configuration."""
    db = Database(
        cold_threshold_epochs=1,
        cold_format=cold_format or "gather",
        logging_enabled=True,
    )
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    # The paper runs transformation on a dedicated thread; its cost is
    # *interference* with the workers, not serialized pipeline work.
    # Intervals are scaled to this engine's throughput: the paper's ~10 ms
    # GC period against ~100k txn/s corresponds to tens of ms against our
    # hundreds of txn/s.
    if cold_format is not None:
        db.start_background(gc_interval=0.02, transform_interval=0.05)
    try:
        run = driver.run(transactions_per_worker=TXNS)
    finally:
        if cold_format is not None:
            db.stop_background()
            db.run_maintenance(passes=3)
    return run.throughput, driver.cold_coverage()


@pytest.fixture(scope="module")
def measurements():
    """Best-of-N per configuration, trials interleaved round-robin.

    Single 400-transaction runs swing with machine noise; interleaving the
    configurations' trials exposes them to the same noise environment so
    the *relative* overheads — what the figure is about — stay meaningful.
    """
    configs = {
        "No Transformation": None,
        "Varlen Gather": "gather",
        "Dictionary Compression": "dictionary",
    }
    best: dict[str, tuple[float, float]] = {name: (0.0, 0.0) for name in configs}
    for _ in range(3):
        for name, cold_format in configs.items():
            throughput, coverage = _one_trial(cold_format)
            if throughput > best[name][0]:
                best[name] = (throughput, coverage)
    return best


def test_tpcc_no_transformation(benchmark):
    db = Database(cold_threshold_epochs=1)
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    result = benchmark.pedantic(
        lambda: driver.run(transactions_per_worker=150), rounds=1, iterations=1
    )
    assert result.committed > 0


def test_tpcc_with_gather(benchmark):
    db = Database(cold_threshold_epochs=1, cold_format="gather")
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    result = benchmark.pedantic(
        lambda: driver.run(transactions_per_worker=150, maintenance_every=40),
        rounds=1,
        iterations=1,
    )
    assert result.committed > 0


def test_tpcc_with_dictionary(benchmark):
    db = Database(cold_threshold_epochs=1, cold_format="dictionary")
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    result = benchmark.pedantic(
        lambda: driver.run(transactions_per_worker=150, maintenance_every=40),
        rounds=1,
        iterations=1,
    )
    assert result.committed > 0


def test_report_figure_10(benchmark, measurements):
    def run():
        base_rate = measurements["No Transformation"][0]
        curves = {}
        for name, (rate, _) in measurements.items():
            overhead = max(0.0, 1.0 - rate / base_rate)
            model = ScalingModel(base_rate, transform_overhead=overhead)
            curves[name] = [round(v) for v in model.curve(WORKER_AXIS)]
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig10a_tpcc_throughput",
        format_series(
            "Figure 10a — TPC-C throughput (txn/s; measured 1-worker rates, "
            "modeled thread axis)",
            "workers",
            WORKER_AXIS,
            curves,
        ),
    )
    coverage_rows = [
        (name, f"{coverage * 100:.0f}%")
        for name, (_, coverage) in measurements.items()
        if name != "No Transformation"
    ]
    publish(
        "fig10b_block_coverage",
        format_table(
            "Figure 10b — cold-table blocks in COOLING/FROZEN at end of run",
            ["configuration", "coverage"],
            coverage_rows,
        ),
    )
    # Paper shapes: the transformation's interference is bounded (the
    # paper reports <=10%; this machine resolves the effect to within a
    # ~20% noise band at this scale — the printed curves carry the real
    # numbers); dictionary compression is never materially cheaper than
    # the gather; the curve dips at 20 workers where threads exceed
    # physical cores.
    gather = curves["Varlen Gather"]
    none = curves["No Transformation"]
    dictionary = curves["Dictionary Compression"]
    assert gather[3] >= none[3] * 0.80
    assert dictionary[3] <= gather[3] * 1.10
    assert none[-1] < none[-2] * (20 / 16)  # sub-linear at 20 workers
