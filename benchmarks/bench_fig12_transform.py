"""Figure 12: transformation algorithm throughput.

One transformation pass over a group of blocks whose emptiness varies from
0% to 80%, for four algorithms:

- **Hybrid-Gather** — the paper's two-phase algorithm (compact, then gather),
- **Snapshot** — copy every live tuple into fresh Arrow buffers,
- **In-Place (Transactional)** — do all the work as ordinary transactions,
- **Hybrid-Compress** — two-phase with dictionary compression.

Panels: (a) throughput on the 50%-varlen table, (b) phase breakdown,
(c) all-fixed columns, (d) all-varlen columns.

Paper shape: Hybrid-Gather wins when blocks are nearly full (compaction
degenerates to a bitmap scan); throughput dips as emptiness grows (tuple
movement is random access) and recovers past ~50% empty (fewer tuples
left); Snapshot is flat-ish and overtakes Hybrid around 20% empty;
In-Place pays version maintenance; Hybrid-Compress is an order of
magnitude slower because of the dictionary build.
"""

from __future__ import annotations

import time

import pytest

from repro import Database, obs
from repro.bench.harness import RegistryDelta, format_deltas
from repro.bench.reporting import format_series
from repro.obs import trace
from repro.storage.constants import BlockState
from repro.transform.compaction import execute_compaction, plan_compaction
from repro.transform.dictionary import dictionary_compress_block
from repro.transform.gather import gather_block
from repro.transform.transformer import inplace_transform, snapshot_transform
from repro.workloads.synthetic import SyntheticConfig, build_synthetic_table

from conftest import publish, scaled

EMPTY_AXIS = [0, 1, 5, 10, 20, 40, 60, 80]
N_BLOCKS = scaled(4, minimum=2)


def build(percent_empty: float, column_mix: str = "mixed"):
    db = Database(logging_enabled=False)
    info = build_synthetic_table(
        db,
        "s",
        SyntheticConfig(
            n_blocks=N_BLOCKS, percent_empty=percent_empty, column_mix=column_mix
        ),
    )
    return db, info


def hybrid_pass(db, info, compress: bool = False) -> tuple[float, float, float]:
    """One two-phase pass; returns (total, compaction, gather) seconds.

    Phase timings are sourced from ``repro.obs`` trace spans — the same
    instrumentation the engine's transformer emits — rather than one-off
    ``perf_counter`` bookkeeping (the Fig. 12b panel is a span summary).
    """
    obs.configure(enabled=True)
    tracer = trace.Tracer(capacity=16)
    gather_phase = "transform.dictionary" if compress else "transform.gather"
    blocks = list(info.table.blocks)
    with tracer.span("transform.pass"):
        with tracer.span("transform.compaction"):
            plan = plan_compaction(blocks)
            txn = execute_compaction(db.txn_manager, info.table, plan)
            assert txn is not None
            keep = plan.filled_blocks + (
                [plan.partial_block] if plan.partial_block is not None else []
            )
            for block in keep:
                block.compare_and_swap_state(BlockState.HOT, BlockState.COOLING)
            db.txn_manager.commit(txn)
            db.gc.run_until_quiet()
        with tracer.span(gather_phase):
            for block in keep:
                block.set_state(BlockState.FREEZING)
                if compress:
                    dictionary_compress_block(block)
                else:
                    gather_block(block)
                block.set_state(BlockState.FROZEN)
    summary = tracer.summarize()
    return (
        summary["transform.pass"].total_seconds,
        summary["transform.compaction"].total_seconds,
        summary[gather_phase].total_seconds,
    )


def snapshot_pass(db, info) -> float:
    began = time.perf_counter()
    for block in list(info.table.blocks):
        snapshot_transform(db.txn_manager, info.table, block)
    return time.perf_counter() - began


def inplace_pass(db, info) -> float:
    began = time.perf_counter()
    assert inplace_transform(db.txn_manager, info.table, list(info.table.blocks))
    return time.perf_counter() - began


def blocks_per_sec(seconds: float) -> float:
    return N_BLOCKS / seconds if seconds else float("inf")


def test_hybrid_gather_nearly_full(benchmark):
    db, info = build(percent_empty=1)
    benchmark.pedantic(lambda: hybrid_pass(db, info), rounds=1, iterations=1)


def test_snapshot_nearly_full(benchmark):
    db, info = build(percent_empty=1)
    benchmark.pedantic(lambda: snapshot_pass(db, info), rounds=1, iterations=1)


def test_hybrid_compress_nearly_full(benchmark):
    db, info = build(percent_empty=1)
    benchmark.pedantic(
        lambda: hybrid_pass(db, info, compress=True), rounds=1, iterations=1
    )


def _sweep(column_mix: str):
    throughput = {"Hybrid-Gather": [], "Snapshot": [], "In-Place": [], "Hybrid-Compress": []}
    breakdown = {"Compaction": [], "Varlen-Gather": [], "Dictionary": []}
    for empty in EMPTY_AXIS:
        db, info = build(empty, column_mix)
        total, compaction, gather = hybrid_pass(db, info)
        throughput["Hybrid-Gather"].append(blocks_per_sec(total))
        breakdown["Compaction"].append(blocks_per_sec(compaction))
        breakdown["Varlen-Gather"].append(blocks_per_sec(gather))
        db, info = build(empty, column_mix)
        throughput["Snapshot"].append(blocks_per_sec(snapshot_pass(db, info)))
        db, info = build(empty, column_mix)
        throughput["In-Place"].append(blocks_per_sec(inplace_pass(db, info)))
        db, info = build(empty, column_mix)
        total_c, _, gather_c = hybrid_pass(db, info, compress=True)
        throughput["Hybrid-Compress"].append(blocks_per_sec(total_c))
        breakdown["Dictionary"].append(blocks_per_sec(gather_c))
    return throughput, breakdown


def test_report_figure_12(benchmark):
    def run():
        return _sweep("mixed")

    throughput, breakdown = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig12a_transform_throughput",
        format_series(
            "Figure 12a — transformation throughput, 50% varlen (blocks/s)",
            "%empty",
            EMPTY_AXIS,
            {k: [round(v, 1) for v in vs] for k, vs in throughput.items()},
        ),
    )
    publish(
        "fig12b_phase_breakdown",
        format_series(
            "Figure 12b — phase throughput breakdown, from obs spans (blocks/s)",
            "%empty",
            EMPTY_AXIS,
            {k: [round(v, 1) for v in vs] for k, vs in breakdown.items()},
        ),
    )
    # One representative pass with its engine-side metric delta, via the
    # bench harness + the registry every component publishes into.
    db, info = build(percent_empty=5)
    with RegistryDelta(db.obs) as capture:
        hybrid_pass(db, info)
    publish(
        "fig12_metric_deltas",
        format_deltas(capture.delta, "Figure 12 — one hybrid pass, metric deltas"),
    )
    # Paper shapes on the 50%-varlen table.  (The paper's order-of-magnitude
    # gather-vs-dictionary gap compresses here because interpreter loop
    # overhead dominates both passes — see EXPERIMENTS.md.)
    head = slice(0, 3)

    def mean(values):
        return sum(values) / len(values)

    assert mean(throughput["Hybrid-Gather"][head]) > mean(throughput["Snapshot"][head])
    assert mean(throughput["Hybrid-Gather"][head]) > mean(throughput["In-Place"][head])
    # Dictionary compression must not *beat* the plain gather (a 15% band
    # absorbs single-shot noise; the C++ 10x factor flattens in Python).
    assert mean(throughput["Hybrid-Compress"][head]) < mean(
        throughput["Hybrid-Gather"][head]
    ) * 1.15
    # Compaction is near-free when blocks are full, then becomes the cost.
    assert breakdown["Compaction"][0] > breakdown["Varlen-Gather"][0]
    assert breakdown["Compaction"][4] < breakdown["Compaction"][0]


def test_report_figure_12c_fixed(benchmark):
    throughput, _ = benchmark.pedantic(lambda: _sweep("fixed"), rounds=1, iterations=1)
    publish(
        "fig12c_fixed_columns",
        format_series(
            "Figure 12c — transformation throughput, all fixed-length (blocks/s)",
            "%empty",
            EMPTY_AXIS,
            {k: [round(v, 1) for v in vs] for k, vs in throughput.items()},
        ),
    )
    assert throughput["Hybrid-Gather"][0] > throughput["Snapshot"][0]


def test_report_figure_12d_varlen(benchmark):
    throughput, _ = benchmark.pedantic(lambda: _sweep("varlen"), rounds=1, iterations=1)
    publish(
        "fig12d_varlen_columns",
        format_series(
            "Figure 12d — transformation throughput, all variable-length (blocks/s)",
            "%empty",
            EMPTY_AXIS,
            {k: [round(v, 1) for v in vs] for k, vs in throughput.items()},
        ),
    )
    assert throughput["Hybrid-Gather"][0] > throughput["In-Place"][0]
