"""Shared workload + measurement helpers for the worker-process benches.

Three benchmarks share this machinery: the ``--workers`` axis of
``bench_ablation_parallel.py`` and the measured (not modeled) scaling
curves of ``bench_fig11_row_vs_column.py`` (cold scan) and
``bench_fig15_export.py`` (Flight export).  All of them sweep real
``repro.parallel.WorkerPool`` processes over the same frozen table, so the
numbers are directly comparable and honestly bounded by the machine's
physical cores — on a single-core container the sweep measures the
dispatch/IPC overhead, and the speedup assertions only arm when
``os.cpu_count() >= 4``.
"""

from __future__ import annotations

import time

from repro import ColumnSpec, Database, FLOAT64, INT64, UTF8
from repro.export.flight import export_stream
from repro.parallel import WorkerPool
from repro.query.scan import TableScanner

#: Worker counts where the acceptance thresholds (2x scan, 1.5x export at
#: 4 workers) are meaningful: they need at least 4 real cores.
MIN_CORES_FOR_SPEEDUP_ASSERTS = 4


def build_frozen_db(rows: int, block_size: int = 1 << 14):
    """A fully frozen 3-column table with its shared-memory arena enabled."""
    db = Database(
        logging_enabled=False, cold_threshold_epochs=1, parallel_workers=1
    )
    info = db.create_table(
        "cold",
        [ColumnSpec("id", INT64), ColumnSpec("x", FLOAT64), ColumnSpec("s", UTF8)],
        block_size=block_size,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(rows):
            s = None if i % 13 == 0 else f"payload-{i}-{'ab' * (i % 7)}"
            info.table.insert(txn, {0: i, 1: float(i % 997), 2: s})
    db.freeze_table("cold", max_passes=16)
    assert all(b.shm_descriptor is not None for b in info.table.blocks if b.state.name == "FROZEN")
    return db, info


def measured_scan_rate(db, info, pool=None, repeats: int = 3) -> float:
    """Cold-scan throughput in rows/second (full materialization)."""
    total_rows = 0
    began = time.perf_counter()
    for _ in range(repeats):
        scanner = TableScanner(db.txn_manager, info.table, pool=pool)
        for batch in scanner.batches():
            batch.pylist(0)
            batch.pylist(1)
            batch.pylist(2)
            total_rows += batch.num_rows
    return total_rows / (time.perf_counter() - began)


def measured_export_rate(db, info, pool=None, repeats: int = 3) -> float:
    """Flight serialization throughput in MB/second (no network model)."""
    total_bytes = 0
    began = time.perf_counter()
    for _ in range(repeats):
        stream = export_stream(db.txn_manager, info.table, pool=pool)
        total_bytes += len(stream.payload)
    return total_bytes / 1e6 / (time.perf_counter() - began)


def sweep_workers(db, info, counts, measure, repeats: int = 3) -> dict[int, float]:
    """Measure ``measure(db, info, pool)`` at each worker count.

    Each count gets its own freshly warmed pool so process startup stays
    out of the measured interval; pools are stopped before returning.
    """
    rates: dict[int, float] = {}
    for workers in counts:
        pool = WorkerPool(workers)
        try:
            assert pool.warm(), f"pool with {workers} workers failed to warm"
            rates[workers] = measure(db, info, pool=pool, repeats=repeats)
        finally:
            pool.stop()
    return rates
