"""Figure 11: row-store vs column-store raw storage speed.

Inserts and updates through the same transactional storage layer, with the
row-store simulated as one wide fixed-length column (all attributes
contiguous).  The x axis scales the number of 8-byte attributes; for
inserts it is the tuple width, for updates the number of attributes
modified (out of 64).

Paper shape: no large difference overall (<40% even for inserts); the
column-store *wins* updates that touch few attributes (smaller footprint),
while the row-store edges ahead as the count grows — version maintenance
being the shared fixed cost.  A pure-Python engine exaggerates per-column
dispatch overhead, so the insert gap here is wider than the paper's; the
update crossover is the preserved shape.
"""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.bench.reporting import format_series
from repro.workloads.rowcol import run_inserts, run_updates

from conftest import publish, scaled, worker_counts
from parallel_support import (
    MIN_CORES_FOR_SPEEDUP_ASSERTS,
    build_frozen_db,
    measured_scan_rate,
    sweep_workers,
)

ATTRIBUTE_AXIS = [1, 2, 4, 8, 16, 32, 64]
OPS = scaled(2000, minimum=500)


def _db():
    return Database(logging_enabled=False)


def test_row_insert_wide(benchmark):
    result = benchmark.pedantic(
        lambda: run_inserts(_db(), "row", 64, OPS), rounds=1, iterations=1
    )
    assert result.ops_per_sec > 0


def test_column_insert_wide(benchmark):
    result = benchmark.pedantic(
        lambda: run_inserts(_db(), "column", 64, OPS), rounds=1, iterations=1
    )
    assert result.ops_per_sec > 0


def test_column_update_narrow(benchmark):
    result = benchmark.pedantic(
        lambda: run_updates(_db(), "column", 64, OPS, updated_attributes=1),
        rounds=1,
        iterations=1,
    )
    assert result.ops_per_sec > 0


def test_report_figure_11(benchmark):
    def run():
        series = {
            "Row Insert": [],
            "Column Insert": [],
            "Row Update": [],
            "Column Update": [],
        }
        for attrs in ATTRIBUTE_AXIS:
            series["Row Insert"].append(run_inserts(_db(), "row", attrs, OPS).ops_per_sec)
            series["Column Insert"].append(
                run_inserts(_db(), "column", attrs, OPS).ops_per_sec
            )
            # Updates modify `attrs` of 64 attributes (the paper's x axis).
            series["Row Update"].append(
                run_updates(_db(), "row", 64, OPS, updated_attributes=attrs).ops_per_sec
            )
            series["Column Update"].append(
                run_updates(_db(), "column", 64, OPS, updated_attributes=attrs).ops_per_sec
            )
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig11_row_vs_column",
        format_series(
            "Figure 11 — row vs column storage throughput (ops/s)",
            "#attrs",
            ATTRIBUTE_AXIS,
            {name: [round(v) for v in values] for name, values in series.items()},
        ),
    )
    # The column-store must be competitive on narrow updates (the paper has
    # it slightly ahead; allow timing noise)...
    assert series["Column Update"][0] > series["Row Update"][0] * 0.7
    # ...and the row-store must close the gap decisively by 64 attributes —
    # the crossover trend is the figure's claim.
    narrow_ratio = series["Column Update"][0] / series["Row Update"][0]
    wide_ratio = series["Column Update"][-1] / series["Row Update"][-1]
    assert wide_ratio < narrow_ratio


SCAN_ROWS = scaled(6000, minimum=2000)


def test_report_figure_11_parallel_cold_scan(benchmark, request):
    """The figure's analytics side, *measured*: cold-scan throughput vs
    worker processes over shared-memory frozen blocks.  Until the
    ``repro.parallel`` pool existed this curve could only come from the
    calibrated ``ScalingModel``; now it is a real measurement, bounded by
    this machine's cores."""
    counts = worker_counts(request.config)
    cores = os.cpu_count() or 1

    def run():
        db, info = build_frozen_db(SCAN_ROWS)
        try:
            serial = measured_scan_rate(db, info, pool=None)
            rates = sweep_workers(db, info, counts, measured_scan_rate)
            return serial, rates
        finally:
            db.close()

    serial, rates = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig11_parallel_scan",
        format_series(
            f"Figure 11 (measured scaling) — cold-scan throughput (rows/s), "
            f"{SCAN_ROWS} rows, {cores}-core machine, serial baseline "
            f"{serial:,.0f} rows/s",
            "workers",
            counts,
            {"Cold scan": [round(rates[w]) for w in counts]},
        ),
    )
    assert all(rate > 0 for rate in rates.values())
    if cores >= MIN_CORES_FOR_SPEEDUP_ASSERTS and 4 in rates and 1 in rates:
        # Acceptance: 4 workers at least double 1 worker on a real machine.
        assert rates[4] >= 2.0 * rates[1]
