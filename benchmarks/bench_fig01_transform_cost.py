"""Figure 1: data transformation costs.

The motivation experiment: move a TPC-H LINEITEM table out of an OLTP
system into an analytics runtime three ways —

- **In-Memory**: the table is already columnar Arrow; hand the buffers over
  (the paper's theoretical best case, loading from a buffer in the Python
  runtime),
- **CSV**: export to CSV text and parse it back (PostgreSQL COPY),
- **Python ODBC**: drive every row through a row-oriented wire protocol and
  a driver-side parse.

Paper shape (SF 10): In-Memory 8.38 s ≪ CSV ~284 s ≪ ODBC ~1380 s; query
processing itself is ~0.004% of export time.  The reproduction uses a small
scale factor; the ordering and the orders-of-magnitude gaps are the claim.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.bench.reporting import format_table
from repro.export import postgres_wire
from repro.export.flight import client_receive, export_stream
from repro.frame import DataFrame
from repro.workloads.tpch import LINEITEM_COLUMNS, LineitemGenerator, TpchConfig

_COLUMN_NAMES = [spec.name for spec in LINEITEM_COLUMNS]


def _rows_to_frame(rows):
    """The "load into the dataframe" step shared by the row-based paths."""
    columns = {name: [] for name in _COLUMN_NAMES}
    for row in rows:
        for name, value in zip(_COLUMN_NAMES, row):
            columns[name].append(value)
    return DataFrame(columns)

from conftest import publish, scaled

SCALE_FACTOR = scaled(3000, minimum=500) / 6_000_000  # rows -> SF


@pytest.fixture(scope="module")
def lineitem():
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    generator = LineitemGenerator(TpchConfig(scale_factor=SCALE_FACTOR, block_size=1 << 16))
    info = generator.load_into(db)
    db.freeze_table("lineitem", max_passes=16)
    return db, info, generator


def _in_memory_load(db, info):
    stream = export_stream(db.txn_manager, info.table)
    return DataFrame.from_arrow(client_receive(stream.payload))


def _csv_load(generator):
    raw = generator.to_csv(generator.rows())
    return _rows_to_frame(generator.from_csv(raw))


def _odbc_load(db, info):
    txn = db.txn_manager.begin()
    rows = [tuple(r.to_dict().values()) for _, r in info.table.scan(txn)]
    db.txn_manager.commit(txn)
    raw, _ = postgres_wire.encode_rows(rows)
    return _rows_to_frame(postgres_wire.decode_rows(raw))


def test_in_memory_load(benchmark, lineitem):
    db, info, _ = lineitem
    frame = benchmark(_in_memory_load, db, info)
    assert len(frame) == info.table.live_tuple_count()


def test_csv_load(benchmark, lineitem):
    _, info, generator = lineitem
    frame = benchmark(_csv_load, generator)
    assert len(frame) == info.table.live_tuple_count()


def test_odbc_load(benchmark, lineitem):
    db, info, _ = lineitem
    frame = benchmark(_odbc_load, db, info)
    assert len(frame) == info.table.live_tuple_count()


def test_report_figure_1(benchmark, lineitem):
    db, info, generator = lineitem

    def run():
        results = []
        for name, path in (
            ("In-Memory", lambda: _in_memory_load(db, info)),
            ("CSV", lambda: _csv_load(generator)),
            ("Python ODBC", lambda: _odbc_load(db, info)),
        ):
            began = time.perf_counter()
            path()
            results.append((name, time.perf_counter() - began))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results[0][1]
    rows = [
        (name, f"{seconds:.4f}", f"{seconds / base:.1f}x")
        for name, seconds in results
    ]
    publish(
        "fig01_transform_cost",
        format_table(
            f"Figure 1 — LINEITEM ({info.table.live_tuple_count()} rows) into a dataframe",
            ["method", "seconds", "vs in-memory"],
            rows,
        ),
    )
    # The paper's ordering must hold.
    assert results[0][1] < results[1][1] < results[2][1]
