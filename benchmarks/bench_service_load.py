"""Service front-door load curve: latency and shed rate vs offered rate.

Boots the asyncio transactional server over real sockets with a fixed
admission limit and sweeps an open-loop (constant-arrival-rate) YCSB-style
workload across offered rates from well under the limit to 2x over it.
The robustness claim is the shape of the curve:

* under the limit, nothing sheds and p99 stays flat;
* over the limit, the server sheds the excess *explicitly* (typed
  too-busy / rate-limit responses, never timeouts or errors) and p99 of
  the admitted requests stays bounded because the queue is bounded;
* no request ever observes an unhandled server exception.

Latency is measured from each request's scheduled arrival (open loop),
so queueing delay is not hidden by coordinated omission.
"""

from __future__ import annotations

import pytest

from repro import ColumnSpec, Database
from repro.arrowfmt.datatypes import INT64, UTF8
from repro.cluster import ShardedDatabase
from repro.service.loadgen import LoadgenConfig, run_loadgen_sync
from repro.service.server import ServerThread, ServiceConfig

from conftest import publish, scaled
from repro.bench.reporting import format_table

#: Admission limit the sweep is defined against (requests/second).
LIMIT = 200.0
#: Offered load as a multiple of the admission limit.
RATE_MULTIPLES = (0.25, 0.5, 1.0, 1.5, 2.0)
DURATION = max(1.0, scaled(2) / 2.0)
KEYS = scaled(500, minimum=100)


def _make_db(shards: int):
    columns = [ColumnSpec("key", INT64), ColumnSpec("field0", UTF8)]
    if shards > 1:
        db = ShardedDatabase(n_shards=shards)
        db.create_table("usertable", columns, shard_key="key")
    else:
        db = Database()
        db.create_table("usertable", columns)
    db.create_index("usertable", "by_key", ["key"])
    info = db.catalog.get("usertable")
    with db.transaction() as txn:
        for key in range(KEYS):
            info.table.insert(txn, {0: key, 1: f"value-{key}"})
    return db


def _sweep(db) -> list[list]:
    config = ServiceConfig(
        max_inflight=8, max_queue=16,
        tenant_rate=LIMIT, tenant_burst=LIMIT / 10.0,
    )
    rows = []
    with ServerThread(db, config) as server:
        for multiple in RATE_MULTIPLES:
            rate = LIMIT * multiple
            result = run_loadgen_sync(LoadgenConfig(
                port=server.port, rate=rate, duration=DURATION,
                connections=16, keys=KEYS, deadline_ms=2000.0,
                seed=int(multiple * 100),
            ))
            assert result.errors == 0, "typed sheds only, never errors"
            assert server.server.unhandled_exceptions == 0
            rows.append([
                f"{multiple:.2f}x",
                result.offered,
                result.ok,
                result.shed,
                f"{result.shed_rate * 100.0:.1f}%",
                f"{result.p50_ms:.1f}",
                f"{result.p99_ms:.1f}",
            ])
            if multiple <= 0.5:
                assert result.shed == 0, f"shed below the limit at {rate}/s"
            if multiple >= 2.0:
                assert result.shed > 0, f"no sheds at {rate}/s (2x limit)"
                assert result.p99_ms < 2000.0, "p99 unbounded under overload"
    return rows


@pytest.mark.parametrize("shards", [1, 2])
def test_service_load_curve(benchmark, shards):
    db = _make_db(shards)
    try:
        rows = benchmark.pedantic(_sweep, args=(db,), rounds=1, iterations=1)
    finally:
        db.close()
    label = "1 node" if shards == 1 else f"{shards} shards"
    publish(
        f"service_load_{shards}shard",
        format_table(
            f"Service front door under open-loop load ({label}, "
            f"admission limit {LIMIT:.0f}/s)",
            ["offered", "requests", "ok", "shed", "shed%", "p50 ms", "p99 ms"],
            rows,
        ),
    )
