"""Ablation: analytics in-engine vs export-then-analyze.

Not a paper figure, but the paper's thesis taken one step further: when the
storage format is the analytics format, a query can skip even the network
hand-off.  Compares SUM(amount) three ways — vectorized in-engine over
frozen blocks, Arrow export then client-side aggregation, and PostgreSQL
wire export then client-side aggregation.
"""

from __future__ import annotations

import time

import pytest

from repro import ColumnSpec, Database, FLOAT64, INT64
from repro.bench.reporting import format_table
from repro.export import TableExporter, postgres_wire
from repro.export.flight import client_receive, export_stream
from repro.query import TableScanner, aggregate

from conftest import publish, scaled

ROWS = scaled(30_000, minimum=10_000)


@pytest.fixture(scope="module")
def sales():
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "sales",
        [ColumnSpec("region", INT64), ColumnSpec("amount", FLOAT64)],
        block_size=1 << 16,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(ROWS):
            info.table.insert(txn, {0: i % 8, 1: float(i % 1000)})
    db.freeze_table("sales")
    return db, info


def in_engine(db, info) -> float:
    return aggregate(
        TableScanner(db.txn_manager, info.table, column_ids=[1]), value_column=1
    ).total


def via_flight(db, info) -> float:
    table = client_receive(export_stream(db.txn_manager, info.table).payload)
    return sum(v for v in table.column_values("amount") if v is not None)


def via_postgres(db, info) -> float:
    txn = db.txn_manager.begin()
    rows = [tuple(r.to_dict().values()) for _, r in info.table.scan(txn)]
    db.txn_manager.commit(txn)
    raw, _ = postgres_wire.encode_rows(rows)
    decoded = postgres_wire.decode_rows(raw)
    return sum(float(r[1]) for r in decoded if r[1] is not None)


def test_in_engine_aggregate(benchmark, sales):
    db, info = sales
    total = benchmark(in_engine, db, info)
    assert total > 0


def test_flight_then_aggregate(benchmark, sales):
    db, info = sales
    total = benchmark.pedantic(lambda: via_flight(db, info), rounds=1, iterations=1)
    assert total > 0


def test_report_analytics_ablation(benchmark, sales):
    db, info = sales

    def run():
        rows = []
        for name, fn in (
            ("In-engine (vectorized)", in_engine),
            ("Arrow export + client agg", via_flight),
            ("PG wire export + client agg", via_postgres),
        ):
            began = time.perf_counter()
            total = fn(db, info)
            rows.append((name, time.perf_counter() - began, total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_analytics",
        format_table(
            f"Ablation — SUM(amount) over {ROWS} rows, three pipelines",
            ["pipeline", "seconds", "result"],
            [(n, f"{s:.4f}", f"{t:,.0f}") for n, s, t in rows],
        ),
    )
    totals = {t for _, _, t in rows}
    assert len(totals) == 1  # all three agree on the answer
    in_engine_s, flight_s, pg_s = (s for _, s, _ in rows)
    assert in_engine_s < flight_s < pg_s
