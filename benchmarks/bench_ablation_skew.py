"""Ablation: access skew vs frozen coverage (the hot/cold premise).

Section 4.1 rests on an empirical claim: "Typical OLTP workloads modify
only a small portion of a database at any given time, while the other
parts of the database are mostly accessed by read-only queries."  This
bench varies that premise directly with YCSB zipfian skew: the more the
write traffic concentrates, the more of the table the pipeline can keep
frozen — and the faster exports get.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.reporting import format_table
from repro.export import TableExporter
from repro.workloads.ycsb import YcsbConfig, YcsbDriver

from conftest import publish, scaled

THETAS = [0.0, 0.5, 0.9, 0.99]
RECORDS = scaled(5000, minimum=3000)
#: Small burst over many small blocks: skew determines how many distinct
#: blocks the writes land in.
BURST_OPS = scaled(60, minimum=40)


def run_with_skew(theta: float):
    """Freeze the whole table, apply one burst of skewed updates, and
    measure how much of it the burst reheated (plus export speed after)."""
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    config = YcsbConfig(
        records=RECORDS,
        zipf_theta=theta,
        read_proportion=0.0,
        update_proportion=1.0,
        insert_proportion=0.0,
        block_size=1 << 12,
    )
    driver = YcsbDriver(db, config, seed=9)
    driver.setup()
    db.freeze_table("usertable", max_passes=16)
    assert driver.frozen_fraction() > 0.5
    driver.run(BURST_OPS)  # the update burst
    frozen = driver.frozen_fraction()
    export = TableExporter(db.txn_manager, driver.info.table).export("flight")
    return frozen, export.throughput_mb_per_sec


def test_uniform_access(benchmark):
    frozen, _ = benchmark.pedantic(lambda: run_with_skew(0.0), rounds=1, iterations=1)
    assert 0.0 <= frozen <= 1.0


def test_high_skew(benchmark):
    frozen, _ = benchmark.pedantic(lambda: run_with_skew(0.99), rounds=1, iterations=1)
    assert 0.0 <= frozen <= 1.0


def test_report_skew_ablation(benchmark):
    def run():
        return {theta: run_with_skew(theta) for theta in THETAS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_skew",
        format_table(
            f"Ablation — write skew vs frozen coverage "
            f"({RECORDS} records, burst of {BURST_OPS} updates)",
            ["zipf theta", "%frozen", "flight MB/s"],
            [
                (theta, f"{frozen * 100:.0f}%", f"{mbps:,.1f}")
                for theta, (frozen, mbps) in results.items()
            ],
        ),
    )
    # More skew -> more of the table stays frozen.
    coverages = [results[t][0] for t in THETAS]
    assert coverages[-1] >= coverages[0]
    assert coverages[-1] > 0
