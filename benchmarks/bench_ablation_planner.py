"""Ablation: approximate vs optimal compaction planning (Section 4.3).

The optimal plan needs an extra pass to try every candidate partial block;
the approximate plan picks one arbitrarily and is provably within
``t mod s`` movements.  The paper observes "only marginal reduction in
movements, which does not always justify the extra step" — this bench
measures both the movement savings and the planning-time cost.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.bench.reporting import format_table
from repro.transform.compaction import plan_compaction, plan_compaction_optimal
from repro.workloads.synthetic import SyntheticConfig, build_synthetic_table

from conftest import publish, scaled

EMPTY_AXIS = [1, 10, 40, 80]
N_BLOCKS = scaled(8, minimum=4)


def build(percent_empty: float):
    db = Database(logging_enabled=False)
    info = build_synthetic_table(
        db, "s", SyntheticConfig(n_blocks=N_BLOCKS, percent_empty=percent_empty)
    )
    return info.table.blocks


def test_approximate_planning(benchmark):
    blocks = build(40)
    plan = benchmark(plan_compaction, blocks)
    assert plan.movement_count >= 0


def test_optimal_planning(benchmark):
    blocks = build(40)
    plan = benchmark(plan_compaction_optimal, blocks)
    assert plan.movement_count >= 0


def test_report_planner_ablation(benchmark):
    def run():
        rows = []
        for empty in EMPTY_AXIS:
            blocks = build(empty)
            plan_compaction(blocks)  # warm caches so timings are comparable
            began = time.perf_counter()
            approx = plan_compaction(blocks)
            approx_seconds = time.perf_counter() - began
            began = time.perf_counter()
            optimal = plan_compaction_optimal(blocks)
            optimal_seconds = time.perf_counter() - began
            rows.append(
                (
                    empty,
                    approx.movement_count,
                    optimal.movement_count,
                    approx.movement_count - optimal.movement_count,
                    approx_seconds,
                    optimal_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_planner",
        format_table(
            "Ablation — approximate vs optimal compaction plans",
            ["%empty", "approx moves", "optimal moves", "saved", "approx s", "optimal s"],
            [
                (e, a, o, saved, f"{ta:.4f}", f"{to:.4f}")
                for e, a, o, saved, ta, to in rows
            ],
        ),
    )
    slots_per_block = build(1)[0].layout.num_slots
    for _, approx_moves, optimal_moves, saved, *_ in rows:
        assert 0 <= saved <= slots_per_block  # the paper's t-mod-s bound
