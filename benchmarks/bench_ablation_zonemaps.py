"""Ablation: zone-map pruning on frozen blocks.

A natural extension of the gather's metadata pass (the paper: it "computes
metadata information, such as null count, for Arrow's metadata"): min/max
zone maps per frozen block let selective scans skip blocks entirely.  This
bench measures a range aggregate with and without pruning across
selectivities.
"""

from __future__ import annotations

import time

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.bench.reporting import format_table
from repro.query import TableScanner, aggregate

from conftest import publish, scaled

ROWS = scaled(40_000, minimum=15_000)
SELECTIVITIES = [0.01, 0.1, 0.5, 1.0]


@pytest.fixture(scope="module")
def frozen_table():
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8)],
        block_size=1 << 14,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(ROWS):
            info.table.insert(txn, {0: i, 1: f"row-{i}"})
    db.freeze_table("t")
    return db, info


def ranged_sum(db, info, low, high, pruned: bool):
    filters = {0: (low, high)} if pruned else None
    scanner = TableScanner(
        db.txn_manager, info.table, column_ids=[0], range_filters=filters
    )
    result = aggregate(
        scanner, value_column=0, filter_column=0,
        predicate=lambda col: (col >= low) & (col <= high),
    )
    return result, scanner


def test_pruned_scan(benchmark, frozen_table):
    db, info = frozen_table
    result, _ = benchmark.pedantic(
        lambda: ranged_sum(db, info, 0, ROWS // 100, pruned=True),
        rounds=1, iterations=1,
    )
    assert result.count == ROWS // 100 + 1


def test_unpruned_scan(benchmark, frozen_table):
    db, info = frozen_table
    result, _ = benchmark.pedantic(
        lambda: ranged_sum(db, info, 0, ROWS // 100, pruned=False),
        rounds=1, iterations=1,
    )
    assert result.count == ROWS // 100 + 1


def test_report_zonemap_ablation(benchmark, frozen_table):
    db, info = frozen_table

    def run():
        rows = []
        for selectivity in SELECTIVITIES:
            high = int(ROWS * selectivity) - 1
            began = time.perf_counter()
            pruned_result, pruned_scanner = ranged_sum(db, info, 0, high, True)
            pruned_seconds = time.perf_counter() - began
            began = time.perf_counter()
            full_result, _ = ranged_sum(db, info, 0, high, False)
            full_seconds = time.perf_counter() - began
            assert pruned_result.total == full_result.total
            rows.append(
                (
                    selectivity,
                    pruned_scanner.blocks_pruned,
                    pruned_seconds,
                    full_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_zonemaps",
        format_table(
            f"Ablation — zone-map pruning ({ROWS} rows)",
            ["selectivity", "blocks pruned", "pruned s", "full-scan s"],
            [(s, p, f"{a:.4f}", f"{b:.4f}") for s, p, a, b in rows],
        ),
    )
    # High-selectivity queries prune most blocks and finish faster.
    assert rows[0][1] > 0
    assert rows[0][2] < rows[0][3]
    # Selectivity 1.0 prunes nothing.
    assert rows[-1][1] == 0
