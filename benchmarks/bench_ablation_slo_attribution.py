"""Ablation: cost of request-scoped tail-latency attribution.

The attribution stack added for the SLO work rides every request: a
phase-stamped :class:`~repro.obs.slo.RequestLifecycle`, histogram
exemplars, tail-sampled traces, and per-tenant SLO accounting.  Like the
flight recorder before it, the design bet is that all of it rides along
for (nearly) free — this benchmark enforces the same <5% gate on two
paths:

* **engine path** — a TPC-C-lite loop run bare vs. under an activated
  lifecycle: every deep ``stamp_phase`` site (retry backoff, fsync waits)
  flips from the null fast path to live stamping;
* **service path** — closed-loop reads through the real socket server
  with the full stack on (exemplars, tail sampler, SLO tracking) vs.
  observability disabled entirely.

A microbench pins the per-call cost of ``stamp_phase`` itself in both
states, because that is the branch every engine layer now carries.
"""

from __future__ import annotations

import time

import pytest

from repro import ColumnSpec, Database, obs
from repro.arrowfmt.datatypes import INT64, UTF8
from repro.bench.reporting import format_table
from repro.obs.slo import RequestLifecycle, stamp_phase
from repro.service import ServiceClient
from repro.service.server import ServerThread, ServiceConfig
from repro.workloads.tpcc import TpccConfig, TpccDriver

from conftest import publish, scaled

TXNS = scaled(400, minimum=150)
REQUESTS = scaled(400, minimum=150)
TRIALS = 5
GATE = 0.05


@pytest.fixture(autouse=True)
def _restore_obs_state():
    was = obs.is_enabled()
    yield
    obs.configure(enabled=was, exemplars=False)


# --------------------------------------------------------------------- #
# engine path: TPC-C under an activated lifecycle                        #
# --------------------------------------------------------------------- #


def _engine_trial(active: bool) -> tuple[float, int]:
    obs.configure(enabled=True)
    db = Database(cold_threshold_epochs=1)
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    lifecycle = RequestLifecycle(1, op="bench")
    began = time.perf_counter()
    if active:
        with lifecycle.activate():
            run = driver.run(transactions_per_worker=TXNS)
    else:
        run = driver.run(transactions_per_worker=TXNS)
    elapsed = time.perf_counter() - began
    return elapsed, run.committed


# --------------------------------------------------------------------- #
# service path: closed-loop reads over a real socket                     #
# --------------------------------------------------------------------- #


def _service_trial(config: str) -> tuple[float, int]:
    """One closed-loop read run: ``disabled`` (obs off entirely, context
    only), ``lean`` (obs on, no exemplars, no tail sampler — the
    established baseline), ``full`` (exemplars + a deciding tail
    sampler)."""
    full = config == "full"
    obs.configure(enabled=config != "disabled")
    columns = [ColumnSpec("key", INT64), ColumnSpec("field0", UTF8)]
    db = Database()
    db.create_table("usertable", columns)
    db.create_index("usertable", "by_key", ["key"])
    info = db.catalog.get("usertable")
    keys = 100
    with db.transaction() as txn:
        for key in range(keys):
            info.table.insert(txn, {0: key, 1: f"v{key}"})
    config = ServiceConfig(
        exemplars=full,
        # A threshold forces the sampler to *decide* per trace (the
        # expensive shape); most traces drop, as in production.
        tail_sample_threshold_ms=50.0 if full else None,
    )
    server = ServerThread(db, config).start()
    served = 0
    try:
        with ServiceClient(port=server.port) as client:
            began = time.perf_counter()
            for i in range(REQUESTS):
                if client.read("usertable", "by_key", (i % keys,)).ok:
                    served += 1
            elapsed = time.perf_counter() - began
    finally:
        server.stop()
        db.close()
    return elapsed, served


@pytest.fixture(scope="module")
def measurements():
    _engine_trial(True)  # warm caches/allocator before measuring anything
    trials = {
        "engine bare": lambda: _engine_trial(False),
        "engine attributed": lambda: _engine_trial(True),
        "service disabled": lambda: _service_trial("disabled"),
        "service lean": lambda: _service_trial("lean"),
        "service full": lambda: _service_trial("full"),
    }
    best = {name: (float("inf"), 0) for name in trials}
    for _ in range(TRIALS):
        # Interleaved so every configuration sees the same machine noise.
        for name, trial in trials.items():
            result = trial()
            if result[0] < best[name][0]:
                best[name] = result
    return best


def test_attribution_overhead_under_five_percent(benchmark, measurements):
    def run():
        return {
            name: count / elapsed
            for name, (elapsed, count) in measurements.items()
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    engine_overhead = (
        measurements["engine attributed"][0] / measurements["engine bare"][0] - 1.0
    )
    service_overhead = (
        measurements["service full"][0] / measurements["service lean"][0] - 1.0
    )
    obs_context = (
        measurements["service lean"][0] / measurements["service disabled"][0] - 1.0
    )
    publish(
        "ablation_slo_attribution",
        format_table(
            f"Ablation — request-attribution overhead (TPC-C {TXNS} txns, "
            f"service {REQUESTS} reads, best of {TRIALS})",
            ["configuration", "ops/s", "overhead"],
            [
                ("engine, no lifecycle", f"{rates['engine bare']:,.0f}", "—"),
                (
                    "engine, lifecycle active",
                    f"{rates['engine attributed']:,.0f}",
                    f"{engine_overhead * 100:+.1f}%",
                ),
                ("service, obs on (baseline)", f"{rates['service lean']:,.0f}", "—"),
                (
                    "service, + exemplars + tail sampler",
                    f"{rates['service full']:,.0f}",
                    f"{service_overhead * 100:+.1f}%",
                ),
                (
                    "service, obs disabled (context)",
                    f"{rates['service disabled']:,.0f}",
                    f"{-obs_context * 100 / (1 + obs_context):+.1f}% vs baseline",
                ),
            ],
        ),
    )
    assert measurements["engine bare"][1] == measurements["engine attributed"][1] > 0
    assert (
        measurements["service lean"][1]
        == measurements["service full"][1]
        == measurements["service disabled"][1]
        > 0
    )
    assert engine_overhead < GATE, (
        f"activated lifecycle cost {engine_overhead * 100:.1f}% on the engine "
        "path; stamp_phase has regressed"
    )
    assert service_overhead < GATE, (
        f"full attribution cost {service_overhead * 100:.1f}% on the service "
        "path; the per-request stack has regressed"
    )


def _per_call_cost(fn, calls: int = 100_000) -> float:
    began = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - began) / calls


def test_stamp_phase_call_cost(benchmark):
    """The branch every engine layer carries must stay sub-microsecond
    when no request is active (the overwhelmingly common case)."""

    def inactive():
        with stamp_phase("wal.fsync_wait"):
            pass

    lifecycle = RequestLifecycle(1, op="bench")

    def active():
        with stamp_phase("wal.fsync_wait"):
            pass

    idle_cost = _per_call_cost(inactive)
    with lifecycle.activate():
        live_cost = _per_call_cost(active)
    benchmark.pedantic(inactive, rounds=1, iterations=1000)
    publish(
        "ablation_slo_stamp_cost",
        format_table(
            "stamp_phase per-call cost",
            ["state", "ns/call"],
            [
                ("no active request", f"{idle_cost * 1e9:,.0f}"),
                ("request active", f"{live_cost * 1e9:,.0f}"),
            ],
        ),
    )
    assert idle_cost < 2e-6, (
        f"inactive stamp_phase costs {idle_cost * 1e9:.0f}ns/call; the "
        "fast path must stay a thread-local load and a branch"
    )
