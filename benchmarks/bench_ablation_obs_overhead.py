"""Ablation: cost of the repro.obs observability subsystem.

A TPC-C-lite transaction loop is timed with metrics/span recording enabled
and disabled.  The sharded counters and class-based spans are designed so
the enabled path stays within a few percent of disabled, and the disabled
path degenerates to one attribute check per instrumentation site — this
benchmark enforces both properties:

* enabled throughput ≥ 95% of disabled throughput (best-of-N, trials
  interleaved so both configurations see the same machine noise);
* the disabled fast path of every primitive (counter inc, histogram
  observe, span enter/exit) costs well under a microsecond per call.
"""

from __future__ import annotations

import time

import pytest

from repro import Database, obs
from repro.bench.harness import RegistryDelta
from repro.bench.reporting import format_table
from repro.obs.registry import Counter, Histogram
from repro.obs.trace import Tracer
from repro.workloads.tpcc import TpccConfig, TpccDriver

from conftest import publish, publish_deltas, scaled

TXNS = scaled(500, minimum=200)
TRIALS = 5


@pytest.fixture(autouse=True)
def _restore_obs_state():
    was = obs.is_enabled()
    yield
    obs.configure(enabled=was)


def _one_trial(enabled: bool) -> tuple[float, int, dict]:
    """One timed TPC-C run; returns (seconds, committed, metric deltas)."""
    obs.configure(enabled=enabled)
    db = Database(cold_threshold_epochs=1, logging_enabled=True)
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    with RegistryDelta(db.obs) as capture:
        began = time.perf_counter()
        run = driver.run(transactions_per_worker=TXNS)
        elapsed = time.perf_counter() - began
    return elapsed, run.committed, capture.delta


@pytest.fixture(scope="module")
def measurements():
    _one_trial(True)  # warm caches/allocator before measuring anything
    best = {True: (float("inf"), 0, {}), False: (float("inf"), 0, {})}
    for _ in range(TRIALS):
        for enabled in (False, True):
            trial = _one_trial(enabled)
            if trial[0] < best[enabled][0]:
                best[enabled] = trial
    return best


def _per_call_cost(fn, calls: int = 200_000) -> float:
    began = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - began) / calls


def test_enabled_overhead_under_five_percent(benchmark, measurements):
    def run():
        t_enabled, committed_on, _ = measurements[True]
        t_disabled, committed_off, _ = measurements[False]
        return {
            "enabled_txn_s": committed_on / t_enabled,
            "disabled_txn_s": committed_off / t_disabled,
            "overhead": t_enabled / t_disabled - 1.0,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_obs_overhead",
        format_table(
            f"Ablation — obs subsystem overhead (TPC-C-lite, {TXNS} txns, "
            f"best of {TRIALS})",
            ["configuration", "txn/s", "overhead"],
            [
                ("obs disabled", f"{stats['disabled_txn_s']:,.0f}", "—"),
                (
                    "obs enabled",
                    f"{stats['enabled_txn_s']:,.0f}",
                    f"{stats['overhead'] * 100:+.1f}%",
                ),
            ],
        ),
    )
    publish_deltas(
        "ablation_obs_overhead_deltas",
        measurements[True][2],
        "Ablation — engine work during the enabled run (from obs registry)",
    )
    assert measurements[True][1] == measurements[False][1] > 0
    assert stats["overhead"] < 0.05, (
        f"obs-enabled run was {stats['overhead'] * 100:.1f}% slower; "
        "the registry hot path has regressed"
    )


def test_disabled_path_is_near_noop(benchmark):
    obs.configure(enabled=False)
    counter = Counter("bench.noop_total")
    hist = Histogram("bench.noop_seconds")
    tracer = Tracer(capacity=8)

    costs = benchmark.pedantic(
        lambda: {
            "counter.inc": _per_call_cost(counter.inc),
            "histogram.observe": _per_call_cost(lambda: hist.observe(0.1)),
            "span": _per_call_cost(lambda: tracer.span("bench.noop").__enter__()),
        },
        rounds=1,
        iterations=1,
    )
    publish(
        "ablation_obs_disabled_path",
        format_table(
            "Ablation — disabled-path cost per instrumentation call",
            ["primitive", "ns/call"],
            [(name, f"{cost * 1e9:,.0f}") for name, cost in costs.items()],
        ),
    )
    assert counter.value == 0
    assert hist.snapshot().count == 0
    assert len(tracer) == 0
    for name, cost in costs.items():
        assert cost < 5e-7, f"disabled {name} costs {cost * 1e9:.0f} ns/call"
