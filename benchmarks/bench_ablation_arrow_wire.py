"""Ablation: Arrow on the wire vs Arrow in storage (Sections 5 & 6.3).

The paper's closing argument: "Using Arrow as a drop-in replacement wire
protocol in the current architecture does not achieve its full potential.
Instead, storing data in a common format reduces this cost and boosts data
export performance."  This bench isolates the two effects by exporting the
same frozen table through:

- the row-based PostgreSQL protocol (baseline),
- the vectorized wire protocol (better batching, still converts),
- Arrow **on the wire only** (converts every value into Arrow at export),
- Arrow **native** (Flight: ships the storage buffers as-is).
"""

from __future__ import annotations

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.bench.reporting import format_table
from repro.export import TableExporter

from conftest import publish, scaled

ROWS = scaled(8000, minimum=3000)
METHODS = ["postgres", "vectorized", "arrow-wire", "flight"]


@pytest.fixture(scope="module")
def frozen_table():
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "t",
        [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8)],
        block_size=1 << 16,
        watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(ROWS):
            info.table.insert(txn, {0: i, 1: f"payload-{i}-long-enough-to-spill"})
    db.freeze_table("t")
    return db, info


def test_arrow_wire_export(benchmark, frozen_table):
    db, info = frozen_table
    exporter = TableExporter(db.txn_manager, info.table)
    result = benchmark.pedantic(lambda: exporter.export("arrow-wire"), rounds=1, iterations=1)
    assert result.rows == ROWS


def test_native_flight_export(benchmark, frozen_table):
    db, info = frozen_table
    exporter = TableExporter(db.txn_manager, info.table)
    result = benchmark.pedantic(lambda: exporter.export("flight"), rounds=1, iterations=1)
    assert result.rows == ROWS


def test_report_arrow_wire_ablation(benchmark, frozen_table):
    db, info = frozen_table
    exporter = TableExporter(db.txn_manager, info.table)

    def run():
        return {m: exporter.export(m) for m in METHODS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_arrow_wire",
        format_table(
            "Ablation — Arrow on the wire vs Arrow in storage "
            f"({ROWS} rows, fully frozen)",
            ["method", "MB/s", "server ms", "client ms"],
            [
                (
                    m,
                    f"{r.throughput_mb_per_sec:,.1f}",
                    f"{r.serialization_seconds * 1000:.1f}",
                    f"{r.client_seconds * 1000:.1f}",
                )
                for m, r in results.items()
            ],
        ),
    )
    # Arrow on the wire helps (no client parse) but native storage is the
    # step change: the server-side serialization disappears.
    assert results["arrow-wire"].client_seconds < results["vectorized"].client_seconds
    assert (
        results["flight"].serialization_seconds
        < results["arrow-wire"].serialization_seconds / 2
    )
    assert (
        results["flight"].throughput_mb_per_sec
        > results["arrow-wire"].throughput_mb_per_sec
    )
