"""Ablation: the cold-block detection threshold (Section 4.2).

The paper: "A threshold that is too low reduces transactional performance
because of wasted resources from frequent transformations.  But setting it
too high reduces the efficiency of readers."  This bench sweeps the
threshold (in GC epochs) on a TPC-C run and reports throughput, coverage,
and how often the pipeline's work was wasted (freezes preempted by
writers, compactions aborted).
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.reporting import format_table
from repro.workloads.tpcc import TpccConfig, TpccDriver

from conftest import publish, scaled

THRESHOLDS = [1, 2, 4, 8]
TXNS = scaled(300, minimum=150)


def run_with_threshold(threshold: int):
    db = Database(cold_threshold_epochs=threshold)
    driver = TpccDriver(db, TpccConfig.small())
    driver.setup()
    run = driver.run(transactions_per_worker=TXNS, maintenance_every=30)
    stats = db.transformer.stats
    wasted = stats.freezes_preempted + stats.groups_aborted
    db.run_maintenance(passes=3)
    return run.throughput, driver.cold_coverage(), stats.blocks_frozen, wasted


def test_aggressive_threshold(benchmark):
    result = benchmark.pedantic(lambda: run_with_threshold(1), rounds=1, iterations=1)
    assert result[0] > 0


def test_lazy_threshold(benchmark):
    result = benchmark.pedantic(lambda: run_with_threshold(8), rounds=1, iterations=1)
    assert result[0] > 0


def test_report_threshold_ablation(benchmark):
    def run():
        return {t: run_with_threshold(t) for t in THRESHOLDS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_cold_threshold",
        format_table(
            "Ablation — cold-block threshold (GC epochs)",
            ["threshold", "txn/s", "coverage", "blocks frozen", "wasted work"],
            [
                (t, f"{thr:,.0f}", f"{cov * 100:.0f}%", frozen, wasted)
                for t, (thr, cov, frozen, wasted) in results.items()
            ],
        ),
    )
    # A lazier threshold must not transform more than the aggressive one.
    assert results[THRESHOLDS[-1]][2] <= results[THRESHOLDS[0]][2]
