"""Ablation: the VarlenEntry inline threshold (Figure 6's 12-byte rule).

Values at or under 12 bytes live entirely inside the 16-byte entry — no
out-of-line allocation on write, no pointer chase on read, nothing to
gather.  This bench measures update throughput and gather cost for value
sizes straddling the threshold, quantifying what the inline optimization
buys.
"""

from __future__ import annotations

import time

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.bench.reporting import format_table
from repro.storage.constants import BlockState, VARLEN_INLINE_LIMIT
from repro.transform.gather import gather_block

from conftest import publish, scaled

VALUE_SIZES = [4, 8, 12, 13, 16, 24, 64]
OPS = scaled(3000, minimum=1000)


def build(value_size: int):
    db = Database(logging_enabled=False)
    info = db.create_table(
        "t", [ColumnSpec("id", INT64), ColumnSpec("v", UTF8)], block_size=1 << 16
    )
    slots = []
    with db.transaction() as txn:
        for i in range(2000):
            slots.append(info.table.insert(txn, {0: i, 1: "x" * value_size}))
    db.quiesce()
    return db, info, slots


def measure_updates(value_size: int) -> float:
    db, info, slots = build(value_size)
    payload = "y" * value_size
    txn = db.begin()
    began = time.perf_counter()
    for i in range(OPS):
        info.table.update(txn, slots[i % len(slots)], {1: payload})
    elapsed = time.perf_counter() - began
    db.commit(txn)
    return OPS / elapsed


def measure_gather(value_size: int) -> float:
    db, info, _ = build(value_size)
    block = info.table.blocks[0]
    block.set_state(BlockState.FREEZING)
    began = time.perf_counter()
    gather_block(block)
    return time.perf_counter() - began


def test_update_inline(benchmark):
    assert benchmark.pedantic(lambda: measure_updates(8), rounds=1, iterations=1) > 0


def test_update_out_of_line(benchmark):
    assert benchmark.pedantic(lambda: measure_updates(64), rounds=1, iterations=1) > 0


def test_report_inline_threshold_ablation(benchmark):
    def run():
        rows = []
        for size in VALUE_SIZES:
            update_rate = measure_updates(size)
            gather_seconds = measure_gather(size)
            rows.append((size, size <= VARLEN_INLINE_LIMIT, update_rate, gather_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_varlen_inline",
        format_table(
            "Ablation — VarlenEntry inline threshold (12 bytes)",
            ["value bytes", "inlined", "updates/s", "gather s"],
            [(s, "yes" if i else "no", f"{u:,.0f}", f"{g:.4f}") for s, i, u, g in rows],
        ),
    )
    # In C++ inlining avoids a malloc and a pointer chase per write; in
    # Python dict-backed heap ops are C-speed, so the write-side win does
    # not reproduce.  The *gather-side* win does: inline values need no
    # entry rewrite and no heap reclamation.
    inlined_gather = [g for s, i, _, g in rows if i]
    spilled_gather = [g for s, i, _, g in rows if not i]
    assert sum(inlined_gather) / len(inlined_gather) < sum(spilled_gather) / len(spilled_gather)
