"""Figure 14: sensitivity to the compaction group size.

Larger groups let the planner consolidate tuples across more blocks and
free more of them, but the compacting transaction's write-set grows with
the group, raising its abort exposure.  The paper sweeps group sizes
{1, 10, 50, 100, 250, 500} over 500 blocks; this reproduction keeps the
same ratios over a smaller block count.

Paper shape: (a) at low emptiness only large groups free any blocks; as
emptiness grows, small groups do nearly as well and big groups add little.
(b) write-set size grows with group size, a diminishing-returns trade
that makes mid-sized groups (10–50) the sweet spot.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.reporting import format_series
from repro.transform.compaction import execute_compaction, plan_compaction
from repro.workloads.synthetic import SyntheticConfig, build_synthetic_table

from conftest import publish, scaled

EMPTY_AXIS = [1, 5, 10, 20, 40, 60, 80]
TOTAL_BLOCKS = scaled(20, minimum=10)
GROUP_SIZES = [1, 2, 5, 10, TOTAL_BLOCKS]  # same spread, smaller canvas


def build(percent_empty: float):
    db = Database(logging_enabled=False)
    info = build_synthetic_table(
        db,
        "s",
        SyntheticConfig(
            n_blocks=TOTAL_BLOCKS, percent_empty=percent_empty, block_size=1 << 14
        ),
    )
    return db, info


def one_pass(db, info, group_size: int) -> tuple[int, int]:
    """Compact in groups of ``group_size``; returns (blocks freed, max
    write-set ops of any single compaction transaction)."""
    blocks = list(info.table.blocks)
    freed = 0
    max_write_set = 0
    for start in range(0, len(blocks), group_size):
        group = blocks[start : start + group_size]
        plan = plan_compaction(group)
        txn = execute_compaction(db.txn_manager, info.table, plan)
        if txn is None:
            continue
        db.txn_manager.commit(txn)
        max_write_set = max(max_write_set, len(txn.undo_buffer))
        freed += sum(1 for b in plan.empty_blocks)
    return freed, max_write_set


def test_small_group_pass(benchmark):
    db, info = build(20)
    benchmark.pedantic(lambda: one_pass(db, info, 2), rounds=1, iterations=1)


def test_large_group_pass(benchmark):
    db, info = build(20)
    benchmark.pedantic(lambda: one_pass(db, info, TOTAL_BLOCKS), rounds=1, iterations=1)


def test_report_figure_14(benchmark):
    def run():
        freed = {f"group={g}": [] for g in GROUP_SIZES}
        write_sets = {f"group={g}": [] for g in GROUP_SIZES}
        for empty in EMPTY_AXIS:
            for group_size in GROUP_SIZES:
                db, info = build(empty)
                blocks_freed, max_ws = one_pass(db, info, group_size)
                freed[f"group={group_size}"].append(blocks_freed)
                write_sets[f"group={group_size}"].append(max_ws)
        return freed, write_sets

    freed, write_sets = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig14a_blocks_freed",
        format_series(
            f"Figure 14a — blocks freed in one pass over {TOTAL_BLOCKS} blocks",
            "%empty",
            EMPTY_AXIS,
            freed,
        ),
    )
    publish(
        "fig14b_write_set_size",
        format_series(
            "Figure 14b — max compaction-transaction write-set (ops)",
            "%empty",
            EMPTY_AXIS,
            write_sets,
        ),
    )
    smallest, largest = f"group={GROUP_SIZES[0]}", f"group={GROUP_SIZES[-1]}"
    mid = f"group={GROUP_SIZES[2]}"
    # Group size 1 cannot consolidate across blocks: it frees almost nothing
    # at any emptiness, and at 1% empty even large groups struggle.
    assert freed[smallest][-1] <= freed[mid][-1]
    assert freed[largest][0] >= freed[smallest][0]
    # At high emptiness, mid-sized groups free nearly as much as the largest
    # — the diminishing return that makes 10-50 the paper's sweet spot.
    assert freed[mid][-1] >= freed[largest][-1] * 0.7
    # Write sets grow with group size.
    assert write_sets[largest][2] >= write_sets[mid][2] >= write_sets[smallest][2]
