"""Ablation: cost of the cross-process telemetry relay on the parallel scan.

The fig11 cold-scan path dispatches fragments to worker processes; with a
registry attached, every fragment also carries a telemetry payload back —
worker metric deltas, staged events, finished spans — which the
coordinator merges into labeled series.  The relay is designed to ride
piggyback on result messages the pool was already sending, so the whole
plane must cost a few percent at most:

* relay-on scan throughput ≥ 95% of relay-off (median of N trials,
  interleaved so both configurations see the same machine noise);
* the relay-on run must actually relay — nonzero worker-labeled counter
  series after the measured interval — so the bench cannot silently
  measure a disabled path.
"""

from __future__ import annotations

import os
import statistics

import pytest

from repro import obs
from repro.obs.recorder import Recorder
from repro.obs.registry import MetricRegistry
from repro.parallel import WorkerPool
from repro.parallel.arena import shm_available

from conftest import publish, scaled
from parallel_support import (
    MIN_CORES_FOR_SPEEDUP_ASSERTS,
    build_frozen_db,
    measured_scan_rate,
)
from repro.bench.reporting import format_table

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

SCAN_ROWS = scaled(6000, minimum=2000)
WORKERS = 2
TRIALS = 5


@pytest.fixture(autouse=True)
def _obs_enabled():
    was = obs.is_enabled()
    obs.configure(enabled=True)
    yield
    obs.configure(enabled=was)


def _one_trial(db, info, relay: bool) -> tuple[float, MetricRegistry | None]:
    """One timed parallel scan sweep over a freshly warmed pool."""
    registry = None
    if relay:
        registry = MetricRegistry()
        pool = WorkerPool(
            WORKERS,
            registry=registry,
            recorder=Recorder(registry=registry),
            profile_workers=False,
        )
    else:
        pool = WorkerPool(WORKERS)
    try:
        assert pool.warm(), "pool failed to warm"
        measured_scan_rate(db, info, pool=pool, repeats=1)  # warm segments
        rate = measured_scan_rate(db, info, pool=pool, repeats=3)
    finally:
        pool.stop()
    return rate, registry


@pytest.fixture(scope="module")
def measurements():
    db, info = build_frozen_db(SCAN_ROWS)
    try:
        _one_trial(db, info, relay=True)  # warm allocator + import costs
        rates = {True: [], False: []}
        relayed: MetricRegistry | None = None
        for _ in range(TRIALS):
            for relay in (False, True):
                rate, registry = _one_trial(db, info, relay)
                rates[relay].append(rate)
                if relay:
                    relayed = registry
    finally:
        db.close()
    # Median, not best-of: a lucky interval inflates the max, and on a
    # shared machine that bias can point either way.
    med = {k: statistics.median(v) for k, v in rates.items()}
    return med, relayed


def test_relay_overhead_under_five_percent(benchmark, measurements):
    best, relayed = measurements

    def run():
        return {
            "off_rows_s": best[False],
            "on_rows_s": best[True],
            "overhead": best[False] / best[True] - 1.0,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_telemetry_relay",
        format_table(
            f"Ablation — telemetry relay overhead on the parallel scan "
            f"({SCAN_ROWS} rows, {WORKERS} workers, median of {TRIALS})",
            ["configuration", "scan rows/s", "overhead"],
            [
                ("relay off", f"{best[False]:,.0f}", "—"),
                (
                    "relay on",
                    f"{best[True]:,.0f}",
                    f"{stats['overhead'] * 100:+.1f}%",
                ),
            ],
        ),
    )
    assert best[False] > 0 and best[True] > 0
    # On a starved single-core container the interleaved trials are
    # scheduler-noise dominated (both configurations fight the workers
    # for the one core); the published table still documents whatever
    # was measured, but the hard gate needs real cores to be meaningful.
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_SPEEDUP_ASSERTS:
        assert stats["overhead"] < 0.05, (
            f"relay-on scan was {stats['overhead'] * 100:.1f}% slower; "
            "the per-fragment telemetry payload has regressed"
        )


def test_relay_actually_relayed(measurements):
    """Guard: the measured relay-on runs produced worker-labeled series."""
    _, relayed = measurements
    assert relayed is not None
    total = 0
    for counter in relayed.series("parallel.fragment_blocks_total"):
        assert counter.labels.get("process") == "worker"
        assert counter.labels.get("worker_id") in {"0", "1"}
        total += counter.value
    assert total > 0, "no relayed worker counters after the measured scans"
