"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark prints the series its paper figure plots (visible with
``pytest benchmarks/ --benchmark-only -s``) and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can quote it.  Scale knobs stay
small enough for a pure-Python engine; set ``REPRO_BENCH_SCALE`` (a float
multiplier) to enlarge the workloads.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts for the sharded OLTP benchmark "
        "(bench_fig10_oltp.py); 1 uses the plain single-node engine",
    )
    parser.addoption(
        "--workers",
        default="1,2,4,8",
        help="comma-separated scan/export worker-process counts for the "
        "parallel benchmarks (bench_ablation_parallel.py, fig11/fig15 "
        "parallel scaling); these are real processes, so measured speedup "
        "is bounded by the machine's cores",
    )


def shard_counts(config) -> list[int]:
    """The ``--shards`` option parsed into a list of shard counts."""
    return [int(n) for n in str(config.getoption("--shards")).split(",") if n]


def worker_counts(config) -> list[int]:
    """The ``--workers`` option parsed into a list of worker counts."""
    return [int(n) for n in str(config.getoption("--workers")).split(",") if n]

#: Global workload multiplier.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    """Scale an iteration/row count by REPRO_BENCH_SCALE."""
    return max(minimum, int(n * SCALE))


def publish(name: str, text: str) -> None:
    """Print a figure's series and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def publish_deltas(name: str, delta: dict, title: str | None = None) -> None:
    """Publish a ``repro.bench.harness.RegistryDelta`` delta map so a
    benchmark's timings land next to the engine work they caused."""
    from repro.bench.harness import format_deltas

    publish(name, format_deltas(delta, title or f"{name} — metric deltas"))
