"""Figure 15: data export throughput vs fraction of frozen blocks.

An ORDER_LINE-shaped table is driven to a controlled %frozen, then exported
through the four mechanisms of Section 5.  Frozen blocks ship as raw Arrow
buffers (Flight) or raw DMA (RDMA); hot blocks force a transactional
materialization first.

Paper shape: RDMA saturates the NIC and Flight reaches ~80% of it when all
blocks are frozen — orders of magnitude above the wire protocols; as the
hot fraction grows, Flight decays toward the vectorized protocol and RDMA
tracks slightly below Flight (the NIC bypasses the cache holding the
freshly materialized blocks); the PostgreSQL and vectorized protocols are
flat — they serialize everything regardless of block state.
"""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.bench.reporting import format_series
from repro.export import TableExporter
from repro.storage.constants import BlockState
from repro.workloads.tpcc.schema import TPCC_TABLES

from conftest import publish, scaled, worker_counts
from parallel_support import (
    MIN_CORES_FOR_SPEEDUP_ASSERTS,
    build_frozen_db,
    measured_export_rate,
    sweep_workers,
)

FROZEN_AXIS = [0, 1, 5, 10, 20, 40, 60, 80, 100]
METHODS = ["RDMA", "Arrow-Flight", "Vectorized", "PostgreSQL"]
_METHOD_KEY = {
    "RDMA": "rdma",
    "Arrow-Flight": "flight",
    "Vectorized": "vectorized",
    "PostgreSQL": "postgres",
}
ROWS = scaled(6000, minimum=2000)


@pytest.fixture(scope="module")
def order_line_db():
    """An order_line table, fully frozen, reused across the sweep."""
    db = Database(logging_enabled=False, cold_threshold_epochs=1)
    info = db.create_table(
        "order_line", TPCC_TABLES["order_line"], block_size=1 << 15, watch_cold=True
    )
    import random

    rng = random.Random(5)
    with db.transaction() as txn:
        for i in range(ROWS):
            info.table.insert(txn, {
                0: i // 10, 1: 1 + i % 10, 2: 1, 3: i % 15, 4: rng.randint(1, 1000),
                5: 1, 6: 0, 7: 5, 8: rng.uniform(1, 9999),
                9: "".join(rng.choice("abcdef0123456789") for _ in range(24)),
            })
    db.freeze_table("order_line", max_passes=16)
    return db, info


def set_frozen_fraction(info, fraction: float) -> float:
    """Reheat blocks until only ``fraction`` remain frozen; returns actual."""
    blocks = info.table.blocks
    want_frozen = round(len(blocks) * fraction)
    frozen_blocks = [b for b in blocks if b.state is BlockState.FROZEN]
    for block in frozen_blocks[want_frozen:]:
        block.touch_hot()
    frozen_now = sum(1 for b in blocks if b.state is BlockState.FROZEN)
    return frozen_now / len(blocks)


def refreeze(db, info):
    db.freeze_table("order_line", max_passes=16)


def test_flight_fully_frozen(benchmark, order_line_db):
    db, info = order_line_db
    refreeze(db, info)
    exporter = TableExporter(db.txn_manager, info.table)
    result = benchmark.pedantic(lambda: exporter.export("flight"), rounds=1, iterations=1)
    assert result.rows == ROWS


def test_postgres_export(benchmark, order_line_db):
    db, info = order_line_db
    exporter = TableExporter(db.txn_manager, info.table)
    result = benchmark.pedantic(lambda: exporter.export("postgres"), rounds=1, iterations=1)
    assert result.rows == ROWS


def test_report_figure_15(benchmark, order_line_db):
    db, info = order_line_db

    def run():
        series = {m: [] for m in METHODS}
        for frozen_pct in FROZEN_AXIS:
            refreeze(db, info)
            set_frozen_fraction(info, frozen_pct / 100.0)
            exporter = TableExporter(db.txn_manager, info.table)
            for method in METHODS:
                result = exporter.export(_METHOD_KEY[method])
                series[method].append(round(result.throughput_mb_per_sec, 2))
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig15_data_export",
        format_series(
            f"Figure 15 — export throughput (MB/s), {ROWS} order lines",
            "%frozen",
            FROZEN_AXIS,
            series,
        ),
    )
    last = -1  # fully frozen
    # Fully frozen: both zero-copy paths dominate the wire protocols.
    assert series["Arrow-Flight"][last] > 3 * series["Vectorized"][last]
    assert series["RDMA"][last] >= series["Arrow-Flight"][last]
    # Wire protocols are insensitive to block state (flat curves).
    assert series["PostgreSQL"][last] < series["PostgreSQL"][0] * 3
    # Everything hot: Flight decays toward the vectorized protocol.
    assert series["Arrow-Flight"][0] < series["Arrow-Flight"][last] / 2


EXPORT_ROWS = scaled(6000, minimum=2000)


def test_report_figure_15_parallel_export(benchmark, request):
    """Flight serialization scaling, *measured* across worker processes.

    The fully-frozen Flight number used to be a single-process measurement
    with the scaling story delegated to the cost model; with the
    ``repro.parallel`` pool, frozen blocks serialize to Arrow IPC in real
    worker processes and the scaling curve is measured on this machine."""
    counts = worker_counts(request.config)
    cores = os.cpu_count() or 1

    def run():
        db, info = build_frozen_db(EXPORT_ROWS)
        try:
            serial = measured_export_rate(db, info, pool=None)
            rates = sweep_workers(db, info, counts, measured_export_rate)
            return serial, rates
        finally:
            db.close()

    serial, rates = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "fig15_parallel_export",
        format_series(
            f"Figure 15 (measured scaling) — Flight serialization (MB/s), "
            f"{EXPORT_ROWS} rows fully frozen, {cores}-core machine, serial "
            f"baseline {serial:.2f} MB/s",
            "workers",
            counts,
            {"Arrow-Flight": [round(rates[w], 2) for w in counts]},
        ),
    )
    assert all(rate > 0 for rate in rates.values())
    if cores >= MIN_CORES_FOR_SPEEDUP_ASSERTS and 4 in rates and 1 in rates:
        # Acceptance: >1.5x at 4 workers on a machine with real cores.
        assert rates[4] >= 1.5 * rates[1]
