"""Ablation: parallel GC/transformation (threads) and scan/export (processes).

The paper partitions GC by transaction and transformation by compaction
group.  Under CPython's GIL the *thread*-parallel variants cannot show
core-level speedup; what that half of the bench verifies is that the
partitioning protocols (chain-head marks, isolated groups) add only bounded
coordination overhead while preserving all results.

The ``--workers`` axis (default 1,2,4,8) is different: scan and Flight
export fragments run in real worker *processes* over shared-memory frozen
blocks (``repro.parallel``), so on a multi-core machine the measured curve
shows genuine hardware speedup.  Each measured curve is published next to
the calibrated :class:`ScalingModel` projection for this machine's core
count — on a single-core container both degrade together (the measurement
is then dominated by dispatch/IPC overhead), and the hard speedup
assertions only arm with >= 4 cores.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import ColumnSpec, Database, INT64, UTF8
from repro.bench.reporting import format_table
from repro.bench.scaling_model import MachineModel, ScalingModel
from repro.gc_engine.parallel import ParallelGarbageCollector
from repro.storage.constants import BlockState

from conftest import publish, scaled, worker_counts
from parallel_support import (
    MIN_CORES_FOR_SPEEDUP_ASSERTS,
    build_frozen_db,
    measured_export_rate,
    measured_scan_rate,
    sweep_workers,
)

TUPLES = scaled(2000, minimum=800)
UPDATE_ROUNDS = 3


def build_churned_db():
    db = Database(logging_enabled=False)
    info = db.create_table(
        "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)], block_size=1 << 16
    )
    with db.transaction() as txn:
        slots = [
            info.table.insert(txn, {0: i, 1: f"value-{i}-long-enough-to-spill"})
            for i in range(TUPLES)
        ]
    for round_no in range(UPDATE_ROUNDS):
        with db.transaction() as txn:
            for slot in slots:
                info.table.update(txn, slot, {0: round_no})
    return db, info


def gc_pass_seconds(parallel_threads: int | None) -> tuple[float, int]:
    db, info = build_churned_db()
    if parallel_threads is None:
        gc = db.gc
    else:
        gc = ParallelGarbageCollector(db.txn_manager, num_threads=parallel_threads)
    began = time.perf_counter()
    unlinked = 0
    for _ in range(4):
        unlinked += gc.run()
    return time.perf_counter() - began, unlinked


def test_serial_gc(benchmark):
    seconds, unlinked = benchmark.pedantic(
        lambda: gc_pass_seconds(None), rounds=1, iterations=1
    )
    assert unlinked > 0


def test_parallel_gc(benchmark):
    seconds, unlinked = benchmark.pedantic(
        lambda: gc_pass_seconds(4), rounds=1, iterations=1
    )
    assert unlinked > 0


def transform_pass_seconds(parallel_threads: int | None) -> tuple[float, int]:
    db = Database(logging_enabled=False, cold_threshold_epochs=1, compaction_group_size=1)
    info = db.create_table(
        "t", [ColumnSpec("id", INT64), ColumnSpec("s", UTF8)],
        block_size=1 << 14, watch_cold=True,
    )
    with db.transaction() as txn:
        for i in range(info.table.layout.num_slots * 4):
            info.table.insert(txn, {0: i, 1: f"v-{i}-padding-padding"})
    began = time.perf_counter()
    for _ in range(5):
        db.gc.run()
        if parallel_threads is None:
            db.transformer.process_queue()
        else:
            db.transformer.process_queue_parallel(num_threads=parallel_threads)
        db.gc.run()
        db.transformer.process_freeze_pending()
        db.gc.run()
    frozen = sum(1 for b in info.table.blocks if b.state is BlockState.FROZEN)
    return time.perf_counter() - began, frozen


def test_report_parallel_ablation(benchmark):
    def run():
        rows = []
        serial_gc, unlinked_s = gc_pass_seconds(None)
        rows.append(("GC serial", serial_gc, unlinked_s))
        for threads in (2, 4):
            seconds, unlinked = gc_pass_seconds(threads)
            rows.append((f"GC parallel x{threads}", seconds, unlinked))
        serial_tf, frozen_s = transform_pass_seconds(None)
        rows.append(("Transform serial", serial_tf, frozen_s))
        for threads in (2, 4):
            seconds, frozen = transform_pass_seconds(threads)
            rows.append((f"Transform parallel x{threads}", seconds, frozen))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_parallel",
        format_table(
            "Ablation — serial vs parallel GC / transformation "
            "(GIL: coordination overhead, not speedup)",
            ["variant", "seconds", "work done"],
            [(n, f"{s:.4f}", w) for n, s, w in rows],
        ),
    )
    # All variants must complete (essentially) the same work: parallel GC
    # may route a few backed-off records through the deferred queue, where
    # they are unlinked but not counted in the pass total.
    gc_work = [w for n, _, w in rows if n.startswith("GC")]
    tf_work = {w for n, _, w in rows if n.startswith("Transform")}
    assert max(gc_work) - min(gc_work) <= max(gc_work) * 0.01
    assert len(tf_work) == 1
    # Coordination overhead bounded: parallel within 5x of serial.
    serial = next(s for n, s, _ in rows if n == "GC serial")
    for name, seconds, _ in rows:
        if name.startswith("GC parallel"):
            assert seconds < serial * 5


# --------------------------------------------------------------------- #
# --workers axis: multiprocess scan/export over shared-memory blocks    #
# --------------------------------------------------------------------- #

SCAN_ROWS = scaled(6000, minimum=2000)


def test_report_parallel_worker_axis(benchmark, request):
    counts = worker_counts(request.config)
    cores = os.cpu_count() or 1

    def run():
        db, info = build_frozen_db(SCAN_ROWS)
        try:
            serial_scan = measured_scan_rate(db, info, pool=None)
            serial_export = measured_export_rate(db, info, pool=None)
            scan = sweep_workers(db, info, counts, measured_scan_rate)
            export = sweep_workers(db, info, counts, measured_export_rate)
            return serial_scan, serial_export, scan, export
        finally:
            db.close()

    serial_scan, serial_export, scan, export = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    machine = MachineModel(physical_cores=cores)
    scan_model = ScalingModel(scan[counts[0]], machine=machine)
    export_model = ScalingModel(export[counts[0]], machine=machine)
    rows = [
        (
            w,
            f"{scan[w]:,.0f}",
            f"{scan[w] / scan[counts[0]]:.2f}x",
            f"{scan_model.throughput(w) / scan_model.throughput(counts[0]):.2f}x",
            f"{export[w]:.2f}",
            f"{export[w] / export[counts[0]]:.2f}x",
            f"{export_model.throughput(w) / export_model.throughput(counts[0]):.2f}x",
        )
        for w in counts
    ]
    rows.append(
        ("serial", f"{serial_scan:,.0f}", "-", "-", f"{serial_export:.2f}", "-", "-")
    )
    publish(
        "ablation_parallel_workers",
        format_table(
            f"Ablation — measured scan/export scaling vs worker processes "
            f"({cores}-core machine; model projection calibrated at "
            f"{counts[0]} worker{'s' if counts[0] != 1 else ''})",
            [
                "workers",
                "scan rows/s",
                "scan speedup",
                "model",
                "export MB/s",
                "export speedup",
                "model",
            ],
            rows,
        ),
    )
    assert all(rate > 0 for rate in scan.values())
    assert all(rate > 0 for rate in export.values())
    # The acceptance thresholds need real cores to be meaningful; on a
    # smaller machine the published table documents whatever was measured.
    if cores >= MIN_CORES_FOR_SPEEDUP_ASSERTS and 4 in scan and 1 in scan:
        assert scan[4] >= 2.0 * scan[1]
        assert export[4] >= 1.5 * export[1]
