"""Multi-version concurrency control (Section 3.1).

The engine is a multi-versioned delta store: blocks hold the newest version
in place, and each tuple's version chain — newest to oldest — hangs off the
Arrow-invisible version-pointer column, pointing at before-image delta
records that live inside transaction-private undo buffers.  Snapshot
isolation comes from sign-bit-flagged timestamps compared unsigned, so
uncommitted versions are never visible to other transactions.
"""

from repro.txn.timestamps import (
    NULL_TIMESTAMP,
    UNCOMMITTED_FLAG,
    TimestampManager,
    is_aborted,
    is_uncommitted,
)
from repro.txn.undo import (
    UNDO_SEGMENT_SIZE,
    DeleteUndoRecord,
    InsertUndoRecord,
    UndoBuffer,
    UndoRecord,
    UpdateUndoRecord,
)
from repro.txn.redo import CommitRecord, RedoBuffer, RedoRecord
from repro.txn.context import TransactionContext
from repro.txn.manager import TransactionManager

__all__ = [
    "CommitRecord",
    "DeleteUndoRecord",
    "InsertUndoRecord",
    "NULL_TIMESTAMP",
    "RedoBuffer",
    "RedoRecord",
    "TimestampManager",
    "TransactionContext",
    "TransactionManager",
    "UNCOMMITTED_FLAG",
    "UNDO_SEGMENT_SIZE",
    "UndoBuffer",
    "UndoRecord",
    "UpdateUndoRecord",
    "is_aborted",
    "is_uncommitted",
]
