"""Bounded backoff-with-jitter transaction retry.

The engine resolves write-write conflicts by aborting the loser outright
(Section 3.1), which pushes the retry decision to the workload.  This
helper is the standard loop: re-run the body against a fresh snapshot,
backing off exponentially with jitter so herds of conflicting workers
decorrelate instead of re-colliding.

:class:`~repro.errors.DegradedError` and other non-abort failures are
*not* retried — only conflict aborts are transient by construction.  An
abort raised by ``commit`` itself is retried too: on a cluster that is
how a 2PC :class:`~repro.errors.CoordinationAbort` surfaces (a prepare
lost to a transient device error), and it is exactly as transient as a
conflict.  :class:`~repro.errors.TwoPhaseInDoubt` is *not* an abort —
the outcome is unknown, so re-running could double-apply — and
propagates.
"""

from __future__ import annotations

import random
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import TransactionAborted
from repro.obs.slo import stamp_phase

if TYPE_CHECKING:
    from repro.db import Database
    from repro.obs.registry import Counter
    from repro.txn.context import TransactionContext


def retry_transaction(
    db: "Database",
    body: Callable[["TransactionContext"], Any],
    *,
    retries: int = 5,
    base_backoff: float = 0.0005,
    max_backoff: float = 0.05,
    jitter: float = 1.0,
    rng: Any = None,
    sleep: Callable[[float], None] = time.sleep,
    retry_counter: "Counter | None" = None,
    on_retry: Callable[[int], None] | None = None,
    deadline: float | None = None,
    max_elapsed: float | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> Any:
    """Run ``body(txn)`` with bounded, jittered retries on conflict aborts.

    ``body`` must be safe to re-execute from scratch (each attempt sees a
    fresh snapshot).  An attempt is retried when it raises
    :class:`TransactionAborted` or leaves the transaction ``must_abort``
    (a write-write conflict); any other exception aborts and propagates.
    The attempt ``i`` retry waits ``base_backoff * 2**i``, capped at
    ``max_backoff``, scaled by ``1 + jitter * U(0, 1)``.

    ``rng`` may be anything with a ``random()`` method (seeded workload
    generators pass themselves for determinism).  ``retry_counter`` is
    incremented and ``on_retry(attempt)`` called once per retry.  Returns
    ``body``'s result; raises :class:`TransactionAborted` once retries are
    exhausted.

    Beyond the attempt *count*, the loop can carry a wall-clock budget:
    ``deadline`` is an absolute ``clock()`` timestamp (the service front
    door propagates per-request deadlines this way), ``max_elapsed`` a
    relative budget measured from entry; the tighter of the two wins.
    The first attempt always runs — the budget bounds *retrying*: when
    the next backoff sleep would cross the deadline, the loop stops and
    re-raises the abort immediately instead of sleeping into a deadline
    it can no longer meet.
    """
    draw = rng.random if rng is not None else random.random
    attempts = retries + 1
    if max_elapsed is not None:
        elapsed_deadline = clock() + max_elapsed
        deadline = (
            elapsed_deadline if deadline is None else min(deadline, elapsed_deadline)
        )
    recorder = getattr(db, "recorder", None)
    prev_txn_id: int | None = None
    for attempt in range(attempts):
        txn = db.begin()
        if prev_txn_id is not None and recorder is not None:
            # Link the fresh attempt to the aborted one so the flight
            # recorder can reconstruct the begin→(retries)→commit chain.
            recorder.record(
                "txn.retry",
                txn_id=txn.txn_id,
                prev_txn_id=prev_txn_id,
                attempt=attempt,
            )
        prev_txn_id = txn.txn_id
        try:
            result = body(txn)
        except TransactionAborted:
            if txn.is_active:
                db.abort(txn)
            if attempt == attempts - 1 or not _backoff(
                attempt, base_backoff, max_backoff, jitter, draw, sleep,
                retry_counter, on_retry, deadline, clock,
            ):
                raise
            continue
        except BaseException:
            if txn.is_active:
                db.abort(txn)
            raise
        if txn.must_abort:
            if txn.is_active:
                db.abort(txn)
            if attempt == attempts - 1 or not _backoff(
                attempt, base_backoff, max_backoff, jitter, draw, sleep,
                retry_counter, on_retry, deadline, clock,
            ):
                raise TransactionAborted(
                    f"write-write conflict persisted across {attempts} attempts"
                )
            continue
        if txn.is_active:
            try:
                db.commit(txn)
            except TransactionAborted:
                # A commit-time abort: on a single node a conflict caught
                # at commit, on a cluster a CoordinationAbort from 2PC.
                # Both leave the transaction fully rolled back and are as
                # transient as an in-body conflict, so they retry.
                if txn.is_active:
                    db.abort(txn)
                if attempt == attempts - 1 or not _backoff(
                    attempt, base_backoff, max_backoff, jitter, draw, sleep,
                    retry_counter, on_retry, deadline, clock,
                ):
                    raise
                continue
        return result


def _backoff(
    attempt: int,
    base: float,
    cap: float,
    jitter: float,
    draw: Callable[[], float],
    sleep: Callable[[float], None],
    counter: "Counter | None",
    on_retry: Callable[[int], None] | None,
    deadline: float | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> bool:
    """Sleep out one backoff step; ``False`` means the step would cross
    ``deadline``, in which case nothing was slept and the caller must
    stop retrying (the jittered delay is drawn *before* the check so a
    lucky short draw may still fit the remaining budget)."""
    delay = min(cap, base * (2 ** attempt))
    if jitter:
        delay *= 1.0 + jitter * draw()
    if deadline is not None and clock() + delay > deadline:
        return False
    if counter is not None:
        counter.inc()
    if on_retry is not None:
        on_retry(attempt)
    if delay > 0:
        # Attribute the sleep to the surrounding service request (if any):
        # backoff is dead time on the request's critical path, and the
        # breakdown must charge it to retrying rather than to engine work.
        with stamp_phase("retry.backoff"):
            sleep(delay)
    return True
