"""The transaction manager: begin / commit / abort (Section 3.1).

Commits run a small critical section that draws the commit timestamp,
stamps it on the transaction's delta records, and hands the redo buffer to
the log manager's flush queue.  Aborts restore before-images in place and
then "commit" the undo records with an always-invisible timestamp — the
paper's fix for the A-B-A race that makes unlinking at abort time unsafe.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import DegradedError, TransactionAborted
from repro.obs.recorder import Recorder, get_recorder
from repro.obs.registry import STATE, MetricRegistry
from repro.txn.context import TransactionContext, TxnState
from repro.txn.timestamps import TimestampManager
from repro.txn.undo import DeleteUndoRecord, InsertUndoRecord, UpdateUndoRecord

if TYPE_CHECKING:
    from repro.wal.manager import LogManager


class TransactionManager:
    """Coordinates transaction lifecycles over one timestamp domain."""

    def __init__(
        self,
        timestamps: TimestampManager | None = None,
        log_manager: "LogManager | None" = None,
        registry: MetricRegistry | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        self.timestamps = timestamps or TimestampManager()
        self.log_manager = log_manager
        self._lock = threading.Lock()
        #: The transactions table: every active transaction, by start ts.
        self._active: dict[int, TransactionContext] = {}
        #: Completed (committed or aborted) transactions awaiting GC.
        self._completed: deque[tuple[int, TransactionContext]] = deque()
        #: Set (with a reason) when the engine can no longer make commits
        #: durable; new writers are rejected with :class:`DegradedError`.
        self._degraded_reason: str | None = None
        self.recorder = recorder if recorder is not None else get_recorder()
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._m_begin_total = reg.counter("txn.begin_total", "transactions started")
        self._m_commit_total = reg.counter("txn.commit_total", "transactions committed")
        self._m_abort_total = reg.counter("txn.abort_total", "transactions rolled back")
        self._m_conflict_total = reg.counter(
            "txn.ww_conflict_abort_total",
            "aborts forced by write-write conflicts",
        )
        self._m_prepare_total = reg.counter(
            "txn.prepare_total", "transactions prepared for two-phase commit"
        )
        self._m_begin_seconds = reg.histogram("txn.begin_seconds", "begin latency")
        self._m_commit_seconds = reg.histogram(
            "txn.commit_seconds", "commit latency incl. log submission"
        )
        self._m_abort_seconds = reg.histogram("txn.abort_seconds", "rollback latency")
        reg.gauge("txn.active", "in-flight transactions", callback=lambda: self.active_count)
        reg.gauge(
            "txn.pending_gc",
            "completed transactions awaiting GC",
            callback=lambda: self.pending_gc_count,
        )

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def begin(self) -> TransactionContext:
        """Start a transaction; its snapshot is the current clock value."""
        began = perf_counter() if STATE.enabled else 0.0
        start_ts, txn_id = self.timestamps.begin()
        txn = TransactionContext(start_ts, txn_id)
        txn.began_at = began
        txn.write_gate = self._check_write_allowed
        with self._lock:
            self._active[start_ts] = txn
        if began:
            self._m_begin_total.inc()
            self._m_begin_seconds.observe(perf_counter() - began)
            self.recorder.record("txn.begin", txn_id=txn_id, start_ts=start_ts)
        return txn

    def commit(
        self,
        txn: TransactionContext,
        callback: Callable[[], None] | None = None,
    ) -> int:
        """Commit ``txn``; returns its commit timestamp.

        Raises :class:`TransactionAborted` (after rolling back) when a
        prior conflict marked the transaction ``must_abort``.
        """
        if txn.state is not TxnState.ACTIVE:
            raise TransactionAborted(f"transaction already {txn.state.value}")
        if txn.must_abort:
            self.abort(txn)
            raise TransactionAborted("transaction aborted by write-write conflict")
        if self._degraded_reason is not None and not txn.is_read_only:
            # A write that slipped in before degradation: its commit could
            # never become durable, so roll it back instead of stranding it
            # in a flush queue that will never drain.
            self.abort(txn)
            raise DegradedError(
                f"cannot commit writes in degraded read-only mode: "
                f"{self._degraded_reason}"
            )
        began = perf_counter() if STATE.enabled else 0.0
        with self._lock:
            commit_ts = self.timestamps.commit_timestamp()
            for record in txn.undo_buffer:
                record.timestamp = commit_ts
            txn.commit_ts = commit_ts
            txn.state = TxnState.COMMITTED
            del self._active[txn.start_ts]
            self._completed.append((commit_ts, txn))
        if callback is not None:
            txn.on_durable(callback)
        self._submit_to_log(txn, commit_ts)
        if began:
            self._m_commit_total.inc()
            self._m_commit_seconds.observe(perf_counter() - began)
            lifetime = perf_counter() - txn.began_at if txn.began_at else 0.0
            self.recorder.record(
                "txn.commit",
                txn_id=txn.txn_id,
                commit_ts=commit_ts,
                writes=len(txn.undo_buffer),
                duration_seconds=lifetime,
            )
            self.recorder.note_txn_complete(txn.txn_id, lifetime, "committed")
        return commit_ts

    # ------------------------------------------------------------------ #
    # two-phase commit participant hooks                                   #
    # ------------------------------------------------------------------ #

    def prepare(self, txn: TransactionContext, gid: str) -> None:
        """Vote yes on distributed transaction ``gid``: force the redo
        stream durable under a ``PRP`` record, then hold the transaction
        in ``PREPARED`` until :meth:`commit_prepared` or :meth:`abort`.

        The prepared transaction stays in the active-transactions table —
        it pins the GC horizon and its undo records keep blocking
        conflicting writers — but it can no longer read or write.

        Raises :class:`TransactionAborted` (conflict), :class:`DegradedError`
        (read-only mode), or the device error that prevented the prepare
        record from becoming durable; in every failure case the
        transaction is fully rolled back first, so a raising ``prepare``
        is a completed no-vote.
        """
        from repro.wal.records import LogMarker, encode_prepare

        if txn.state is not TxnState.ACTIVE:
            raise TransactionAborted(f"transaction already {txn.state.value}")
        if txn.must_abort:
            self.abort(txn)
            raise TransactionAborted("transaction aborted by write-write conflict")
        if self._degraded_reason is not None and not txn.is_read_only:
            self.abort(txn)
            raise DegradedError(
                f"cannot prepare writes in degraded read-only mode: "
                f"{self._degraded_reason}"
            )
        txn.gid = gid
        txn.state = TxnState.PREPARED
        if self.log_manager is not None and len(txn.redo_buffer) > 0:
            marker = LogMarker(encode_prepare(txn, gid))
            try:
                self.log_manager.submit(marker)
                if not marker.durable:
                    # Prepare is a *forced* write: the yes-vote must be on
                    # disk before it is spoken.
                    self.log_manager.flush()
                if not marker.durable:
                    raise OSError("prepare record did not become durable")
            except Exception:
                # A failed prepare is a no-vote: roll back completely.
                # The stale PRP marker may still sit in the re-queued
                # flush batch; the DEC-abort the rollback appends after
                # it (or presumed abort, if neither ever hits the disk)
                # keeps recovery correct.
                txn.state = TxnState.ACTIVE
                self.abort(txn)
                raise
        if STATE.enabled:
            self._m_prepare_total.inc()
            self.recorder.record(
                "txn.prepare",
                txn_id=txn.txn_id,
                gid=gid,
                writes=len(txn.undo_buffer),
            )

    def commit_prepared(self, txn: TransactionContext) -> int:
        """Apply a coordinator's commit decision to a prepared transaction.

        Identical to :meth:`commit`'s critical section, but skips the
        conflict/degraded pre-checks — those were settled at prepare time,
        and the decision is already durable at the coordinator, so this
        must succeed even on a degraded shard.  The participant's own
        ``DEC`` record is written lazily (unforced): if it never reaches
        the disk, recovery resolves the in-doubt prepare from the
        coordinator log instead.
        """
        from repro.txn.redo import CommitRecord
        from repro.wal.records import DECISION_COMMIT, LogMarker, encode_decision

        if txn.state is not TxnState.PREPARED:
            raise TransactionAborted(
                f"cannot commit a {txn.state.value} transaction as prepared"
            )
        began = perf_counter() if STATE.enabled else 0.0
        with self._lock:
            commit_ts = self.timestamps.commit_timestamp()
            for record in txn.undo_buffer:
                record.timestamp = commit_ts
            txn.commit_ts = commit_ts
            txn.state = TxnState.COMMITTED
            del self._active[txn.start_ts]
            self._completed.append((commit_ts, txn))
        txn.redo_buffer.seal(CommitRecord(commit_ts, None, txn.is_read_only))
        if self.log_manager is not None and len(txn.redo_buffer) > 0:
            assert txn.gid is not None
            marker = LogMarker(
                encode_decision(txn.gid, DECISION_COMMIT, commit_ts), txn=txn
            )
            try:
                self.log_manager.submit(marker)
            except Exception:
                # The failure-atomic flush re-queued the marker; the
                # outcome is already decided durably at the coordinator,
                # so the commit stands regardless.
                pass
        else:
            txn.signal_durable()
        if began:
            self._m_commit_total.inc()
            self._m_commit_seconds.observe(perf_counter() - began)
            lifetime = perf_counter() - txn.began_at if txn.began_at else 0.0
            self.recorder.record(
                "txn.commit",
                txn_id=txn.txn_id,
                commit_ts=commit_ts,
                gid=txn.gid,
                writes=len(txn.undo_buffer),
                duration_seconds=lifetime,
            )
            self.recorder.note_txn_complete(txn.txn_id, lifetime, "committed")
        return commit_ts

    def abort(self, txn: TransactionContext) -> None:
        """Roll back ``txn``: restore before-images newest-first, then stamp
        records with the aborted sentinel so they are invisible forever.

        Also accepts ``PREPARED`` transactions (a coordinator abort
        decision); their abort decision is logged lazily — presumed abort
        makes an unwritten ``DEC`` record equivalent to a written one.
        """
        if txn.state not in (TxnState.ACTIVE, TxnState.PREPARED):
            raise TransactionAborted(f"transaction already {txn.state.value}")
        began = perf_counter() if STATE.enabled else 0.0
        for record in txn.undo_buffer.reverse_iter():
            if isinstance(record, UpdateUndoRecord):
                record.table.rollback_update(record)
            elif isinstance(record, InsertUndoRecord):
                record.table.rollback_insert(record)
            elif isinstance(record, DeleteUndoRecord):
                record.table.rollback_delete(record)
            record.mark_aborted()
        for compensation in reversed(txn.abort_actions):
            compensation()
        with self._lock:
            abort_ts = self.timestamps.commit_timestamp()
            txn.state = TxnState.ABORTED
            del self._active[txn.start_ts]
            self._completed.append((abort_ts, txn))
        if (
            txn.gid is not None
            and self.log_manager is not None
            and len(txn.redo_buffer) > 0
        ):
            from repro.wal.records import DECISION_ABORT, LogMarker, encode_decision

            try:
                # Lazy, unforced: presumed abort makes losing this record
                # in a crash harmless, and it must never raise here.
                self.log_manager.submit(LogMarker(encode_decision(txn.gid, DECISION_ABORT)))
            except Exception:
                pass
        # An abort needs no durability: its commit record is never written.
        txn.signal_durable()
        if began:
            self._m_abort_total.inc()
            if txn.must_abort:
                self._m_conflict_total.inc()
            self._m_abort_seconds.observe(perf_counter() - began)
            lifetime = perf_counter() - txn.began_at if txn.began_at else 0.0
            self.recorder.record(
                "txn.abort",
                txn_id=txn.txn_id,
                conflict=txn.must_abort,
                writes=len(txn.undo_buffer),
                duration_seconds=lifetime,
            )
            self.recorder.note_txn_complete(txn.txn_id, lifetime, "aborted")

    # ------------------------------------------------------------------ #
    # degraded read-only mode                                             #
    # ------------------------------------------------------------------ #

    @property
    def degraded(self) -> bool:
        """Whether new writers are being rejected."""
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> str | None:
        return self._degraded_reason

    def enter_degraded(self, reason: str) -> None:
        """Flip into degraded read-only mode (sticky; reads keep working)."""
        if self._degraded_reason is None:
            self._degraded_reason = reason
            self.recorder.record("txn.degraded_mode", reason=reason)

    def _check_write_allowed(self) -> None:
        """The per-write gate installed on every transaction context."""
        reason = self._degraded_reason
        if reason is not None:
            raise DegradedError(f"database is in degraded read-only mode: {reason}")

    # ------------------------------------------------------------------ #
    # GC interface                                                        #
    # ------------------------------------------------------------------ #

    def oldest_active_start(self) -> int:
        """Start timestamp of the oldest running transaction, or the
        current clock when the system is idle — the GC horizon."""
        with self._lock:
            if self._active:
                return min(self._active)
        return self.timestamps.current + 1

    def drain_completed(self, horizon: int) -> list[TransactionContext]:
        """Pop completed transactions whose end timestamp is below
        ``horizon``; their version records are invisible to every active
        transaction and safe to unlink."""
        drained: list[TransactionContext] = []
        with self._lock:
            while self._completed and self._completed[0][0] <= horizon:
                drained.append(self._completed.popleft()[1])
        return drained

    @property
    def active_count(self) -> int:
        """Number of in-flight transactions."""
        return len(self._active)

    @property
    def pending_gc_count(self) -> int:
        """Completed transactions not yet collected."""
        return len(self._completed)

    def active_transactions(self) -> Iterable[TransactionContext]:
        """Snapshot of the active transactions table."""
        with self._lock:
            return list(self._active.values())

    def _submit_to_log(self, txn: TransactionContext, commit_ts: int) -> None:
        from repro.txn.redo import CommitRecord

        commit_record = CommitRecord(commit_ts, None, txn.is_read_only)
        txn.redo_buffer.seal(commit_record)
        if self.log_manager is not None:
            self.log_manager.submit(txn)
        else:
            # No durability requested: results are immediately publishable.
            txn.signal_durable()
