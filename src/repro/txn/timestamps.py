"""Timestamp allocation and visibility (Section 3.1).

The engine draws *start* and *commit* timestamps from one shared counter.
A transaction's id is its start timestamp with the 64-bit sign bit flipped
on; version records installed by an in-flight transaction carry that id.
Because visibility uses **unsigned** comparison, any flagged timestamp is
astronomically large and therefore never ≤ a reader's start timestamp —
uncommitted versions are invisible for free, with no extra branch.
"""

from __future__ import annotations

import threading

#: The sign bit of a 64-bit word; set on a timestamp while its transaction
#: is uncommitted.
UNCOMMITTED_FLAG = 1 << 63

#: Sentinel carried by undo records whose transaction aborted: larger than
#: every commit timestamp (invisible to all) but distinguishable from any
#: live transaction id.
ABORTED_TIMESTAMP = (1 << 64) - 1

#: "No timestamp yet".
NULL_TIMESTAMP = 0


def is_uncommitted(timestamp: int) -> bool:
    """Whether ``timestamp`` is a flagged (in-flight) transaction id."""
    return bool(timestamp & UNCOMMITTED_FLAG)


def is_aborted(timestamp: int) -> bool:
    """Whether ``timestamp`` is the aborted sentinel."""
    return timestamp == ABORTED_TIMESTAMP


def start_of(txn_id: int) -> int:
    """Recover the start timestamp from a flagged transaction id."""
    return txn_id & ~UNCOMMITTED_FLAG


class TimestampManager:
    """The global logical clock.

    ``begin`` hands out a (start, id) pair where the id is the start with
    the sign bit flipped — the paper's trick for marking a transaction
    uncommitted without a second counter.  ``checkpoint`` draws a plain
    tick, used by the GC for unlink timestamps and epochs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clock = NULL_TIMESTAMP

    def begin(self) -> tuple[int, int]:
        """Allocate a start timestamp; returns ``(start, txn_id)``."""
        with self._lock:
            self._clock += 1
            start = self._clock
        return start, start | UNCOMMITTED_FLAG

    def commit_timestamp(self) -> int:
        """Allocate a commit timestamp from the same counter."""
        with self._lock:
            self._clock += 1
            return self._clock

    def checkpoint(self) -> int:
        """Draw a tick without beginning a transaction (GC epochs)."""
        return self.commit_timestamp()

    @property
    def current(self) -> int:
        """Latest timestamp handed out (diagnostic)."""
        return self._clock
