"""Per-transaction state: timestamps, undo buffer, redo buffer."""

from __future__ import annotations

import enum
import threading
from typing import Callable

from repro.obs.slo import stamp_phase
from repro.txn.redo import RedoBuffer
from repro.txn.undo import UndoBuffer


class TxnState(enum.Enum):
    """Lifecycle of a transaction context.

    ``PREPARED`` is the two-phase-commit half-state: the transaction's
    redo stream is durable under a global id but the commit/abort
    decision has not been applied yet.  A prepared transaction still
    occupies the active-transactions table (pinning the GC horizon and
    blocking conflicting writers) until it resolves.
    """

    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionContext:
    """Everything the engine knows about one running transaction.

    Version deltas live *here*, in the undo buffer, external to Arrow
    storage (Section 3.1); the version-pointer column points into it.
    """

    def __init__(self, start_ts: int, txn_id: int) -> None:
        #: Start timestamp: the snapshot this transaction reads.
        self.start_ts = start_ts
        #: Flagged (sign-bit) id stamped on records while in flight.
        self.txn_id = txn_id
        #: Commit timestamp, set inside the commit critical section.
        self.commit_ts: int | None = None
        #: ``perf_counter()`` at begin (0.0 while observability is off);
        #: commit/abort derive the whole-transaction latency the flight
        #: recorder's slow-transaction log thresholds on.
        self.began_at = 0.0
        self.undo_buffer = UndoBuffer()
        self.redo_buffer = RedoBuffer()
        self.state = TxnState.ACTIVE
        #: Set when a conflict forces this transaction to abort.
        self.must_abort = False
        #: Global transaction id, set when this context becomes a 2PC
        #: participant at prepare time; ``None`` for local transactions.
        self.gid: str | None = None
        #: Durability signal: fired by the log manager after the commit
        #: record reaches "disk" (Section 3.4's callback scheme).
        self._durable = threading.Event()
        self._durability_callbacks: list[Callable[[], None]] = []
        #: Compensation actions run (newest first) if the transaction
        #: aborts; used by index maintenance to undo staged entries.
        self.abort_actions: list[Callable[[], None]] = []
        #: Installed by the transaction manager; called before every write
        #: so degraded read-only mode can reject new writers at the source
        #: (see :class:`repro.errors.DegradedError`).
        self.write_gate: Callable[[], None] | None = None

    @property
    def is_read_only(self) -> bool:
        """True when the transaction installed no undo records."""
        return len(self.undo_buffer) == 0

    @property
    def is_active(self) -> bool:
        """Whether the transaction can still read and write."""
        return self.state is TxnState.ACTIVE

    def on_durable(self, callback: Callable[[], None]) -> None:
        """Register a callback to run once the commit is persistent.

        The DBMS refrains from sending results to the client until then;
        tests use this to assert the speculative-visibility rule.
        """
        if self._durable.is_set():
            callback()
        else:
            self._durability_callbacks.append(callback)

    def ensure_writable(self) -> None:
        """Raise :class:`~repro.errors.DegradedError` when writes are barred.

        Called by the Data Table write paths; a no-op until the transaction
        manager installs a gate (it always does) and the engine degrades.
        """
        gate = self.write_gate
        if gate is not None:
            gate()

    def signal_durable(self) -> None:
        """Invoked by the log manager after fsync covers the commit record.

        Callbacks are isolated from each other: one raising does not stop
        the rest from running.  The first failure is re-raised afterwards
        so the caller can observe it.
        """
        self._durable.set()
        callbacks, self._durability_callbacks = self._durability_callbacks, []
        first_error: BaseException | None = None
        for callback in callbacks:
            try:
                callback()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def wait_durable(self, timeout: float | None = None) -> bool:
        """Block until the transaction's commit record is persistent.

        The wait is charged to ``wal.fsync_wait`` on the surrounding
        service request (if any): with group commit running in the
        background this is pure fsync latency on the request's critical
        path, and the breakdown must say so.
        """
        if self._durable.is_set():
            return True
        with stamp_phase("wal.fsync_wait"):
            return self._durable.wait(timeout)

    @property
    def is_durable(self) -> bool:
        """Whether the log manager has persisted the commit record."""
        return self._durable.is_set()

    def __repr__(self) -> str:
        return (
            f"TransactionContext(start={self.start_ts}, state={self.state.value}, "
            f"writes={len(self.undo_buffer)})"
        )
