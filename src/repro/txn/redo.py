"""Redo records and per-transaction redo buffers (Section 3.4).

Each transaction appends physical after-images of its changes to a private
redo buffer in the order they occur.  At commit a commit record is appended
and the whole buffer joins the log manager's flush queue; record order on
disk is implied by commit timestamps rather than log sequence numbers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.storage.projection import ProjectedRow
from repro.storage.tuple_slot import TupleSlot

if TYPE_CHECKING:
    from repro.txn.context import TransactionContext

#: Modeled fixed overhead per redo record.
_RECORD_HEADER_BYTES = 24


class RedoRecord:
    """After-image of one operation, replayed by recovery."""

    __slots__ = ("table_name", "slot", "op", "after")

    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"

    def __init__(
        self,
        table_name: str,
        slot: TupleSlot,
        op: str,
        after: ProjectedRow | None,
    ) -> None:
        self.table_name = table_name
        self.slot = slot
        self.op = op
        #: After-image values; ``None`` for deletes.
        self.after = after

    def modeled_size(self) -> int:
        """Bytes this record would occupy in the on-disk log body."""
        payload = 0
        if self.after is not None:
            for _, value in self.after.items():
                if isinstance(value, (bytes, str)):
                    payload += len(value) + 4
                else:
                    payload += 8
        return _RECORD_HEADER_BYTES + payload


class CommitRecord:
    """Terminates a transaction's redo stream.

    Carries the durability callback the log manager must invoke after the
    next fsync (the paper embeds a function pointer in the record).  Read-
    only transactions also obtain one — required for correctness of the
    speculative-read rule — but the log manager skips writing it to disk.
    """

    __slots__ = ("commit_ts", "callback", "is_read_only")

    def __init__(
        self,
        commit_ts: int,
        callback: Callable[[], None] | None,
        is_read_only: bool,
    ) -> None:
        self.commit_ts = commit_ts
        self.callback = callback
        self.is_read_only = is_read_only

    def modeled_size(self) -> int:
        """Bytes on disk (zero for read-only commits, which are elided)."""
        return 0 if self.is_read_only else 16


class RedoBuffer:
    """Per-transaction append-only list of redo records.

    The paper limits each transaction to a single reusable buffer segment
    (flushing incrementally when full) and observes a speedup from cache
    reuse; we model the segment boundary purely for accounting.
    """

    def __init__(self, segment_size: int = 4096) -> None:
        self.segment_size = segment_size
        self._records: list[RedoRecord] = []
        self.commit_record: CommitRecord | None = None
        self.flushed_segments = 0
        self._segment_used = 0

    def append(self, record: RedoRecord) -> None:
        """Append one after-image record."""
        size = record.modeled_size()
        if self._segment_used + size > self.segment_size:
            # Incremental pre-commit flush of a full segment (Section 3.4).
            self.flushed_segments += 1
            self._segment_used = 0
        self._segment_used += min(size, self.segment_size)
        self._records.append(record)

    def seal(self, commit_record: CommitRecord) -> None:
        """Attach the commit record, completing the stream."""
        self.commit_record = commit_record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RedoRecord]:
        return iter(self._records)

    def modeled_bytes(self) -> int:
        """Total modeled bytes of the stream, commit record included."""
        total = sum(r.modeled_size() for r in self._records)
        if self.commit_record is not None:
            total += self.commit_record.modeled_size()
        return total
