"""Undo (delta) records and segmented undo buffers (Section 3.1).

Undo records are physical before-images of the attributes a transaction
modified, stored newest-to-oldest on each tuple's version chain.  They live
in per-transaction undo buffers built from fixed-size segments: the version
chain points physically *into* the buffer, so records can never move — the
buffer grows by linking new segments, never by reallocating (the paper's
argument against naive doubling).  Python objects never move, so the
segment structure here primarily provides faithful space accounting, which
Figures 14a/14b measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import StorageError
from repro.storage.projection import ProjectedRow
from repro.storage.tuple_slot import TupleSlot
from repro.txn.timestamps import ABORTED_TIMESTAMP, is_aborted, is_uncommitted

if TYPE_CHECKING:
    from repro.storage.data_table import DataTable
    from repro.txn.context import TransactionContext

#: Fixed size of one undo-buffer segment, matching the paper's 4096 bytes.
UNDO_SEGMENT_SIZE = 4096

#: Modeled bytes of fixed overhead per record: timestamp, table/slot ref,
#: chain pointer, type tag.
_RECORD_HEADER_BYTES = 32


class UndoRecord:
    """Base class: one link of a tuple's version chain."""

    __slots__ = ("timestamp", "table", "slot", "next", "txn")

    def __init__(
        self,
        txn: "TransactionContext",
        table: "DataTable",
        slot: TupleSlot,
    ) -> None:
        #: Flagged txn id while in flight; commit timestamp after commit;
        #: the aborted sentinel after rollback.
        self.timestamp = txn.txn_id
        self.table = table
        self.slot = slot
        #: Next-older record on the version chain.
        self.next: UndoRecord | None = None
        self.txn = txn

    @property
    def aborted(self) -> bool:
        """Whether the owning transaction rolled back."""
        return is_aborted(self.timestamp)

    def mark_aborted(self) -> None:
        """Stamp the aborted sentinel (after in-place state is restored).

        This is the paper's fix for the A-B-A race on aborts: the record is
        "committed" with a timestamp that makes it invisible to everyone,
        *after* restoring the correct version, rather than being unlinked.
        """
        self.timestamp = ABORTED_TIMESTAMP

    def is_visible_to(self, txn: "TransactionContext") -> bool:
        """Visibility per Section 3.1: own records always; otherwise the
        record's timestamp must be committed and ≤ the reader's start
        (unsigned comparison makes flagged ids never visible)."""
        if self.txn is txn and not self.aborted:
            return True
        if is_uncommitted(self.timestamp) or self.aborted:
            return False
        return self.timestamp <= txn.start_ts

    def modeled_size(self) -> int:
        """Bytes this record would occupy in the C++ engine's buffer."""
        raise NotImplementedError

    def undo_presence(self, present: bool) -> bool:
        """Roll the tuple's logical existence back across this record."""
        return present

    def apply_before_image(self, row: ProjectedRow) -> None:
        """Overwrite ``row`` with this record's before-image, if any."""


class UpdateUndoRecord(UndoRecord):
    """Before-image of an in-place attribute update."""

    __slots__ = ("before", "before_raw")

    def __init__(
        self,
        txn: "TransactionContext",
        table: "DataTable",
        slot: TupleSlot,
        before: ProjectedRow,
        before_raw: dict[int, bytes],
    ) -> None:
        super().__init__(txn, table, slot)
        #: Logical before-image, applied during version-chain traversal.
        self.before = before
        #: Raw 16-byte varlen entries (column id → bytes) captured before the
        #: update, used for exact rollback and for deferred heap frees.
        self.before_raw = before_raw

    def apply_before_image(self, row: ProjectedRow) -> None:
        self.before.apply_onto(row)

    def modeled_size(self) -> int:
        payload = 0
        for column_id in self.before.column_ids:
            payload += self.table.layout.attr_sizes[column_id]
        return _RECORD_HEADER_BYTES + payload


class InsertUndoRecord(UndoRecord):
    """Marks a slot as created by this transaction (before-image: absent)."""

    __slots__ = ()

    def undo_presence(self, present: bool) -> bool:
        return False

    def modeled_size(self) -> int:
        return _RECORD_HEADER_BYTES


class DeleteUndoRecord(UndoRecord):
    """Marks a slot as deleted by this transaction (before-image: present).

    Deletes flip the allocation bitmap, not tuple contents (Section 3.1),
    so older snapshots that roll the delete back still find the attribute
    bytes in place.
    """

    __slots__ = ()

    def undo_presence(self, present: bool) -> bool:
        return True

    def modeled_size(self) -> int:
        return _RECORD_HEADER_BYTES


class UndoBuffer:
    """A linked list of fixed-size segments holding a txn's undo records."""

    def __init__(self, segment_size: int = UNDO_SEGMENT_SIZE) -> None:
        if segment_size <= _RECORD_HEADER_BYTES:
            raise StorageError("undo segment size too small for any record")
        self.segment_size = segment_size
        self._records: list[UndoRecord] = []
        self._segment_used: int = 0
        self.segment_count: int = 0

    def append(self, record: UndoRecord) -> UndoRecord:
        """Reserve space for ``record`` at the end of the buffer.

        Adds a new segment whenever the current one cannot fit the record —
        the incremental growth scheme that keeps existing records pinned.
        """
        size = record.modeled_size()
        if self.segment_count == 0 or self._segment_used + size > self.segment_size:
            self.segment_count += 1
            self._segment_used = 0
        self._segment_used += min(size, self.segment_size)
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[UndoRecord]:
        return iter(self._records)

    def reverse_iter(self) -> Iterator[UndoRecord]:
        """Newest-first iteration, the order rollback must apply."""
        return reversed(self._records)

    def modeled_bytes(self) -> int:
        """Total bytes the records would occupy (segments are not padded in
        this count; ``segment_count`` captures allocation granularity)."""
        return sum(r.modeled_size() for r in self._records)
