"""repro: an Arrow-native OLTP storage engine.

A faithful, pure-Python reproduction of *Mainlining Databases: Supporting
Fast Transactional Workloads on Universal Columnar Data File Formats*
(Li et al., VLDB 2020) — the DB-X / NoisePage storage architecture that
runs multi-versioned transactions directly on a relaxed Apache Arrow
format and transforms cold blocks into canonical Arrow for zero-copy
export to analytics tools.

Public entry points:

- :class:`repro.Database` — the wired-together engine facade,
- :mod:`repro.arrowfmt` — the from-scratch Arrow format layer,
- :mod:`repro.export` — the four export protocols of Section 5/6.3,
- :mod:`repro.workloads` — TPC-C, TPC-H LINEITEM, and micro-benchmarks.
"""

from repro.arrowfmt.datatypes import (
    BOOL,
    FLOAT32,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    UTF8,
)
from repro import obs
from repro.db import Database

# Imported after repro.db: the cluster facade builds on the full engine,
# and entering the storage/txn import cycle anywhere else breaks it.
from repro.cluster import ShardedDatabase
from repro.errors import (
    CoordinationAbort,
    DegradedError,
    ReproError,
    TransactionAborted,
    TwoPhaseInDoubt,
    WriteWriteConflict,
)
from repro.storage.layout import ColumnSpec
from repro.txn.retry import retry_transaction

__version__ = "0.1.0"

__all__ = [
    "BOOL",
    "ColumnSpec",
    "CoordinationAbort",
    "Database",
    "DegradedError",
    "FLOAT32",
    "FLOAT64",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "ReproError",
    "ShardedDatabase",
    "TransactionAborted",
    "TwoPhaseInDoubt",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "UTF8",
    "WriteWriteConflict",
    "__version__",
    "obs",
    "retry_transaction",
]
