"""Benchmark support: reporting tables, the thread-scaling model, and the
metric-delta harness."""

from repro.bench.harness import (
    BenchResult,
    RegistryDelta,
    flatten_snapshot,
    format_deltas,
    run_timed,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.scaling_model import ScalingModel

__all__ = [
    "BenchResult",
    "RegistryDelta",
    "ScalingModel",
    "flatten_snapshot",
    "format_deltas",
    "format_series",
    "format_table",
    "run_timed",
]
