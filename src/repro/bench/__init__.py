"""Benchmark support: reporting tables and the thread-scaling model."""

from repro.bench.reporting import format_series, format_table
from repro.bench.scaling_model import ScalingModel

__all__ = ["ScalingModel", "format_series", "format_table"]
