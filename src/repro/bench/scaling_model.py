"""A calibrated cost model for thread-scaling curves (Figure 10a).

The GIL hides hardware parallelism from real Python threads, so the
*scaling axis* of Figure 10a cannot be measured natively.  Instead the
model is calibrated from single-worker measurements of the real engine
(per-transaction cost under each transformation configuration) and then
projects multi-worker throughput on the paper's machine model: near-linear
scaling while workers have dedicated physical cores, a small per-thread
contention tax, and degradation once worker + background threads
oversubscribe the cores — the effect the paper reports at 20 workers.

Everything configuration-dependent (the relative cost of gather vs
dictionary compression, the transformation interference) comes from real
measurements; only the hardware-parallelism shape is assumed.

Scope note: since the ``repro.parallel`` worker pool landed, this model
only covers the curves that *must* stay modeled because the workers would
mutate engine state under the GIL — Figure 10a's OLTP thread axis and
Figure 12's transformation threads.  Cold-scan scaling (Figure 11) and
Flight serialization scaling (Figure 15) are **measured** on real worker
processes over shared-memory frozen blocks; see
``benchmarks/parallel_support.py`` and the ``--workers`` axis of
``benchmarks/bench_ablation_parallel.py``, which publishes measured and
modeled curves side by side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """The evaluation machine of Section 6: dual-socket, 20 physical cores."""

    physical_cores: int = 20
    #: Per-additional-thread contention tax (shared LLC, NUMA interleave).
    contention_per_thread: float = 0.01
    #: Throughput multiplier per oversubscribed thread beyond core count.
    oversubscription_penalty: float = 0.12


class ScalingModel:
    """Projects multi-worker throughput from single-worker calibration."""

    def __init__(
        self,
        single_worker_rate: float,
        transform_overhead: float = 0.0,
        machine: MachineModel | None = None,
        background_threads_per_workers: int = 8,
    ) -> None:
        """``single_worker_rate``: measured committed txn/s with 1 worker.

        ``transform_overhead``: measured relative slowdown (0.0–1.0) the
        transformation configuration imposes on the critical path.
        ``background_threads_per_workers``: the paper dedicates one logging,
        one GC, and one transformation thread per 8 workers.
        """
        self.single_worker_rate = single_worker_rate
        self.transform_overhead = transform_overhead
        self.machine = machine or MachineModel()
        self.background_per_workers = background_threads_per_workers

    def throughput(self, workers: int) -> float:
        """Modeled committed transactions/second at ``workers`` threads."""
        if workers < 1:
            return 0.0
        machine = self.machine
        background = 2 + workers // self.background_per_workers
        total_threads = workers + background
        efficiency = 1.0 / (1.0 + machine.contention_per_thread * (workers - 1))
        if total_threads > machine.physical_cores:
            over = total_threads - machine.physical_cores
            efficiency *= max(0.3, 1.0 - machine.oversubscription_penalty * over)
        rate = self.single_worker_rate * (1.0 - self.transform_overhead)
        return workers * rate * efficiency

    def curve(self, worker_counts: list[int]) -> list[float]:
        """Throughput across a sweep of worker counts."""
        return [self.throughput(w) for w in worker_counts]
