"""Benchmark harness: timed runs with before/after metric-registry deltas.

Every benchmark that drives a :class:`~repro.db.Database` can wrap its
measured region in :class:`RegistryDelta` (or call :func:`run_timed`) to
report *what the engine did* alongside *how long it took* — commits,
flush batches, blocks frozen, bytes written — straight from the
``repro.obs`` registry instead of hand-collected counters::

    with RegistryDelta(db.obs) as delta:
        workload()
    publish(..., format_deltas(delta.delta))

Counter deltas are exact; histogram deltas report ``_count`` and ``_sum``
changes; gauges are sampled absolute at exit (a gauge "delta" is rarely
meaningful).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bench.reporting import format_table
from repro.obs.expo import snapshot
from repro.obs.registry import MetricRegistry


def flatten_snapshot(snap: dict[str, Any]) -> dict[str, float]:
    """One flat name → number map from an exposition snapshot.

    Histograms contribute ``<name>_count`` and ``<name>_sum``; gauges are
    prefixed ``gauge:`` so delta math can treat them as absolute samples.
    """
    flat: dict[str, float] = {}
    flat.update(snap["counters"])
    for name, value in snap["gauges"].items():
        flat[f"gauge:{name}"] = value
    for name, hist in snap["histograms"].items():
        flat[f"{name}_count"] = hist["count"]
        flat[f"{name}_sum"] = hist["sum"]
    return flat


class RegistryDelta:
    """Context manager capturing a registry snapshot before and after.

    After exit, ``delta`` maps every counter/histogram key that *changed*
    to its increase, and every gauge to its absolute value at exit.
    """

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry
        self.before: dict[str, float] = {}
        self.after: dict[str, float] = {}
        self.delta: dict[str, float] = {}

    def __enter__(self) -> "RegistryDelta":
        self.before = flatten_snapshot(snapshot(self.registry))
        return self

    def __exit__(self, *exc_info) -> None:
        self.after = flatten_snapshot(snapshot(self.registry))
        delta: dict[str, float] = {}
        for key, value in sorted(self.after.items()):
            if key.startswith("gauge:"):
                delta[key] = value
                continue
            change = value - self.before.get(key, 0.0)
            if change:
                delta[key] = change
        self.delta = delta


@dataclass
class BenchResult:
    """One benchmark's timings plus the engine work it caused."""

    name: str
    seconds: list[float] = field(default_factory=list)
    metric_deltas: dict[str, float] = field(default_factory=dict)
    result: Any = None

    @property
    def best(self) -> float:
        """Fastest repeat (the standard noise-resistant statistic)."""
        return min(self.seconds)

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds)


def run_timed(
    fn: Callable[[], Any],
    name: str = "bench",
    registry: MetricRegistry | None = None,
    repeat: int = 3,
) -> BenchResult:
    """Run ``fn`` ``repeat`` times; capture wall time per run and, when a
    registry is supplied, the metric delta across all runs combined."""
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    out = BenchResult(name)
    capture = RegistryDelta(registry) if registry is not None else None
    if capture is not None:
        capture.__enter__()
    try:
        for _ in range(repeat):
            began = time.perf_counter()
            out.result = fn()
            out.seconds.append(time.perf_counter() - began)
    finally:
        if capture is not None:
            capture.__exit__(None, None, None)
            out.metric_deltas = capture.delta
    return out


def format_deltas(delta: dict[str, float], title: str = "metric deltas") -> str:
    """Render a delta map as the monospace table the benchmarks publish.

    Gauge samples keep their ``gauge:`` prefix so readers know they are
    absolute values, not increases.
    """
    rows = [
        (key, f"{value:,.6g}")
        for key, value in sorted(delta.items())
        if value or not key.startswith("gauge:")
    ]
    return format_table(title, ["metric", "delta"], rows)
