"""Plain-text tables matching the series the paper's figures plot."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render an aligned monospace table with a title rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
) -> str:
    """Render one figure's data: an x column plus one column per series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(x_values)
    ]
    return format_table(title, headers, rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
