"""A fault-injecting log device: torn writes, short writes, dead fsyncs.

:class:`FaultyDevice` wraps any append-only binary file object (an
``io.BytesIO`` by default) and injects faults from a deterministic,
seeded :class:`FaultSchedule`.  The device tracks the *fsync horizon* —
the byte length covered by the last successful ``flush()`` — which is the
only durability boundary the engine may rely on:

- :meth:`FaultyDevice.durable_image` is what a disk guarantees after a
  clean shutdown: exactly the fsynced prefix.
- :meth:`FaultyDevice.crash_image` is what a disk plausibly holds after a
  power cut: the fsynced prefix plus an arbitrary (seeded) prefix of the
  unsynced tail — the torn tail that recovery must tolerate.

Fault kinds (see :class:`FaultSpec`):

``io_error``
    The operation fails with :class:`OSError` having done nothing
    (``write``) or having synced nothing (``fsync``).
``short_write``
    A strict prefix of the payload reaches the device, then
    :class:`OSError` — the transient partial failure that forces
    :meth:`repro.wal.manager.LogManager.flush` to rewind before retrying.
``torn_write``
    A strict prefix reaches the device and the process "dies":
    :class:`SimulatedCrash` is raised and the device refuses all further
    operations.
``crash``
    The process dies at the operation boundary (nothing of the payload is
    written; for ``fsync``, nothing further becomes durable).

Beyond discrete faults, the device can model a *slow* disk:
``FaultyDevice(fsync_stall=0.05)`` sleeps before every fsync — no data is
lost, every flush just takes 50 ms.  That is the forensic scenario the
request-attribution suite injects: commits stay correct while every write
request's critical path fills up with ``wal.fsync_wait``.
"""

from __future__ import annotations

import io
import random
import time
from dataclasses import dataclass
from typing import BinaryIO


class SimulatedCrash(BaseException):
    """An injected process death.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so no
    engine-level ``except Exception`` handler can accidentally "survive" a
    crash — only the torture harness, which models the reboot, catches it.
    """


WRITE = "write"
FSYNC = "fsync"

#: Fault kinds that leave a partial payload behind.
_PARTIAL_KINDS = ("short_write", "torn_write")
_KINDS = ("io_error", "short_write", "torn_write", "crash")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: the ``at``-th ``op`` (1-based) fails as ``kind``."""

    op: str  # WRITE or FSYNC
    at: int  # 1-based index of that operation kind
    kind: str  # "io_error" | "short_write" | "torn_write" | "crash"

    def __post_init__(self) -> None:
        if self.op not in (WRITE, FSYNC):
            raise ValueError(f"unknown fault op {self.op!r}")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.op == FSYNC and self.kind in _PARTIAL_KINDS:
            raise ValueError("fsync faults cannot be partial; use io_error or crash")
        if self.at < 1:
            raise ValueError("fault indices are 1-based")


class FaultSchedule:
    """A deterministic fault plan plus the seeded RNG for partial lengths.

    The schedule is a set of :class:`FaultSpec` entries; everything random
    (how much of a torn write survives, how much of the unsynced tail a
    crash image keeps) is drawn from one ``random.Random(seed)`` so a
    schedule replays identically — the property the torture harness needs
    to shrink failures to a seed.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = (), seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._plan: dict[tuple[str, int], str] = {}
        for spec in specs:
            self._plan[(spec.op, spec.at)] = spec.kind

    def fault_for(self, op: str, index: int) -> str | None:
        """The fault kind scheduled for the ``index``-th ``op``, if any."""
        return self._plan.get((op, index))

    def __len__(self) -> int:
        return len(self._plan)


class FaultyDevice:
    """A ``BinaryIO`` wrapper that injects scheduled faults.

    Only the operations the log manager uses are modelled (append-only
    ``write``, ``flush`` as the fsync boundary, plus ``seek``/``truncate``
    for failure rewind); everything else passes through to ``base``.
    """

    def __init__(
        self,
        base: BinaryIO | None = None,
        schedule: FaultSchedule | None = None,
        fsync_stall: float = 0.0,
    ) -> None:
        self.base = base if base is not None else io.BytesIO()
        self.schedule = schedule if schedule is not None else FaultSchedule()
        #: Seconds slept before every fsync: a uniformly slow disk (data
        #: is never lost, durability just arrives late).
        self.fsync_stall = fsync_stall
        self.write_ops = 0
        self.fsync_ops = 0
        #: Byte length covered by the last successful fsync.
        self.synced_len = 0
        #: ``(op, index, kind, partial_bytes)`` for every fault injected.
        self.faults_injected: list[tuple[str, int, str, int]] = []
        self.crashed = False

    # ------------------------------------------------------------------ #
    # the faulted operations                                              #
    # ------------------------------------------------------------------ #

    def write(self, data: bytes) -> int:
        self._require_alive()
        self.write_ops += 1
        kind = self.schedule.fault_for(WRITE, self.write_ops)
        if kind is None:
            self.base.write(data)
            return len(data)
        if kind == "io_error":
            self._note(WRITE, kind, 0)
            raise OSError(f"injected write error (write #{self.write_ops})")
        if kind == "crash":
            self._note(WRITE, kind, 0)
            self.crashed = True
            raise SimulatedCrash(f"injected crash before write #{self.write_ops}")
        # Partial kinds: a strict prefix reaches the device.
        keep = self.schedule.rng.randrange(0, len(data)) if data else 0
        self.base.write(data[:keep])
        self._note(WRITE, kind, keep)
        if kind == "short_write":
            raise OSError(
                f"injected short write: {keep}/{len(data)} bytes (write #{self.write_ops})"
            )
        self.crashed = True  # torn_write
        raise SimulatedCrash(
            f"injected torn write: {keep}/{len(data)} bytes (write #{self.write_ops})"
        )

    def flush(self) -> None:
        self._require_alive()
        self.fsync_ops += 1
        if self.fsync_stall > 0.0:
            time.sleep(self.fsync_stall)
        kind = self.schedule.fault_for(FSYNC, self.fsync_ops)
        if kind == "io_error":
            self._note(FSYNC, kind, 0)
            raise OSError(f"injected fsync error (fsync #{self.fsync_ops})")
        if kind == "crash":
            self._note(FSYNC, kind, 0)
            self.crashed = True
            raise SimulatedCrash(f"injected crash during fsync #{self.fsync_ops}")
        self.base.flush()
        self.synced_len = self.base.tell()

    # ------------------------------------------------------------------ #
    # rewind support (used by the log manager's failure-atomic flush)      #
    # ------------------------------------------------------------------ #

    def seek(self, pos: int, whence: int = 0) -> int:
        return self.base.seek(pos, whence)

    def tell(self) -> int:
        return self.base.tell()

    def truncate(self, size: int | None = None) -> int:
        out = self.base.truncate(size)
        end = size if size is not None else self.base.tell()
        self.synced_len = min(self.synced_len, end)
        return out

    def writable(self) -> bool:
        return True

    def close(self) -> None:
        self.base.close()

    # ------------------------------------------------------------------ #
    # post-crash inspection                                               #
    # ------------------------------------------------------------------ #

    def image(self) -> bytes:
        """Every byte written so far, synced or not (in-memory bases only)."""
        if not isinstance(self.base, io.BytesIO):
            raise TypeError("image() requires an in-memory base device")
        return self.base.getvalue()

    def durable_image(self) -> bytes:
        """What survives a clean shutdown: exactly the fsynced prefix."""
        return self.image()[: self.synced_len]

    def crash_image(self, rng: random.Random | None = None) -> bytes:
        """What plausibly survives a power cut: the fsynced prefix plus a
        seeded-arbitrary prefix of the unsynced tail (the torn tail)."""
        full = self.image()
        unsynced = len(full) - self.synced_len
        draw = rng if rng is not None else self.schedule.rng
        keep = draw.randint(0, unsynced) if unsynced > 0 else 0
        return full[: self.synced_len + keep]

    # ------------------------------------------------------------------ #

    def _require_alive(self) -> None:
        if self.crashed:
            raise OSError("device unavailable after a simulated crash")

    def _note(self, op: str, kind: str, partial: int) -> None:
        index = self.write_ops if op == WRITE else self.fsync_ops
        self.faults_injected.append((op, index, kind, partial))

    def __repr__(self) -> str:
        return (
            f"FaultyDevice(writes={self.write_ops}, fsyncs={self.fsync_ops}, "
            f"synced={self.synced_len}, crashed={self.crashed})"
        )
