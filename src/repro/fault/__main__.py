"""Command-line crash-torture runner.

CI entry point::

    PYTHONPATH=src python -m repro.fault --schedules 20          # PR gate
    PYTHONPATH=src python -m repro.fault --schedules 200 -v      # nightly

Exit status 0 iff every schedule upholds the durability invariant.
"""

from __future__ import annotations

import argparse
import sys

from repro.fault.harness import run_torture


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault", description="seeded crash-torture schedules"
    )
    parser.add_argument("--schedules", type=int, default=20, help="schedules to run")
    parser.add_argument("--seed", type=int, default=0, help="first schedule seed")
    parser.add_argument("--txns", type=int, default=40, help="transactions per schedule")
    parser.add_argument(
        "--tpcc-every", type=int, default=10,
        help="every Nth schedule runs the TPC-C mode (0 disables)",
    )
    parser.add_argument(
        "--transient-every", type=int, default=5,
        help="every Nth schedule runs the transient-errors mode (0 disables)",
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="print every report")
    args = parser.parse_args(argv)

    reports = run_torture(
        schedules=args.schedules,
        seed=args.seed,
        txns=args.txns,
        tpcc_every=args.tpcc_every,
        transient_every=args.transient_every,
        verbose=args.verbose,
    )
    failed = [r for r in reports if not r.ok]
    crashed = sum(1 for r in reports if r.crashed)
    print(
        f"{len(reports)} schedules: {len(reports) - len(failed)} ok, "
        f"{len(failed)} failed ({crashed} crashed, "
        f"{sum(r.txns_acked for r in reports)} acked, "
        f"{sum(r.txns_recovered for r in reports)} recovered)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
