"""The crash-torture harness: seeded crash schedules against live engines.

One :func:`run_schedule` call is one simulated machine lifetime:

1. Build a :class:`~repro.db.Database` whose log device is a
   :class:`~repro.fault.device.FaultyDevice`, run a workload while
   tracking which transactions were *acked* (their durability callback
   fired after fsync) and what every committed transaction did.
2. Die at a seeded fault — a torn device write, a crash point inside WAL
   flush / checkpoint write / transform gather, or (in ``transient``
   mode) merely suffer recoverable device errors and shut down cleanly.
3. "Reboot": take the device's :meth:`crash_image` (fsynced prefix plus a
   seeded torn tail), replay it into a fresh database, and check the
   durability invariant.

The invariant checked (the strongest statement true of group commit over
a torn-tail device):

- the recovered transactions are a *prefix* of the commit order,
- every acked transaction is inside that prefix (acked ⇒ durable),
- the recovered table state equals the committed prefix's effects exactly
  — so every unacked transaction beyond the prefix is *fully absent*,
  and no transaction is ever partially present.  (A committed-but-unacked
  transaction at the very tail may survive complete — the client was
  simply never told; that is the standard group-commit contract.)

``tpcc`` mode runs the same lifecycle over a miniature TPC-C database and
additionally requires the spec's consistency conditions (clause 3.3.2) to
hold after recovery.

Everything is derived from one integer seed, so a red run reproduces from
its report alone.  The harness is deliberately single-threaded: group
commit is driven by explicit ``flush()`` calls on a seeded cadence, which
makes every schedule deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.fault.crashpoints import CrashPointInjector, armed
from repro.fault.device import FaultSchedule, FaultSpec, FaultyDevice, SimulatedCrash

if TYPE_CHECKING:
    from repro.db import Database

#: Crash sites a schedule can draw, with coarse weights: WAL flush faults
#: dominate real deployments, checkpoint/transform crashes are rarer.
CRASH_SITES = (
    "device.torn_write",
    "device.crash_fsync",
    "wal.flush.pre_fsync",
    "wal.flush.post_fsync",
    "checkpoint.write",
    "transform.gather",
)

_INJECTOR_SITES = frozenset(
    {"wal.flush.pre_fsync", "wal.flush.post_fsync", "checkpoint.write", "transform.gather"}
)


@dataclass
class ScheduleReport:
    """Outcome of one seeded schedule; ``ok`` is the harness verdict."""

    seed: int
    mode: str  # "kv" | "transient" | "tpcc"
    crash_site: str | None
    crashed: bool
    txns_committed: int
    txns_acked: int
    txns_recovered: int
    faults_injected: int
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "FAIL " + "; ".join(self.violations)
        return (
            f"seed={self.seed:>5} mode={self.mode:<9} "
            f"site={self.crash_site or '-':<22} crashed={int(self.crashed)} "
            f"committed={self.txns_committed:>3} acked={self.txns_acked:>3} "
            f"recovered={self.txns_recovered:>3} faults={self.faults_injected} "
            f"{verdict}"
        )


# ---------------------------------------------------------------------- #
# the KV workload: precise effect tracking                                #
# ---------------------------------------------------------------------- #


class _KvState:
    """Expected logical state: id → (payload, seq), built per commit."""

    def __init__(self) -> None:
        #: In commit order: (commit_ts, [(op, id, payload, seq), ...]).
        self.commits: list[tuple[int, list[tuple[str, int, str | None, int | None]]]] = []

    def apply_prefix(self, count: int) -> dict[int, tuple[str, int]]:
        state: dict[int, tuple[str, int]] = {}
        for _, ops in self.commits[:count]:
            for op, key, payload, seq in ops:
                if op == "delete":
                    state.pop(key, None)
                else:
                    state[key] = (payload, seq)  # type: ignore[assignment]
        return state


def _build_kv_db(device: FaultyDevice, block_size: int) -> "Database":
    from repro import ColumnSpec, Database, INT64, UTF8

    db = Database(log_device=device, cold_threshold_epochs=1)
    db.create_table(
        "kv",
        [ColumnSpec("id", INT64), ColumnSpec("payload", UTF8), ColumnSpec("seq", INT64)],
        block_size=block_size,
        watch_cold=True,
    )
    return db


def _kv_txn(db: "Database", rng: random.Random, state: _KvState, next_id: int,
            slots: dict[int, Any], acked: set[int], txn_index: int) -> int:
    """One workload transaction: 1-3 ops, tracked for later verification."""
    table = db.catalog.table("kv")
    txn = db.begin()
    ops: list[tuple[str, int, str | None, int | None]] = []
    payload = f"v{txn_index}-" + "x" * rng.randrange(0, 40)
    slots[next_id] = table.insert(txn, {0: next_id, 1: payload, 2: txn_index})
    ops.append(("insert", next_id, payload, txn_index))
    next_id += 1
    live_ids = [k for k in slots if not any(o[0] == "delete" and o[1] == k for o in ops)]
    if live_ids and rng.random() < 0.45:
        victim = rng.choice(live_ids)
        update_payload = f"u{txn_index}-" + "y" * rng.randrange(0, 20)
        if table.update(txn, slots[victim], {1: update_payload, 2: txn_index}):
            ops.append(("update", victim, update_payload, txn_index))
    if len(live_ids) > 4 and rng.random() < 0.15:
        victim = rng.choice(live_ids[:-1])
        if table.delete(txn, slots[victim]):
            ops.append(("delete", victim, None, None))
            del slots[victim]

    def _on_durable(txn=txn) -> None:
        from repro.txn.context import TxnState

        if txn.state is TxnState.COMMITTED:
            acked.add(txn.commit_ts)

    txn.on_durable(_on_durable)
    commit_ts = db.commit(txn)
    state.commits.append((commit_ts, ops))
    return next_id


# ---------------------------------------------------------------------- #
# schedule construction                                                   #
# ---------------------------------------------------------------------- #


def _pick_plan(rng: random.Random, mode: str, txns: int) -> dict:
    """Everything a schedule decides, drawn from the seed's RNG."""
    plan = {
        "flush_every": rng.randrange(1, 5),
        "maintenance_every": rng.randrange(4, 12),
        "block_size": rng.choice((1 << 12, 1 << 13)),
        "crash_site": None,
        "crash_skip": 0,
        "device_specs": [],
        "checkpoint_at": None,
    }
    if mode == "transient":
        # Recoverable device errors only; the run must end clean and lossless.
        writes = sorted(rng.sample(range(1, max(txns, 8)), k=min(3, txns // 4 or 1)))
        plan["device_specs"] = [
            FaultSpec("write", at, rng.choice(("io_error", "short_write"))) for at in writes
        ] + [FaultSpec("fsync", rng.randrange(1, max(txns // 2, 2)), "io_error")]
        return plan
    site = CRASH_SITES[rng.randrange(len(CRASH_SITES))]
    plan["crash_site"] = site
    if site == "device.torn_write":
        plan["device_specs"] = [FaultSpec("write", rng.randrange(2, txns + 2), "torn_write")]
    elif site == "device.crash_fsync":
        plan["device_specs"] = [FaultSpec("fsync", rng.randrange(1, txns + 1), "crash")]
    elif site == "checkpoint.write":
        plan["checkpoint_at"] = rng.randrange(txns // 3 or 1, txns)
        # skip=0: the crash must land inside this run's single checkpoint
        # (a completed checkpoint truncates the log out from under the
        # faulty device, which models a device swap, not a crash).
    else:
        plan["crash_skip"] = rng.randrange(0, max(3, txns // 2))
    return plan


# ---------------------------------------------------------------------- #
# the KV / transient lifetimes                                            #
# ---------------------------------------------------------------------- #


def run_schedule(seed: int, mode: str = "kv", txns: int = 40) -> ScheduleReport:
    """Run one seeded lifetime; returns its report (see module docstring)."""
    if mode == "tpcc":
        return _run_tpcc_schedule(seed, txns)
    rng = random.Random(seed)
    plan = _pick_plan(rng, mode, txns)
    device = FaultyDevice(schedule=FaultSchedule(plan["device_specs"], seed=seed))
    db = _build_kv_db(device, plan["block_size"])
    state = _KvState()
    slots: dict[int, Any] = {}
    acked: set[int] = set()
    crashed = False
    db.log_manager.synchronous = False

    site = plan["crash_site"]
    injector = CrashPointInjector(site, skip=plan["crash_skip"]) if site in _INJECTOR_SITES \
        else CrashPointInjector("<never>")
    next_id = 0
    with armed(injector):
        try:
            for i in range(txns):
                next_id = _kv_txn(db, rng, state, next_id, slots, acked, i)
                if (i + 1) % plan["flush_every"] == 0:
                    _flush_tolerating_transients(db, mode)
                if (i + 1) % plan["maintenance_every"] == 0:
                    db.run_maintenance()
                if plan["checkpoint_at"] is not None and i + 1 == plan["checkpoint_at"]:
                    # Scheduled only with a crash point inside the snapshot:
                    # the log is never truncated, recovery replays it whole.
                    db.checkpoint()
            _final_drain(db, mode)
        except SimulatedCrash:
            crashed = True
        except OSError:
            # A device error surfaced outside a tolerated flush (possible
            # when the final drain hits a scheduled fault): the run ends
            # here, durability-acked state must still recover.
            crashed = True

    image = device.crash_image(rng) if crashed else device.durable_image()
    return _verify_kv(seed, mode, plan, crashed, device, image, state, acked)


def _flush_tolerating_transients(db: "Database", mode: str) -> None:
    """Group-commit tick; in transient mode OSErrors are retried later."""
    try:
        db.log_manager.flush()
    except OSError:
        if mode != "transient":
            raise


def _final_drain(db: "Database", mode: str) -> None:
    """Drain the queue at clean shutdown.

    Transient faults are one-shot, so a few retries must succeed — the
    failure-atomic flush re-queued everything, nothing may be lost."""
    attempts = 5 if mode == "transient" else 1
    for attempt in range(attempts):
        try:
            db.log_manager.flush()
            return
        except OSError:
            if attempt == attempts - 1:
                raise


def _verify_kv(
    seed: int,
    mode: str,
    plan: dict,
    crashed: bool,
    device: FaultyDevice,
    image: bytes,
    state: _KvState,
    acked: set[int],
) -> ScheduleReport:
    from repro.wal.records import decode_stream

    violations: list[str] = []
    recovered_ts: list[int] = []
    try:
        recovered_ts = [t.commit_ts for t in decode_stream(image, tolerate_torn_tail=True)]
    except Exception as exc:
        violations.append(f"recovery decode raised {exc!r}")

    committed_ts = [ts for ts, _ in state.commits]
    if not violations:
        # Prefix property: the log can only lose a suffix, atomically.
        if recovered_ts != committed_ts[: len(recovered_ts)]:
            violations.append(
                f"recovered transactions are not a commit-order prefix: "
                f"{recovered_ts[:8]}... vs {committed_ts[:8]}..."
            )
        # Durability: every acked transaction survives.
        missing = acked - set(recovered_ts)
        if missing:
            violations.append(f"acked transactions lost by recovery: {sorted(missing)}")
        if mode == "transient" and not crashed:
            if len(recovered_ts) != len(committed_ts):
                violations.append(
                    f"clean shutdown lost transactions: {len(recovered_ts)} of "
                    f"{len(committed_ts)} recovered"
                )

    if not violations:
        # Replay into a fresh engine and diff the full logical state.
        fresh_device = FaultyDevice()
        fresh = _build_kv_db(fresh_device, plan["block_size"])
        try:
            fresh.recover_from(image, tolerate_torn_tail=True)
        except Exception as exc:
            violations.append(f"recovery replay raised {exc!r}")
        else:
            expected = state.apply_prefix(len(recovered_ts))
            reader = fresh.begin()
            actual = {
                row.get(0): (row.get(1), row.get(2))
                for _, row in fresh.catalog.table("kv").scan(reader)
            }
            fresh.commit(reader)
            if actual != expected:
                extra = sorted(set(actual) - set(expected))
                lost = sorted(set(expected) - set(actual))
                wrong = sorted(
                    k for k in set(actual) & set(expected) if actual[k] != expected[k]
                )
                violations.append(
                    f"recovered state diverges: extra={extra[:5]} lost={lost[:5]} "
                    f"wrong={wrong[:5]}"
                )

    return ScheduleReport(
        seed=seed,
        mode=mode,
        crash_site=plan["crash_site"],
        crashed=crashed,
        txns_committed=len(committed_ts),
        txns_acked=len(acked),
        txns_recovered=len(recovered_ts),
        faults_injected=len(device.faults_injected),
        violations=violations,
    )


# ---------------------------------------------------------------------- #
# the TPC-C lifetime                                                      #
# ---------------------------------------------------------------------- #


def _tiny_tpcc_config():
    from repro.workloads.tpcc.schema import TpccConfig

    return TpccConfig(
        warehouses=1,
        districts_per_warehouse=2,
        customers_per_district=12,
        items=40,
        initial_orders_per_district=8,
        stock_per_warehouse=40,
        block_size=1 << 12,
    )


def _run_tpcc_schedule(seed: int, txns: int = 25) -> ScheduleReport:
    """One TPC-C lifetime: load, run the mix, crash, recover, check clause
    3.3.2 consistency on the recovered database."""
    from repro import Database
    from repro.workloads.tpcc.consistency import check_consistency
    from repro.workloads.tpcc.driver import MIX, TpccDriver
    from repro.workloads.tpcc.schema import create_tpcc_tables
    from repro.workloads.tpcc.transactions import TpccTransactions
    from repro.wal.records import decode_stream

    rng = random.Random(seed)
    plan = _pick_plan(rng, "kv", txns)
    config = _tiny_tpcc_config()
    db = Database(cold_threshold_epochs=1)
    driver = TpccDriver(db, config=config, seed=seed)
    driver.setup()  # synchronous clean device: the load is fully durable
    db.log_manager.flush()
    # Swap the (now fully synced) clean device for a faulty wrapper so the
    # schedule's op indices count from the start of the measured mix.
    device = FaultyDevice(
        base=db.log_manager.device,
        schedule=FaultSchedule(plan["device_specs"], seed=seed),
    )
    device.synced_len = device.base.tell()
    db.log_manager.device = device
    base_recovered = len(decode_stream(device.durable_image()))

    site = plan["crash_site"]
    injector = CrashPointInjector(site, skip=plan["crash_skip"]) if site in _INJECTOR_SITES \
        else CrashPointInjector("<never>")
    executor = TpccTransactions(db, config, seed=seed + 1000)
    db.log_manager.synchronous = False
    crashed = False

    with armed(injector):
        try:
            for i in range(txns):
                pick = executor.rand.random()
                for profile, threshold in MIX:
                    if pick <= threshold:
                        getattr(executor, profile)(1)
                        break
                if (i + 1) % plan["flush_every"] == 0:
                    db.log_manager.flush()
                if (i + 1) % plan["maintenance_every"] == 0:
                    db.run_maintenance()
                if plan["checkpoint_at"] is not None and i + 1 == plan["checkpoint_at"]:
                    db.checkpoint()
            db.log_manager.flush()
        except SimulatedCrash:
            crashed = True
        except OSError:
            crashed = True

    image = device.crash_image(rng) if crashed else device.durable_image()
    violations: list[str] = []
    recovered = 0
    fresh = Database(cold_threshold_epochs=1)
    create_tpcc_tables(fresh, config)
    try:
        recovered = fresh.recover_from(image, tolerate_torn_tail=True)
    except Exception as exc:
        violations.append(f"TPC-C recovery raised {exc!r}")
    else:
        if recovered < base_recovered:
            violations.append(
                f"recovery lost the durable load: {recovered} < {base_recovered}"
            )
        if recovered < base_recovered + executor.acked_writes:
            violations.append(
                f"acked mix transactions lost: recovered {recovered - base_recovered} "
                f"of {executor.acked_writes} acked"
            )
        report = check_consistency(fresh)
        for violation in report.violations:
            violations.append(f"TPC-C consistency: {violation}")

    return ScheduleReport(
        seed=seed,
        mode="tpcc",
        crash_site=plan["crash_site"],
        crashed=crashed,
        txns_committed=executor.counters.total_committed,
        txns_acked=executor.acked_writes,
        txns_recovered=recovered,
        faults_injected=len(device.faults_injected),
        violations=violations,
    )


# ---------------------------------------------------------------------- #
# the fleet runner                                                        #
# ---------------------------------------------------------------------- #


def run_torture(
    schedules: int = 20,
    seed: int = 0,
    txns: int = 40,
    tpcc_every: int = 10,
    transient_every: int = 5,
    verbose: bool = False,
) -> list[ScheduleReport]:
    """Run ``schedules`` seeded lifetimes; returns every report.

    Seeds are ``seed .. seed+schedules-1``.  Every ``tpcc_every``-th
    schedule runs the TPC-C mode, every ``transient_every``-th the
    transient-errors mode, the rest the KV crash mode.
    """
    reports = []
    for i in range(schedules):
        s = seed + i
        if tpcc_every and i % tpcc_every == tpcc_every - 1:
            mode = "tpcc"
        elif transient_every and i % transient_every == transient_every - 1:
            mode = "transient"
        else:
            mode = "kv"
        report = run_schedule(s, mode=mode, txns=txns)
        reports.append(report)
        if verbose or not report.ok:
            print(report)
    return reports
