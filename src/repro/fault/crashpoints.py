"""Named crash points: deterministic process-death injection in engine code.

Engine layers mark the moments a real deployment could die in —
mid-flush, mid-checkpoint, mid-gather — with ``crash_point("name")``
calls.  Unarmed, a crash point is one module-global load and a branch
(nanoseconds; benchmarked by the obs-overhead ablation alongside the
metric hot path).  Armed with a :class:`CrashPointInjector`, the matching
visit raises :class:`SimulatedCrash`, which no engine handler catches —
the torture harness models the reboot.

Registered points (grep for ``crash_point(`` to verify the list):

- ``wal.flush.pre_fsync`` — commit records written, fsync not yet issued
- ``wal.flush.post_fsync`` — fsync done, durability callbacks not yet fired
- ``checkpoint.write`` — between per-table snapshot streams
- ``transform.gather`` — before a FREEZING block's varlen gather
- ``export.serialize`` — before an export run's server-side serialization
- ``coordinator.prepare`` — before each 2PC participant's prepare call
- ``participant.ack`` — after a durable prepare ack / phase-2 application
- ``coordinator.decide`` — twice around the 2PC decision write (use the
  injector's ``skip`` to land before or after the decision is forced)

The armed injector is deliberately process-global and single-crash: the
harness runs one seeded schedule at a time, and a crash by definition ends
the run.  Use :func:`armed` to scope arming to a ``with`` block.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.fault.device import SimulatedCrash

_ACTIVE: "CrashPointInjector | None" = None


def crash_point(name: str) -> None:
    """Mark a crash site; raises :class:`SimulatedCrash` when armed for it."""
    injector = _ACTIVE
    if injector is not None:
        injector.visit(name)


class CrashPointInjector:
    """Raises :class:`SimulatedCrash` at the ``skip``+1-th visit of ``point``.

    ``skip`` lets a schedule target e.g. the third flush rather than the
    first; ``visits`` counts every crash point seen (fired or not), which
    the harness uses to verify a schedule actually reached its target.
    """

    def __init__(self, point: str, skip: int = 0) -> None:
        self.point = point
        self.remaining_skips = skip
        self.fired = False
        self.visits: dict[str, int] = {}

    def visit(self, name: str) -> None:
        self.visits[name] = self.visits.get(name, 0) + 1
        if self.fired or name != self.point:
            return
        if self.remaining_skips > 0:
            self.remaining_skips -= 1
            return
        self.fired = True
        # Journal the fire before raising: the simulated reboot throws the
        # engine away, but the flight recorder is what the "operator"
        # (torture-harness report, /events scrape) reads afterwards.
        from repro.obs.recorder import broadcast

        broadcast("fault.crash_point", point=name)
        raise SimulatedCrash(f"crash point {name!r}")


def arm(injector: CrashPointInjector) -> None:
    """Install ``injector`` as the process-wide crash-point handler."""
    global _ACTIVE
    _ACTIVE = injector


def disarm() -> None:
    """Remove any armed injector (crash points become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def armed(injector: CrashPointInjector) -> Iterator[CrashPointInjector]:
    """Scope arming to a ``with`` block; always disarms, even on crash."""
    arm(injector)
    try:
        yield injector
    finally:
        disarm()
