"""Deterministic fault injection for the durability stack.

Three layers, all seeded and replayable:

- :mod:`repro.fault.device` — :class:`FaultyDevice`, a log-device wrapper
  injecting torn writes, short writes, I/O errors, and process death
  (:class:`SimulatedCrash`) on a :class:`FaultSchedule`.
- :mod:`repro.fault.crashpoints` — named crash sites inside engine code
  (WAL flush, checkpoint write, transform gather, export serialize).
- :mod:`repro.fault.harness` — the crash-torture harness: seeded
  workload → injected death → recovery → durability-invariant check.
  Run it from the command line: ``python -m repro.fault --schedules 20``.

Import order matters here only for cycle-safety: ``device`` and
``crashpoints`` are dependency-light (engine modules import *them*); the
harness pulls in the full engine and is imported last, lazily inside its
own functions.
"""

from repro.fault.device import (
    FSYNC,
    WRITE,
    FaultSchedule,
    FaultSpec,
    FaultyDevice,
    SimulatedCrash,
)
from repro.fault.crashpoints import (
    CrashPointInjector,
    arm,
    armed,
    crash_point,
    disarm,
)
from repro.fault.harness import CRASH_SITES, ScheduleReport, run_schedule, run_torture

__all__ = [
    "CRASH_SITES",
    "CrashPointInjector",
    "FSYNC",
    "FaultSchedule",
    "FaultSpec",
    "FaultyDevice",
    "ScheduleReport",
    "SimulatedCrash",
    "WRITE",
    "arm",
    "armed",
    "crash_point",
    "disarm",
    "run_schedule",
    "run_torture",
]
