"""Table and index definitions.

The catalog owns the name → :class:`~repro.storage.data_table.DataTable`
mapping, computes each table's block layout once at creation (Section 3.2),
and brokers index creation through the :class:`IndexManager`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal

from repro.errors import CatalogError
from repro.index.manager import IndexManager, TableIndex
from repro.storage.block_store import BlockStore
from repro.storage.constants import BLOCK_SIZE
from repro.storage.data_table import DataTable
from repro.storage.layout import BlockLayout, ColumnSpec

if TYPE_CHECKING:
    from repro.txn.context import TransactionContext


@dataclass
class TableInfo:
    """Everything the catalog knows about one table."""

    name: str
    table: DataTable
    columns: list[ColumnSpec]
    indexes: dict[str, TableIndex] = field(default_factory=dict)

    def column_id(self, column_name: str) -> int:
        """Position of ``column_name`` in the table's layout."""
        return self.table.layout.index_of(column_name)


class Catalog:
    """The database's table registry."""

    def __init__(self, block_store: BlockStore | None = None) -> None:
        self.block_store = block_store or BlockStore()
        self.index_manager = IndexManager()
        self._tables: dict[str, TableInfo] = {}
        self._lock = threading.Lock()

    def create_table(
        self,
        name: str,
        columns: list[ColumnSpec],
        block_size: int = BLOCK_SIZE,
    ) -> TableInfo:
        """Define a table; its layout is computed once, here."""
        with self._lock:
            if name in self._tables:
                raise CatalogError(f"table {name!r} already exists")
            layout = BlockLayout(columns, block_size=block_size)
            info = TableInfo(name, DataTable(self.block_store, layout, name), list(columns))
            self._tables[name] = info
            return info

    def create_index(
        self,
        table_name: str,
        index_name: str,
        key_column_names: list[str],
        kind: Literal["bplus", "hash"] = "bplus",
        backfill_txn: "TransactionContext | None" = None,
    ) -> TableIndex:
        """Create a named index over a table's key columns."""
        info = self.get(table_name)
        qualified = f"{table_name}.{index_name}"
        key_columns = [info.column_id(c) for c in key_column_names]
        index = self.index_manager.create_index(
            qualified, info.table, key_columns, kind, backfill_txn
        )
        info.indexes[index_name] = index
        return index

    def get(self, name: str) -> TableInfo:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def table(self, name: str) -> DataTable:
        """Shortcut for ``get(name).table``."""
        return self.get(name).table

    def index(self, table_name: str, index_name: str) -> TableIndex:
        """Look up an index by table and index name."""
        info = self.get(table_name)
        try:
            return info.indexes[index_name]
        except KeyError:
            raise CatalogError(
                f"table {table_name!r} has no index {index_name!r}"
            ) from None

    def table_names(self) -> list[str]:
        """All table names, in creation order."""
        return list(self._tables)

    def data_tables(self) -> dict[str, DataTable]:
        """Name → DataTable mapping (what recovery needs)."""
        return {name: info.table for name, info in self._tables.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)
