"""The catalog: named tables, their schemas, and their indexes."""

from repro.catalog.catalog import Catalog, TableInfo

__all__ = ["Catalog", "TableInfo"]
