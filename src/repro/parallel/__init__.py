"""Multiprocess scan/export parallelism over shared-memory frozen blocks.

The GIL caps every in-process scan, gather, and Arrow-IPC serialization at
one core.  Frozen blocks, though, are immutable Arrow-compatible byte
buffers — the paper's central premise — so they can be handed to *other
processes* with zero copies:

- :mod:`repro.parallel.arena` — a slot allocator over named
  ``multiprocessing.shared_memory`` segments with strict cleanup hygiene;
- :mod:`repro.parallel.placement` — copies blocks into arena slots at
  freeze time and records picklable descriptors;
- :mod:`repro.parallel.worker` — the worker-process side: rebuilds Arrow
  views from descriptors and runs scan/serialize fragments;
- :mod:`repro.parallel.pool` — the persistent worker pool with stale-result
  filtering, crash fallback, and respawn.

The hot/MVCC path never leaves the owning process (Hekaton's
owning-thread-of-control discipline at process granularity); the
coordinator decides snapshot visibility for frozen data by pinning blocks
with valid descriptors, so workers never touch version chains.  Every
parallel path degrades to the serial one when the pool is unavailable.
"""

from repro.parallel.arena import ArenaSlot, SharedMemoryArena, shm_available
from repro.parallel.placement import (
    BlockDescriptor,
    ColumnRegion,
    descriptor_if_valid,
    place_block,
    release_block_slot,
)
from repro.parallel.pool import START_METHOD_ENV, WorkerPool, default_start_method

__all__ = [
    "ArenaSlot",
    "BlockDescriptor",
    "ColumnRegion",
    "START_METHOD_ENV",
    "SharedMemoryArena",
    "WorkerPool",
    "default_start_method",
    "descriptor_if_valid",
    "place_block",
    "release_block_slot",
    "shm_available",
]
