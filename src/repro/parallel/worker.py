"""Worker-process side of the parallel scan/export pool.

A worker attaches the arena's shared-memory segments read-only and executes
*fragments*: batches of :class:`~repro.parallel.placement.BlockDescriptor`
to either scan (zone-map pruning, bulk column materialization, NULL masks,
selection vectors) or serialize (Arrow IPC encoding of the block batch).
Workers never see transactions, version chains, or block objects — the
coordinator decides snapshot visibility before dispatching, so everything
here is pure computation over immutable bytes.

Parity with the serial path is by construction, not by reimplementation:
fragments rebuild the same :class:`~repro.arrowfmt.array` objects the
in-process scanner uses (buffer logical sizes included) and run them
through the same ``ipc.write_batch`` / :func:`~repro.query.scan.compute_selection`
code, so scan results and IPC payloads are byte-identical to serial output.
"""

from __future__ import annotations

import io
import os
import signal
from time import perf_counter
from typing import Any

import numpy as np

from repro.arrowfmt import ipc
from repro.arrowfmt.array import FixedSizeArray, VarBinaryArray
from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.arrowfmt.datatypes import Field, Schema, type_from_json
from repro.arrowfmt.table import RecordBatch
from repro.parallel.placement import BlockDescriptor
from repro.query.scan import compute_selection, pruned_by_zone_map

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None  # type: ignore[assignment]

#: name -> (SharedMemory, flat uint8 view); kept for the worker's lifetime.
_SegmentCache = dict


def _segment_view(cache: _SegmentCache, name: str) -> np.ndarray:
    entry = cache.get(name)
    if entry is None:
        segment = _shm.SharedMemory(name=name)
        entry = (segment, np.frombuffer(segment.buf, dtype=np.uint8))
        cache[name] = entry
    return entry[1]


def _payload_view(cache: _SegmentCache, desc: BlockDescriptor) -> np.ndarray:
    view = _segment_view(cache, desc.segment)
    return view[desc.base_offset : desc.base_offset + desc.nbytes]


# ---------------------------------------------------------------------- #
# rebuilding Arrow structures from a descriptor                           #
# ---------------------------------------------------------------------- #


def _validity(buf: np.ndarray, col, n: int) -> Bitmap | None:
    """Replicates ``arrow_view._prefix_validity`` over the slot payload."""
    region = buf[col.validity_offset : col.validity_offset + col.validity_nbytes]
    bitmap = Bitmap(Buffer(region, col.validity_nbytes), n)
    if n and bitmap.count_set() == n:
        return None
    return bitmap


def descriptor_record_batch(cache: _SegmentCache, desc: BlockDescriptor) -> RecordBatch:
    """The block's record batch, with buffers aliasing shared memory.

    Mirrors ``block_to_record_batch`` for the non-dictionary case: identical
    buffer logical sizes, so IPC serialization is byte-for-byte the same.
    """
    buf = _payload_view(cache, desc)
    n = desc.num_rows
    fields = []
    arrays = []
    for col in desc.columns:
        dtype = type_from_json(col.type_json)
        fields.append(Field(col.name, dtype, nullable=True))
        validity = _validity(buf, col, n)
        if col.is_varlen:
            offsets = Buffer(
                buf[col.offsets_offset : col.offsets_offset + 4 * (n + 1)],
                4 * (n + 1),
            )
            values = Buffer(
                buf[col.values_offset : col.values_offset + col.values_nbytes],
                col.values_nbytes,
            )
            arrays.append(VarBinaryArray(dtype, n, offsets, values, validity))
        else:
            nbytes = n * dtype.byte_width
            values = Buffer(buf[col.data_offset : col.data_offset + nbytes], nbytes)
            arrays.append(FixedSizeArray(dtype, n, values, validity))
    return RecordBatch(Schema(fields), arrays)


# ---------------------------------------------------------------------- #
# fragment execution                                                      #
# ---------------------------------------------------------------------- #


def run_scan_fragment(
    cache: _SegmentCache,
    descriptors: list[BlockDescriptor],
    column_ids: list[int],
    range_filters: dict[int, tuple[float | None, float | None]],
) -> list[dict[str, Any]]:
    """Scan each descriptor; one result dict per block, in input order."""
    return [
        _scan_descriptor(cache, desc, column_ids, range_filters)
        for desc in descriptors
    ]


def _scan_descriptor(
    cache: _SegmentCache,
    desc: BlockDescriptor,
    column_ids: list[int],
    range_filters: dict[int, tuple[float | None, float | None]],
) -> dict[str, Any]:
    if pruned_by_zone_map(desc.zone_maps, range_filters):
        return {"block_id": desc.block_id, "pruned": True}
    batch = descriptor_record_batch(cache, desc)
    n = batch.num_rows
    fixed: dict[int, np.ndarray] = {}
    null_masks: dict[int, np.ndarray] = {}
    varlen: dict[int, tuple] = {}
    filter_columns: dict[int, Any] = {}
    for column_id in column_ids:
        col = desc.columns[column_id]
        array = batch.columns[column_id]
        if not col.is_varlen:
            fixed[column_id] = array.to_numpy()
            if array.null_count:
                null_masks[column_id] = ~array.validity.to_numpy()[:n]
            filter_columns[column_id] = fixed[column_id]
        else:
            valid = (
                array.validity.to_numpy()[:n] if array.validity is not None else None
            )
            varlen[column_id] = (
                array.offsets_numpy(),
                array.values.view(0, array.values.size),
                valid,
            )
            if column_id in range_filters:
                filter_columns[column_id] = array.to_pylist()
    selection = None
    if range_filters and n:
        selection = compute_selection(filter_columns, null_masks, range_filters, n)
    return {
        "block_id": desc.block_id,
        "pruned": False,
        "num_rows": n,
        "fixed": fixed,
        "null_masks": null_masks,
        "varlen": varlen,
        "selection": selection,
    }


def run_serialize_fragment(
    cache: _SegmentCache, descriptors: list[BlockDescriptor]
) -> list[dict[str, Any]]:
    """Arrow-IPC-encode each descriptor's batch; one payload per block."""
    results = []
    for desc in descriptors:
        out = io.BytesIO()
        ipc.write_batch(out, descriptor_record_batch(cache, desc))
        results.append(
            {
                "block_id": desc.block_id,
                "num_rows": desc.num_rows,
                "payload": out.getvalue(),
            }
        )
    return results


# ---------------------------------------------------------------------- #
# process entry point                                                     #
# ---------------------------------------------------------------------- #


def _execute(cache: _SegmentCache, kind: str, payload: tuple, telemetry=None) -> Any:
    if kind == "scan":
        descriptors, column_ids, range_filters = payload
        result = run_scan_fragment(cache, descriptors, column_ids, range_filters)
        if telemetry is not None:
            telemetry.counter(
                "parallel.fragment_blocks_total",
                "blocks processed by worker fragments",
            ).inc(len(descriptors))
            telemetry.counter(
                "parallel.fragment_rows_total",
                "rows materialized by worker scan fragments",
            ).inc(sum(r.get("num_rows", 0) for r in result if not r["pruned"]))
        return result
    if kind == "serialize":
        (descriptors,) = payload
        result = run_serialize_fragment(cache, descriptors)
        if telemetry is not None:
            telemetry.counter(
                "parallel.fragment_blocks_total",
                "blocks processed by worker fragments",
            ).inc(len(descriptors))
            telemetry.counter(
                "parallel.fragment_bytes_total",
                "Arrow IPC bytes encoded by worker fragments",
            ).inc(sum(len(r["payload"]) for r in result))
        return result
    if kind == "ping":
        return "pong"
    if kind == "crash":  # test hook: simulate a worker dying mid-task
        os._exit(1)
    if kind == "telemetry_burst":  # test hook: stage N events, ship normally
        (count,) = payload
        if telemetry is not None:
            for index in range(count):
                telemetry.record("test.relay_burst", index=index)
        return count
    if kind == "telemetry_crash":  # test hook: stage N events, die unshipped
        (count,) = payload
        if telemetry is not None:
            for index in range(count):
                telemetry.record("test.relay_doomed", index=index)
        os.kill(os.getpid(), signal.SIGKILL)
        return None  # pragma: no cover - unreachable
    raise ValueError(f"unknown fragment kind {kind!r}")


def worker_main(
    worker_index: int, task_queue, result_queue, telemetry_args=None
) -> None:
    """Run fragments until a ``None`` sentinel arrives.

    Results are ``(task_id, worker_index, ok, result_or_error, telemetry)``;
    the coordinator matches them by task id and treats anything it cannot
    match (results of abandoned queries) as stale.  ``telemetry`` is the
    :meth:`~repro.obs.relay.WorkerTelemetry.flush` payload covering the
    task — metric deltas, staged events, drained spans — or ``None`` when
    the pool runs without a relay; a final telemetry-only message with
    ``task_id=None`` is sent at shutdown so nothing staged is lost.

    Tasks are ``(task_id, kind, payload, trace_ctx)``: the trace context
    captured at dispatch is activated around execution, so worker spans
    join the coordinator's causal tree.
    """
    # The coordinator owns shutdown; a Ctrl-C aimed at it should not kill
    # workers mid-IPC (they exit via sentinel or pool stop instead).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    telemetry = None
    if telemetry_args is not None:
        try:
            from repro.obs.relay import WorkerTelemetry

            telemetry = WorkerTelemetry(worker_index, **telemetry_args)
        except Exception:  # pragma: no cover - telemetry must never wedge work
            telemetry = None
    cache: _SegmentCache = {}
    while True:
        task = task_queue.get()
        if task is None:
            break
        if len(task) == 4:
            task_id, kind, payload, ctx = task
        else:  # pragma: no cover - compatibility with 3-tuple dispatchers
            task_id, kind, payload = task
            ctx = None
        flushed = None
        try:
            if telemetry is not None:
                started = perf_counter()
                with telemetry.activated(ctx):
                    with telemetry.span(
                        f"parallel.{kind}_fragment", task_id=task_id
                    ):
                        result = _execute(cache, kind, payload, telemetry)
                duration = perf_counter() - started
                telemetry.histogram(
                    "parallel.fragment_seconds", "worker-side fragment latency"
                ).observe(duration)
                telemetry.record(
                    "parallel.fragment", fragment_kind=kind, seconds=duration
                )
                flushed = telemetry.flush(ctx)
            else:
                result = _execute(cache, kind, payload)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            try:
                if telemetry is not None:
                    flushed = telemetry.flush(ctx)
                result_queue.put(
                    (
                        task_id,
                        worker_index,
                        False,
                        f"{type(exc).__name__}: {exc}",
                        flushed,
                    )
                )
            except Exception:  # pragma: no cover - queue torn down
                pass
            continue
        result_queue.put((task_id, worker_index, True, result, flushed))
    if telemetry is not None:
        # Shutdown flush: whatever the last task left behind (idle-period
        # events, profiler stacks) rides out on a telemetry-only message.
        try:
            result_queue.put((None, worker_index, True, None, telemetry.flush()))
        except Exception:  # pragma: no cover - queue torn down
            pass
        telemetry.close()
    # Drop every view over the segments before closing them, or SharedMemory
    # raises BufferError ("exported pointers exist") at interpreter exit.
    # The last task's locals (result arrays are slices of the cached view)
    # and any reference cycles pin buffers, so clear those first.
    task = result = flushed = payload = None  # noqa: F841
    import gc

    gc.collect()
    while cache:
        _, (segment, view) = cache.popitem()
        del view
        try:
            segment.close()
        except BufferError:  # pragma: no cover - still referenced elsewhere
            pass
