"""A shared-memory arena for frozen blocks (ROADMAP item 2).

Frozen blocks are immutable, Arrow-compatible byte buffers — the paper's
whole point — which makes them handable not just to external readers but to
*other processes* with zero copies.  The :class:`SharedMemoryArena` backs
that hand-off: it owns a set of ``multiprocessing.shared_memory`` segments,
carved into fixed-size slots (1 MB by default, the paper's block size), and
hands out contiguous slot runs for frozen-block payloads.  Worker processes
(:mod:`repro.parallel.pool`) attach the segments read-only and scan or
serialize the payloads with true hardware parallelism.

Hygiene rules, because leaked ``/dev/shm`` segments outlive the process:

- **Deterministic, prefix-namespaced names**: every segment is called
  ``repro-<pid hex>-<arena#>-<segment#>``, so a crashed run's leftovers are
  identifiable (and removable) by prefix.
- **Unlink on last release**: a segment whose slots are all free again is
  closed and unlinked immediately.
- **atexit + close()**: the creating process unlinks everything it still
  owns at interpreter exit; :meth:`close` (called by ``Database.close``)
  does the same eagerly.  The stdlib resource tracker is the final safety
  net for hard crashes.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError
from repro.obs.recorder import broadcast as _record_event
from repro.storage.constants import BLOCK_SIZE

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover
    _shm = None  # type: ignore[assignment]
    HAVE_SHARED_MEMORY = False

#: Process-wide arena sequence so two Databases never collide on names.
_ARENA_SEQ = itertools.count()


@dataclass(frozen=True)
class ArenaSlot:
    """One allocation: a contiguous run of slots inside a segment."""

    segment: str
    segment_index: int
    slot_index: int
    slot_count: int
    nbytes: int

    def byte_offset(self, slot_size: int) -> int:
        """Byte offset of the payload within the segment (slot-aligned)."""
        return self.slot_index * slot_size


class SharedMemoryArena:
    """Fixed-slot allocator over named shared-memory segments."""

    def __init__(
        self,
        slot_size: int = BLOCK_SIZE,
        slots_per_segment: int = 8,
        prefix: str | None = None,
        registry=None,
    ) -> None:
        if not HAVE_SHARED_MEMORY:
            raise StorageError("multiprocessing.shared_memory is unavailable")
        if slot_size <= 0 or slots_per_segment <= 0:
            raise StorageError("arena slot_size/slots_per_segment must be positive")
        if slot_size % 8:
            # Slot bases must stay 8-aligned so typed views over payloads
            # (int64 columns, int32 offsets) are legal in every process.
            raise StorageError("arena slot_size must be a multiple of 8")
        self.slot_size = slot_size
        self.slots_per_segment = slots_per_segment
        #: Deterministic namespace: crashed runs are identifiable by prefix.
        self.prefix = (
            prefix
            if prefix is not None
            else f"repro-{os.getpid():x}-{next(_ARENA_SEQ)}"
        )
        self._lock = threading.Lock()
        self._segments: dict[int, "_shm.SharedMemory"] = {}
        self._segment_slots: dict[int, int] = {}
        self._free: dict[int, set[int]] = {}
        self._next_segment = 0
        self._closed = False
        if registry is not None:
            self._m_alloc = registry.counter(
                "arena.allocations_total", "slot runs handed out"
            )
            self._m_release = registry.counter(
                "arena.releases_total", "slot runs returned"
            )
            self._m_bytes = registry.counter(
                "arena.bytes_placed_total", "payload bytes placed into slots"
            )
            self._m_unlinked = registry.counter(
                "arena.segments_unlinked_total", "segments unlinked on last release"
            )
            self._m_double_free = registry.counter(
                "arena.slot_double_free_total", "rejected double releases"
            )
            registry.gauge(
                "arena.segments", "live shared-memory segments",
                callback=lambda: len(self._segments),
            )
            registry.gauge(
                "arena.slots_used", "slots currently allocated",
                callback=self._used_slot_count,
            )
        else:
            self._m_alloc = self._m_release = self._m_bytes = None
            self._m_unlinked = self._m_double_free = None
        # A bound method would keep `self` alive through atexit even after
        # close(); register a handle we can unregister instead.
        self._atexit_cb = self.close
        atexit.register(self._atexit_cb)

    # ------------------------------------------------------------------ #
    # allocation                                                          #
    # ------------------------------------------------------------------ #

    def allocate(self, nbytes: int) -> ArenaSlot:
        """Hand out a contiguous slot run covering ``nbytes``."""
        if nbytes <= 0:
            raise StorageError("cannot allocate an empty arena slot")
        slots_needed = -(-nbytes // self.slot_size)
        with self._lock:
            if self._closed:
                raise StorageError("arena is closed")
            for index, free in self._free.items():
                start = self._find_run(free, slots_needed)
                if start is not None:
                    for s in range(start, start + slots_needed):
                        free.discard(s)
                    return self._slot(index, start, slots_needed, nbytes)
            index = self._create_segment(max(self.slots_per_segment, slots_needed))
            free = self._free[index]
            for s in range(slots_needed):
                free.discard(s)
            return self._slot(index, 0, slots_needed, nbytes)

    def _slot(self, index: int, start: int, count: int, nbytes: int) -> ArenaSlot:
        if self._m_alloc is not None:
            self._m_alloc.inc()
            self._m_bytes.inc(nbytes)
        return ArenaSlot(self._segments[index].name, index, start, count, nbytes)

    @staticmethod
    def _find_run(free: set[int], count: int) -> int | None:
        if len(free) < count:
            return None
        ordered = sorted(free)
        run_start, run_len = ordered[0], 1
        if run_len == count:
            return run_start
        for prev, cur in zip(ordered, ordered[1:]):
            if cur == prev + 1:
                run_len += 1
            else:
                run_start, run_len = cur, 1
            if run_len == count:
                return run_start
        return None

    def _create_segment(self, slots: int) -> int:
        index = self._next_segment
        self._next_segment += 1
        name = f"{self.prefix}-{index}"
        segment = _shm.SharedMemory(name=name, create=True, size=slots * self.slot_size)
        self._segments[index] = segment
        self._segment_slots[index] = slots
        self._free[index] = set(range(slots))
        _record_event("arena.segment_created", name=name, bytes=slots * self.slot_size)
        return index

    # ------------------------------------------------------------------ #
    # access + release                                                    #
    # ------------------------------------------------------------------ #

    def view(self, slot: ArenaSlot) -> np.ndarray:
        """Writable uint8 view of the slot's payload (owner process only)."""
        with self._lock:
            segment = self._segments.get(slot.segment_index)
            if segment is None or segment.name != slot.segment:
                raise StorageError(f"arena slot {slot.segment} is not live")
        offset = slot.byte_offset(self.slot_size)
        return np.frombuffer(
            segment.buf, dtype=np.uint8, count=slot.nbytes, offset=offset
        )

    def release(self, slot: ArenaSlot) -> None:
        """Return a slot run; unlinks the segment once fully free."""
        with self._lock:
            if self._closed:
                return
            segment = self._segments.get(slot.segment_index)
            if segment is None or segment.name != slot.segment:
                if self._m_double_free is not None:
                    self._m_double_free.inc()
                raise StorageError(
                    f"arena slot in {slot.segment} already released (segment gone)"
                )
            free = self._free[slot.segment_index]
            run = range(slot.slot_index, slot.slot_index + slot.slot_count)
            if any(s in free for s in run):
                if self._m_double_free is not None:
                    self._m_double_free.inc()
                raise StorageError(
                    f"arena slot {slot.slot_index}+{slot.slot_count} in "
                    f"{slot.segment} double-freed"
                )
            free.update(run)
            if self._m_release is not None:
                self._m_release.inc()
            if len(free) == self._segment_slots[slot.segment_index]:
                self._unlink_segment(slot.segment_index)

    def _unlink_segment(self, index: int) -> None:
        segment = self._segments.pop(index)
        del self._free[index]
        del self._segment_slots[index]
        _close_segment(segment)
        if self._m_unlinked is not None:
            self._m_unlinked.inc()
        _record_event("arena.segment_unlinked", name=segment.name)

    def close(self) -> None:
        """Unlink every live segment (idempotent; wired to atexit)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
            self._free.clear()
            self._segment_slots.clear()
        for segment in segments:
            _close_segment(segment)
        atexit.unregister(self._atexit_cb)

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> list[str]:
        """Names of live segments (test hook: check /dev/shm against it)."""
        with self._lock:
            return [s.name for s in self._segments.values()]

    def _used_slot_count(self) -> int:
        with self._lock:
            return sum(
                self._segment_slots[i] - len(free) for i, free in self._free.items()
            )


def _close_segment(segment) -> None:
    """Unlink a segment; tolerate still-live numpy views of its buffer.

    Unlinking removes the ``/dev/shm`` name (the hygiene property that
    matters); if a caller still holds a view, the mapping itself stays
    alive until that view dies, and ``close`` would raise ``BufferError``
    — swallow it, the memory is reclaimed when the last view drops.
    """
    try:
        segment.close()
    except BufferError:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already reaped
        pass


def shm_available() -> bool:
    """Whether this platform supports the shared-memory arena at all."""
    return HAVE_SHARED_MEMORY
