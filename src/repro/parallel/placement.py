"""Placing frozen blocks into the shared-memory arena at freeze time.

A block that just finished its gather is canonical Arrow: the fixed-width
column regions and validity bitmaps inside the 1 MB buffer, plus one
offsets/values buffer pair per varlen column.  :func:`place_block` copies
that payload into an arena slot while the transformer still holds exclusive
access (state FREEZING), and records a :class:`BlockDescriptor` — a plain
picklable value object from which a worker process can rebuild zero-copy
numpy views without importing any storage-engine state.

Hot blocks never enter the arena: the mutating MVCC path stays entirely in
the owning process (the Hekaton-style split of Larson et al., at process
granularity).  Dictionary-compressed blocks also stay process-private —
their two-level layout is not worth teaching the workers about.

Slot layout::

    [ block buffer bytes 0..layout.used_bytes )      # bitmaps + fixed cols
    [ per varlen column: offsets int32[n+1], values uint8[*], 8-aligned ]

A descriptor is valid only while the block is FROZEN *and* its ``frozen_at``
stamp still matches: reheating a block strands the descriptor (readers see
the mismatch under the frozen-read pin) and the next freeze replaces it,
releasing the old slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.parallel.arena import ArenaSlot, SharedMemoryArena
from repro.transform.gather import live_prefix_length

if TYPE_CHECKING:
    from repro.storage.block import RawBlock


def _pad8(nbytes: int) -> int:
    return (nbytes + 7) // 8 * 8


@dataclass(frozen=True)
class ColumnRegion:
    """Where one column's buffers live inside the slot payload."""

    name: str
    type_json: dict
    is_varlen: bool
    is_utf8: bool
    numpy_dtype: str          # fixed-width columns; "" for varlen
    validity_offset: int      # relative to the slot payload base
    validity_nbytes: int      # logical bitmap bytes ((num_slots + 7) // 8)
    data_offset: int = 0      # fixed: column region offset
    offsets_offset: int = 0   # varlen: int32[n + 1]
    values_offset: int = 0    # varlen: uint8[values_nbytes]
    values_nbytes: int = 0


@dataclass(frozen=True)
class BlockDescriptor:
    """Everything a worker needs to scan or serialize one frozen block."""

    block_id: int
    segment: str
    base_offset: int          # byte offset of the payload within the segment
    nbytes: int
    num_rows: int             # live prefix length n
    num_slots: int
    frozen_at: int
    columns: tuple[ColumnRegion, ...]
    zone_maps: dict[int, tuple[float, float]]
    slot: ArenaSlot


def place_block(arena: SharedMemoryArena, block: "RawBlock") -> BlockDescriptor | None:
    """Copy a freshly gathered block into the arena; returns the descriptor.

    Must be called with exclusive access to the block (state FREEZING,
    after the gather, with ``frozen_at`` already stamped).  Returns ``None``
    — leaving the block process-private — for dictionary-compressed blocks
    or when any varlen column lacks gathered buffers.  Replaces (and
    releases) any descriptor from a previous freeze of the same block.
    """
    old = block.shm_descriptor
    block.shm_descriptor = None
    descriptor = _build(arena, block)
    block.shm_descriptor = descriptor
    if old is not None:
        # No in-flight reader can hold the old descriptor: the reheat that
        # preceded this re-freeze waited out every frozen-read pin.
        arena.release(old.slot)
    return descriptor


def _build(arena: SharedMemoryArena, block: "RawBlock") -> BlockDescriptor | None:
    if block.dictionaries:
        return None
    layout = block.layout
    varlen_ids = layout.varlen_column_ids()
    for column_id in varlen_ids:
        if column_id not in block.gathered:
            return None
    n = live_prefix_length(block)
    bitmap_nbytes = (layout.num_slots + 7) // 8

    total = _pad8(layout.used_bytes)
    varlen_regions: dict[int, tuple[int, int, int]] = {}
    for column_id in varlen_ids:
        offsets, values = block.gathered[column_id]
        offsets_off = total
        total += _pad8(offsets.nbytes)
        values_off = total
        total += _pad8(max(values.nbytes, 1))
        varlen_regions[column_id] = (offsets_off, values_off, values.nbytes)

    slot = arena.allocate(total)
    view = arena.view(slot)
    view[: layout.used_bytes] = block.buffer.data[: layout.used_bytes]
    for column_id in varlen_ids:
        offsets, values = block.gathered[column_id]
        offsets_off, values_off, values_nbytes = varlen_regions[column_id]
        view[offsets_off : offsets_off + offsets.nbytes] = offsets.view(np.uint8)
        if values_nbytes:
            view[values_off : values_off + values_nbytes] = values.view(np.uint8)

    columns = []
    for column_id, spec in enumerate(layout.columns):
        if spec.is_varlen:
            offsets_off, values_off, values_nbytes = varlen_regions[column_id]
            columns.append(
                ColumnRegion(
                    name=spec.name,
                    type_json=spec.dtype.to_json(),
                    is_varlen=True,
                    is_utf8=getattr(spec.dtype, "is_utf8", False),
                    numpy_dtype="",
                    validity_offset=layout.validity_offsets[column_id],
                    validity_nbytes=bitmap_nbytes,
                    offsets_offset=offsets_off,
                    values_offset=values_off,
                    values_nbytes=values_nbytes,
                )
            )
        else:
            columns.append(
                ColumnRegion(
                    name=spec.name,
                    type_json=spec.dtype.to_json(),
                    is_varlen=False,
                    is_utf8=False,
                    numpy_dtype=spec.dtype.numpy_dtype.str,  # type: ignore[union-attr]
                    validity_offset=layout.validity_offsets[column_id],
                    validity_nbytes=bitmap_nbytes,
                    data_offset=layout.column_offsets[column_id],
                )
            )
    return BlockDescriptor(
        block_id=block.block_id,
        segment=slot.segment,
        base_offset=slot.byte_offset(arena.slot_size),
        nbytes=total,
        num_rows=n,
        num_slots=layout.num_slots,
        frozen_at=block.frozen_at,
        columns=tuple(columns),
        zone_maps=dict(block.zone_maps),
        slot=slot,
    )


def release_block_slot(arena: SharedMemoryArena | None, block: "RawBlock") -> None:
    """Drop a block's arena slot (block release / table drop)."""
    descriptor = getattr(block, "shm_descriptor", None)
    block.shm_descriptor = None
    if descriptor is not None and arena is not None and not arena.closed:
        arena.release(descriptor.slot)


def descriptor_if_valid(block: "RawBlock") -> BlockDescriptor | None:
    """The block's descriptor, iff it matches the current freeze.

    Call while holding a frozen-read pin: FROZEN plus an unchanged
    ``frozen_at`` proves the slot payload equals the live block content.
    """
    descriptor = getattr(block, "shm_descriptor", None)
    if descriptor is None or descriptor.frozen_at != block.frozen_at:
        return None
    return descriptor
