"""A persistent pool of scan/export worker processes.

The coordinator (the process that owns the :class:`~repro.db.Database`)
dispatches fragments — lists of block descriptors plus what to do with them
— over a task queue; workers push tagged results back.  The pool is built
for graceful degradation, never correctness-by-parallelism:

- every fragment the pool cannot complete (pool not started, worker died
  mid-task, timeout) comes back as ``None``, and the caller redoes exactly
  that fragment in-process;
- results are matched by task id, so a worker that answers late (or a
  fragment from an abandoned query) is dropped as stale rather than
  misattributed;
- dead workers are respawned after every dispatch round, so one crash
  degrades a single query instead of the pool;
- workers share **no** locks with each other: each worker has its own task
  queue (fragments are dealt round-robin) *and* its own result queue.  A
  shared queue is poisoned by a SIGKILL'd worker — a blocked reader holds
  the queue's reader lock, and a writer can die between sending its bytes
  and releasing the write lock (on a single-core machine the coordinator
  routinely consumes a result before the worker's feeder thread is
  rescheduled to release the lock, so "idle" workers still hold it).
  With dedicated queues a kill only strands that worker's own plumbing,
  which the respawn replaces wholesale.

Start method defaults to ``fork`` where available (cheap, inherits the
import state) and can be forced with ``REPRO_PARALLEL_START_METHOD`` or the
constructor — the CI matrix runs the suite under both ``fork`` and
``spawn``.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import Any

from repro.obs.recorder import broadcast as _record_event
from repro.parallel.worker import worker_main

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


def default_start_method() -> str:
    method = os.environ.get(START_METHOD_ENV)
    if method:
        return method
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class WorkerPool:
    """Persistent worker processes executing scan/serialize fragments."""

    def __init__(
        self,
        num_workers: int,
        start_method: str | None = None,
        registry=None,
        task_timeout: float = 60.0,
    ) -> None:
        self.num_workers = max(1, int(num_workers))
        self.start_method = start_method or default_start_method()
        self.task_timeout = task_timeout
        self._ctx = mp.get_context(self.start_method)
        self._task_queues: list[Any] = []
        self._result_queues: list[Any] = []
        self._workers: list[Any] = []
        self._next_worker = 0
        self._task_seq = itertools.count()
        self._started = False
        self._broken = False
        if registry is not None:
            self._m_dispatched = registry.counter(
                "parallel.tasks_dispatched_total", "fragments sent to workers"
            )
            self._m_completed = registry.counter(
                "parallel.tasks_completed_total", "fragments answered by workers"
            )
            self._m_failures = registry.counter(
                "parallel.task_failures_total", "fragments that errored in a worker"
            )
            self._m_fallbacks = registry.counter(
                "parallel.fallbacks_total",
                "fragments redone in-process (pool down, crash, timeout)",
            )
            self._m_restarts = registry.counter(
                "parallel.worker_restarts_total", "dead workers respawned"
            )
            registry.gauge(
                "parallel.workers_configured", "pool size",
                callback=lambda: self.num_workers,
            )
            registry.gauge(
                "parallel.workers_alive", "workers currently alive",
                callback=lambda: sum(1 for w in self._workers if w.is_alive()),
            )
            self._m_worker_tasks = [
                registry.counter(
                    f"parallel.worker_{i}.tasks_total",
                    f"fragments completed by worker {i}",
                )
                for i in range(self.num_workers)
            ]
        else:
            self._m_dispatched = self._m_completed = self._m_failures = None
            self._m_fallbacks = self._m_restarts = None
            self._m_worker_tasks = None

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._started:
            return
        self._task_queues = [self._ctx.Queue() for _ in range(self.num_workers)]
        self._result_queues = [self._ctx.Queue() for _ in range(self.num_workers)]
        self._workers = [self._spawn(i) for i in range(self.num_workers)]
        self._started = True

    def _spawn(self, index: int):
        process = self._ctx.Process(
            target=worker_main,
            args=(index, self._task_queues[index], self._result_queues[index]),
            name=f"repro-parallel-{index}",
            daemon=True,
        )
        process.start()
        return process

    def ensure_started(self) -> bool:
        """Start lazily; a failed start marks the pool broken (no retries)."""
        if self._broken:
            return False
        if not self._started:
            try:
                self.start()
            except Exception:
                self._broken = True
                _record_event("parallel.pool_broken", method=self.start_method)
                return False
        return True

    @property
    def available(self) -> bool:
        return not self._broken

    @property
    def started(self) -> bool:
        return self._started

    def stop(self) -> None:
        """Stop all workers (idempotent); the pool can be restarted."""
        if not self._started:
            return
        self._started = False
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        self._workers = []
        for q in [*self._task_queues, *self._result_queues]:
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover
                pass
        self._task_queues = []
        self._result_queues = []

    def warm(self, timeout: float = 30.0) -> bool:
        """Round-trip a ping through every worker (benchmarks use this to
        keep process startup out of the measured interval)."""
        if not self.ensure_started():
            return False
        results = self.run_fragments(
            "ping", [() for _ in range(self.num_workers)], timeout=timeout
        )
        return all(r == "pong" for r in results)

    # ------------------------------------------------------------------ #
    # dispatch                                                            #
    # ------------------------------------------------------------------ #

    def run_fragments(
        self, kind: str, payloads: list[tuple], timeout: float | None = None
    ) -> list[Any]:
        """Execute ``payloads`` across the pool; order-preserving.

        Returns one entry per payload: the worker's result, or ``None``
        for any fragment the pool could not complete — the caller must
        fall back in-process for exactly those.
        """
        if not payloads:
            return []
        if not self.ensure_started():
            self._count_fallbacks(len(payloads), reason="pool_unavailable")
            return [None] * len(payloads)
        self._reap_and_respawn()  # don't deal fragments to known-dead workers
        ids: dict[int, int] = {}
        for position, payload in enumerate(payloads):
            task_id = next(self._task_seq)
            ids[task_id] = position
            index = self._next_worker % self.num_workers
            self._next_worker += 1
            self._task_queues[index].put((task_id, kind, payload))
        if self._m_dispatched is not None:
            self._m_dispatched.inc(len(payloads))
        _record_event("parallel.dispatch", fragment_kind=kind, fragments=len(payloads))

        results: list[Any] = [None] * len(payloads)
        pending = set(ids)
        deadline = time.monotonic() + (timeout or self.task_timeout)
        while pending:
            progressed = False
            for result_queue in self._result_queues:
                try:
                    task_id, worker_index, ok, payload = result_queue.get_nowait()
                except queue_mod.Empty:
                    continue
                except Exception:  # pragma: no cover - truncated pickle
                    # A worker killed mid-send leaves a partial frame in its
                    # (private) result pipe; the reap below replaces it.
                    continue
                progressed = True
                position = ids.get(task_id)
                if position is None or task_id not in pending:
                    continue  # stale: a fragment from an abandoned query
                pending.discard(task_id)
                if ok:
                    results[position] = payload
                    if self._m_completed is not None:
                        self._m_completed.inc()
                        if 0 <= worker_index < len(self._m_worker_tasks):
                            self._m_worker_tasks[worker_index].inc()
                    _record_event(
                        "parallel.complete", fragment_kind=kind, worker=worker_index
                    )
                else:
                    if self._m_failures is not None:
                        self._m_failures.inc()
                    _record_event(
                        "parallel.task_failed", fragment_kind=kind,
                        worker=worker_index, error=str(payload),
                    )
            if progressed:
                continue
            if any(not w.is_alive() for w in self._workers):
                # A dead worker may have taken pending tasks with it; don't
                # wait out the full timeout for answers that can never come.
                # Live workers' late results for this query are dropped as
                # stale on the next dispatch.
                break
            if time.monotonic() > deadline:
                break
            time.sleep(0.01)
        if pending:
            self._count_fallbacks(len(pending), reason="incomplete")
        failed = sum(1 for r in results if r is None) - len(pending)
        if failed > 0:
            self._count_fallbacks(failed, reason="task_failed", record=False)
        self._reap_and_respawn()
        return results

    def _count_fallbacks(self, count: int, reason: str, record: bool = True) -> None:
        if self._m_fallbacks is not None:
            self._m_fallbacks.inc(count)
        if record:
            _record_event("parallel.fallback", fragments=count, reason=reason)

    def _reap_and_respawn(self) -> None:
        if not self._started:
            return
        for index, worker in enumerate(self._workers):
            if worker.is_alive():
                continue
            if self._m_restarts is not None:
                self._m_restarts.inc()
            _record_event(
                "parallel.worker_respawn", worker=index, exitcode=worker.exitcode
            )
            # The dead worker's queues may hold undelivered fragments (stale
            # by now), partial frames, or locks the kill stranded; replace
            # both ends of its plumbing.
            self._task_queues[index] = self._ctx.Queue()
            self._result_queues[index] = self._ctx.Queue()
            self._workers[index] = self._spawn(index)

    # ------------------------------------------------------------------ #
    # introspection / test hooks                                          #
    # ------------------------------------------------------------------ #

    def worker_pids(self) -> list[int]:
        return [w.pid for w in self._workers if w.pid is not None]

    def alive_count(self) -> int:
        return sum(1 for w in self._workers if w.is_alive())

    def __repr__(self) -> str:
        state = "broken" if self._broken else (
            "started" if self._started else "idle"
        )
        return (
            f"WorkerPool(workers={self.num_workers}, "
            f"method={self.start_method!r}, {state})"
        )
