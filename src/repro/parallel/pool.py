"""A persistent pool of scan/export worker processes.

The coordinator (the process that owns the :class:`~repro.db.Database`)
dispatches fragments — lists of block descriptors plus what to do with them
— over a task queue; workers push tagged results back.  The pool is built
for graceful degradation, never correctness-by-parallelism:

- every fragment the pool cannot complete (pool not started, worker died
  mid-task, timeout) comes back as ``None``, and the caller redoes exactly
  that fragment in-process;
- results are matched by task id, so a worker that answers late (or a
  fragment from an abandoned query) is dropped as stale rather than
  misattributed;
- dead workers are respawned after every dispatch round, so one crash
  degrades a single query instead of the pool;
- workers share **no** locks with each other: each worker has its own task
  queue (fragments are dealt round-robin) *and* its own result queue.  A
  shared queue is poisoned by a SIGKILL'd worker — a blocked reader holds
  the queue's reader lock, and a writer can die between sending its bytes
  and releasing the write lock (on a single-core machine the coordinator
  routinely consumes a result before the worker's feeder thread is
  rescheduled to release the lock, so "idle" workers still hold it).
  With dedicated queues a kill only strands that worker's own plumbing,
  which the respawn replaces wholesale.

The pool is also a telemetry conduit (see :mod:`repro.obs.relay`): when
built with a registry, every worker runs a :class:`WorkerTelemetry` whose
flush payloads ride the result queues home — metric deltas become
``process``/``worker_id``-labeled series, events and spans land in the
coordinator's flight recorder and tracer clock-aligned, and a
shared-memory staged-event page keeps ``obs.events_dropped_total`` exact
even when a worker is SIGKILLed with unshipped events.  Dispatch captures
the caller's trace context, so worker spans join the dispatching scan's
causal tree.

Start method defaults to ``fork`` where available (cheap, inherits the
import state) and can be forced with ``REPRO_PARALLEL_START_METHOD`` or the
constructor — the CI matrix runs the suite under both ``fork`` and
``spawn``.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import Any

from repro.obs import trace as _trace
from repro.obs.recorder import broadcast as _record_event
from repro.obs.relay import TelemetryRelay
from repro.parallel.worker import worker_main

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"

#: Environment opt-in for the in-worker sampling profiler.
WORKER_PROFILE_ENV = "REPRO_WORKER_PROFILE"


def default_start_method() -> str:
    method = os.environ.get(START_METHOD_ENV)
    if method:
        return method
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _hottest_stack(profile: dict[str, int] | None) -> str | None:
    """The most-sampled collapsed stack in a worker's profile delta."""
    if not profile:
        return None
    return max(profile.items(), key=lambda kv: (kv[1], kv[0]))[0]


class WorkerPool:
    """Persistent worker processes executing scan/serialize fragments."""

    def __init__(
        self,
        num_workers: int,
        start_method: str | None = None,
        registry=None,
        task_timeout: float = 60.0,
        recorder=None,
        tracer=None,
        profile_workers: bool | None = None,
        profile_interval: float = 0.01,
        slow_fragment_threshold: float | None = None,
    ) -> None:
        self.num_workers = max(1, int(num_workers))
        self.start_method = start_method or default_start_method()
        self.task_timeout = task_timeout
        self._ctx = mp.get_context(self.start_method)
        self._task_queues: list[Any] = []
        self._result_queues: list[Any] = []
        self._workers: list[Any] = []
        self._next_worker = 0
        self._task_seq = itertools.count()
        self._started = False
        self._broken = False
        self._registry = registry
        self._recorder = recorder
        self._tracer = tracer
        if profile_workers is None:
            profile_workers = bool(os.environ.get(WORKER_PROFILE_ENV))
        self.profile_workers = profile_workers
        self.profile_interval = profile_interval
        #: Fragments slower than this (seconds) emit a
        #: ``parallel.slow_fragment`` event with top-of-stack attribution.
        self.slow_fragment_threshold = slow_fragment_threshold
        self._relay: TelemetryRelay | None = None
        #: task_id -> (dispatch monotonic ts, fragment kind); liveness reads
        #: this to expose the oldest outstanding task's age.
        self._outstanding: dict[int, tuple[float, str]] = {}
        self._restart_count = 0
        if registry is not None:
            self._m_dispatched = registry.counter(
                "parallel.tasks_dispatched_total", "fragments sent to workers"
            )
            self._m_completed = registry.counter(
                "parallel.tasks_completed_total", "fragments answered by workers"
            )
            self._m_failures = registry.counter(
                "parallel.task_failures_total", "fragments that errored in a worker"
            )
            self._m_fallbacks = registry.counter(
                "parallel.fallbacks_total",
                "fragments redone in-process (pool down, crash, timeout)",
            )
            self._m_restarts = registry.counter(
                "parallel.worker_restarts_total", "dead workers respawned"
            )
            registry.gauge(
                "parallel.workers_configured", "pool size",
                callback=lambda: self.num_workers,
            )
            registry.gauge(
                "parallel.workers_alive", "workers currently alive",
                callback=lambda: sum(1 for w in self._workers if w.is_alive()),
            )
            registry.gauge(
                "parallel.outstanding_tasks",
                "fragments dispatched and not yet answered",
                callback=lambda: float(len(self._outstanding)),
            )
            registry.gauge(
                "parallel.oldest_outstanding_age_seconds",
                "age of the oldest unanswered fragment (0 when idle)",
                callback=lambda: self.oldest_outstanding_age() or 0.0,
            )
            self._m_worker_tasks = [
                registry.counter(
                    "parallel.worker_tasks_total",
                    "fragments completed per worker",
                    labels={"process": "worker", "worker_id": str(i)},
                )
                for i in range(self.num_workers)
            ]
        else:
            self._m_dispatched = self._m_completed = self._m_failures = None
            self._m_fallbacks = self._m_restarts = None
            self._m_worker_tasks = None

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._started:
            return
        if self._registry is not None and self._relay is None:
            self._relay = TelemetryRelay(
                self.num_workers,
                self._registry,
                recorder=self._recorder,
                tracer=self._tracer,
            )
        self._task_queues = [self._ctx.Queue() for _ in range(self.num_workers)]
        self._result_queues = [self._ctx.Queue() for _ in range(self.num_workers)]
        self._workers = [self._spawn(i) for i in range(self.num_workers)]
        self._started = True

    def _telemetry_args(self) -> dict[str, Any] | None:
        if self._relay is None:
            return None
        args = self._relay.worker_args()
        if self.profile_workers:
            args["profile"] = True
            args["profile_interval"] = self.profile_interval
        return args

    def _spawn(self, index: int):
        process = self._ctx.Process(
            target=worker_main,
            args=(
                index,
                self._task_queues[index],
                self._result_queues[index],
                self._telemetry_args(),
            ),
            name=f"repro-parallel-{index}",
            daemon=True,
        )
        process.start()
        return process

    def ensure_started(self) -> bool:
        """Start lazily; a failed start marks the pool broken (no retries)."""
        if self._broken:
            return False
        if not self._started:
            try:
                self.start()
            except Exception:
                self._broken = True
                _record_event("parallel.pool_broken", method=self.start_method)
                return False
        return True

    @property
    def available(self) -> bool:
        return not self._broken

    @property
    def started(self) -> bool:
        return self._started

    def stop(self) -> None:
        """Stop all workers (idempotent); the pool can be restarted."""
        if not self._started:
            return
        self._started = False
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        self._drain_final_telemetry()
        self._workers = []
        for q in [*self._task_queues, *self._result_queues]:
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover
                pass
        self._task_queues = []
        self._result_queues = []
        self._outstanding.clear()
        if self._relay is not None:
            self._relay.close()
            self._relay = None

    def _drain_final_telemetry(self) -> None:
        """After workers exited: merge their shutdown flushes, then settle
        each worker's staged-event account (exactly zero drops for clean
        exits; the unshipped remainder for terminated ones)."""
        if self._relay is None:
            return
        for result_queue in self._result_queues:
            while True:
                try:
                    entry = result_queue.get_nowait()
                except Exception:
                    break
                if len(entry) >= 5 and entry[4] is not None:
                    self._relay.merge(entry[4])
        for index in range(self.num_workers):
            self._relay.note_worker_death(index)

    def warm(self, timeout: float = 30.0) -> bool:
        """Round-trip a ping through every worker (benchmarks use this to
        keep process startup out of the measured interval)."""
        if not self.ensure_started():
            return False
        results = self.run_fragments(
            "ping", [() for _ in range(self.num_workers)], timeout=timeout
        )
        return all(r == "pong" for r in results)

    # ------------------------------------------------------------------ #
    # dispatch                                                            #
    # ------------------------------------------------------------------ #

    def run_fragments(
        self, kind: str, payloads: list[tuple], timeout: float | None = None
    ) -> list[Any]:
        """Execute ``payloads`` across the pool; order-preserving.

        Returns one entry per payload: the worker's result, or ``None``
        for any fragment the pool could not complete — the caller must
        fall back in-process for exactly those.
        """
        if not payloads:
            return []
        if not self.ensure_started():
            self._count_fallbacks(len(payloads), reason="pool_unavailable")
            return [None] * len(payloads)
        self._reap_and_respawn()  # don't deal fragments to known-dead workers
        ctx = _trace.current_context(self._tracer)
        wire_ctx = tuple(ctx) if ctx is not None else None
        ids: dict[int, int] = {}
        now = time.monotonic()
        for position, payload in enumerate(payloads):
            task_id = next(self._task_seq)
            ids[task_id] = position
            self._outstanding[task_id] = (now, kind)
            index = self._next_worker % self.num_workers
            self._next_worker += 1
            self._task_queues[index].put((task_id, kind, payload, wire_ctx))
        if self._m_dispatched is not None:
            self._m_dispatched.inc(len(payloads))
        _record_event(
            "parallel.dispatch", fragment_kind=kind, fragments=len(payloads),
            trace_id=ctx.trace_id if ctx is not None else None,
        )

        results: list[Any] = [None] * len(payloads)
        pending = set(ids)
        deadline = time.monotonic() + (timeout or self.task_timeout)
        while pending:
            progressed = False
            for result_queue in self._result_queues:
                try:
                    entry = result_queue.get_nowait()
                except queue_mod.Empty:
                    continue
                except Exception:  # pragma: no cover - truncated pickle
                    # A worker killed mid-send leaves a partial frame in its
                    # (private) result pipe; the reap below replaces it.
                    continue
                progressed = True
                task_id, worker_index, ok, payload = entry[:4]
                flushed = entry[4] if len(entry) >= 5 else None
                if flushed is not None and self._relay is not None:
                    self._relay.merge(flushed)
                if task_id is None:
                    continue  # telemetry-only message (worker shutdown)
                position = ids.get(task_id)
                if position is None or task_id not in pending:
                    self._outstanding.pop(task_id, None)
                    continue  # stale: a fragment from an abandoned query
                pending.discard(task_id)
                dispatched_at, _ = self._outstanding.pop(
                    task_id, (None, None)
                )
                if ok:
                    results[position] = payload
                    if self._m_completed is not None:
                        self._m_completed.inc()
                        if 0 <= worker_index < len(self._m_worker_tasks):
                            self._m_worker_tasks[worker_index].inc()
                    _record_event(
                        "parallel.complete", fragment_kind=kind, worker=worker_index
                    )
                    self._note_slow_fragment(
                        kind, worker_index, dispatched_at, flushed
                    )
                else:
                    if self._m_failures is not None:
                        self._m_failures.inc()
                    _record_event(
                        "parallel.task_failed", fragment_kind=kind,
                        worker=worker_index, error=str(payload),
                    )
            if progressed:
                continue
            if any(not w.is_alive() for w in self._workers):
                # A dead worker may have taken pending tasks with it; don't
                # wait out the full timeout for answers that can never come.
                # Live workers' late results for this query are dropped as
                # stale on the next dispatch.
                break
            if time.monotonic() > deadline:
                break
            time.sleep(0.01)
        for task_id in pending:
            self._outstanding.pop(task_id, None)
        if pending:
            self._count_fallbacks(len(pending), reason="incomplete")
        failed = sum(1 for r in results if r is None) - len(pending)
        if failed > 0:
            self._count_fallbacks(failed, reason="task_failed", record=False)
        self._reap_and_respawn()
        return results

    def _note_slow_fragment(
        self,
        kind: str,
        worker_index: int,
        dispatched_at: float | None,
        flushed: dict | None,
    ) -> None:
        threshold = self.slow_fragment_threshold
        if threshold is None or dispatched_at is None:
            return
        elapsed = time.monotonic() - dispatched_at
        if elapsed < threshold:
            return
        top = _hottest_stack(flushed.get("profile") if flushed else None)
        _record_event(
            "parallel.slow_fragment",
            fragment_kind=kind,
            worker=worker_index,
            seconds=elapsed,
            top_stack=top,
        )

    def _count_fallbacks(self, count: int, reason: str, record: bool = True) -> None:
        if self._m_fallbacks is not None:
            self._m_fallbacks.inc(count)
        if record:
            _record_event("parallel.fallback", fragments=count, reason=reason)

    def _reap_and_respawn(self) -> None:
        if not self._started:
            return
        for index, worker in enumerate(self._workers):
            if worker.is_alive():
                continue
            self._restart_count += 1
            if self._m_restarts is not None:
                self._m_restarts.inc()
            if self._relay is not None:
                # Settle the corpse's staged-event account: everything it
                # recorded but never shipped becomes an exact drop count.
                self._relay.note_worker_death(index)
            _record_event(
                "parallel.worker_respawn", worker=index, exitcode=worker.exitcode
            )
            # The dead worker's queues may hold undelivered fragments (stale
            # by now), partial frames, or locks the kill stranded; replace
            # both ends of its plumbing.
            self._task_queues[index] = self._ctx.Queue()
            self._result_queues[index] = self._ctx.Queue()
            self._workers[index] = self._spawn(index)

    # ------------------------------------------------------------------ #
    # introspection / test hooks                                          #
    # ------------------------------------------------------------------ #

    def worker_pids(self) -> list[int]:
        return [w.pid for w in self._workers if w.pid is not None]

    def alive_count(self) -> int:
        return sum(1 for w in self._workers if w.is_alive())

    def oldest_outstanding_age(self) -> float | None:
        """Age (seconds) of the longest-unanswered dispatched fragment,
        ``None`` when nothing is in flight.  A wedged pool shows up here
        long before a scan's timeout expires."""
        # Snapshot: dict values() can mutate under us from the dispatch
        # thread; list() is atomic enough under the GIL.
        stamps = [ts for ts, _ in list(self._outstanding.values())]
        if not stamps:
            return None
        return max(0.0, time.monotonic() - min(stamps))

    def liveness(self) -> dict[str, Any]:
        """Pool health for ``db.health()`` / ``/healthz``."""
        return {
            "configured": self.num_workers,
            "alive": self.alive_count(),
            "started": self._started,
            "broken": self._broken,
            "restarts": self._restart_count,
            "outstanding_tasks": len(self._outstanding),
            "oldest_outstanding_age_seconds": self.oldest_outstanding_age(),
        }

    @property
    def relay(self) -> TelemetryRelay | None:
        """The coordinator-side telemetry relay (``None`` without a registry)."""
        return self._relay

    def __repr__(self) -> str:
        state = "broken" if self._broken else (
            "started" if self._started else "idle"
        )
        return (
            f"WorkerPool(workers={self.num_workers}, "
            f"method={self.start_method!r}, {state})"
        )
