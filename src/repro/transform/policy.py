"""Compaction-group formation policies.

Figure 14 shows the trade a fixed group size makes: big groups reclaim
memory at low emptiness but blow up the compacting transaction's write-set
(and with it the abort exposure).  The paper defers "an intelligent policy
that dynamically forms groups of different sizes based on the blocks it is
compacting" to future work — implemented here:

- :class:`FixedGroupPolicy` — the paper's evaluated baseline.
- :class:`WriteBudgetPolicy` — dynamic sizing: greedily grow a group until
  its *estimated movement count* reaches a budget, so every compaction
  transaction has a bounded write-set regardless of block emptiness.
  Blocks are considered emptiest-first, which maximizes reclaimable blocks
  per movement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:
    from repro.storage.block import RawBlock


class GroupPolicy(Protocol):
    """Splits a table's queued blocks into compaction groups."""

    def form_groups(self, blocks: list["RawBlock"]) -> list[list["RawBlock"]]:
        """Partition ``blocks`` (same layout) into groups."""
        ...


class FixedGroupPolicy:
    """Chunks of a constant size — the paper's evaluated configuration."""

    def __init__(self, group_size: int = 50) -> None:
        if group_size < 1:
            raise ValueError("group size must be positive")
        self.group_size = group_size

    def form_groups(self, blocks: list["RawBlock"]) -> list[list["RawBlock"]]:
        return [
            blocks[start : start + self.group_size]
            for start in range(0, len(blocks), self.group_size)
        ]


class WriteBudgetPolicy:
    """Bounds each group's estimated movements by ``movement_budget``.

    The estimate is the planner's own arithmetic: in a group with ``t``
    live tuples and ``s`` slots per block, movements equal the gaps in the
    kept blocks, which is at most ``t mod s`` plus the gaps of the filled
    set — bounded above by the *empty slots of the emptiest blocks we will
    drain*.  Greedily accumulating emptiest-last keeps the bound tight.
    """

    def __init__(self, movement_budget: int = 4096, min_group: int = 2) -> None:
        if movement_budget < 1:
            raise ValueError("movement budget must be positive")
        self.movement_budget = movement_budget
        self.min_group = max(1, min_group)

    def form_groups(self, blocks: list["RawBlock"]) -> list[list["RawBlock"]]:
        if not blocks:
            return []
        # Emptiest blocks are the best movement *sources*: they drain into
        # the full ones.  Sort fullest-first so each group starts with the
        # cheap destinations and accumulates sources until the budget.
        ordered = sorted(blocks, key=lambda b: b.empty_slot_count())
        groups: list[list["RawBlock"]] = []
        current: list["RawBlock"] = []
        estimated = 0
        for block in ordered:
            moves = self._estimated_moves(block)
            over_budget = current and estimated + moves > self.movement_budget
            if over_budget and len(current) >= self.min_group:
                groups.append(current)
                current, estimated = [], 0
            current.append(block)
            estimated += moves
        if current:
            groups.append(current)
        return groups

    @staticmethod
    def _estimated_moves(block: "RawBlock") -> int:
        """Upper bound on movements this block adds to a group.

        A block contributes movements either as a source (its live tuples
        move out) or as a destination (its gaps are filled) — whichever its
        role, the count is bounded by min(live, empty).
        """
        live = int(block.allocation_bitmap.count_set())
        return min(live, block.layout.num_slots - live)
