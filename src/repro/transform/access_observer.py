"""Cold-block detection from GC epochs (Section 4.2).

Collecting access statistics on the transaction critical path is too
expensive for OLTP, so the observer rides along with the garbage collector:
every GC pass reports which blocks had undo records processed, and the GC
invocation count ("GC epoch") stands in for wall-clock time.  A block that
stays HOT and unmodified for ``threshold_epochs`` passes is queued for
transformation.  Mistakes are tolerable — a block misidentified as cold is
either preempted out of COOLING by the updating transaction or bounced off
the version-pointer scan before freezing.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING

from repro.storage.constants import BlockState

if TYPE_CHECKING:
    from repro.storage.block import RawBlock
    from repro.storage.data_table import DataTable


class TransformQueue:
    """FIFO of blocks awaiting transformation; de-duplicates entries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queue: deque["tuple[DataTable, RawBlock]"] = deque()
        self._enqueued: set[int] = set()

    def push(self, table: "DataTable", block: "RawBlock") -> bool:
        """Enqueue unless the block is already pending."""
        with self._lock:
            if block.block_id in self._enqueued:
                return False
            self._enqueued.add(block.block_id)
            self._queue.append((table, block))
            return True

    def pop(self) -> "tuple[DataTable, RawBlock] | None":
        """Dequeue the oldest entry, or ``None`` when empty."""
        with self._lock:
            if not self._queue:
                return None
            table, block = self._queue.popleft()
            self._enqueued.discard(block.block_id)
            return table, block

    def drain(self) -> "list[tuple[DataTable, RawBlock]]":
        """Pop everything currently queued."""
        with self._lock:
            items = list(self._queue)
            self._queue.clear()
            self._enqueued.clear()
            return items

    def __len__(self) -> int:
        """Current depth, read under the lock (surfaced as the
        ``transform.queue_depth`` gauge / ``transform_queue_depth`` metric)."""
        with self._lock:
            return len(self._queue)


class AccessObserver:
    """Tracks block modification epochs and queues cooled-down blocks.

    ``threshold_epochs`` maps the paper's 10 ms threshold onto GC epochs:
    with a ~10 ms GC period, one epoch ≈ the paper's aggressive setting.
    """

    def __init__(self, threshold_epochs: int = 1, registry=None, recorder=None) -> None:
        if threshold_epochs < 1:
            raise ValueError("threshold must be at least one epoch")
        self.threshold_epochs = threshold_epochs
        self.queue = TransformQueue()
        self._lock = threading.Lock()
        #: Tables whose blocks this observer watches (None = watch nothing
        #: until tables register; modification events still update epochs).
        self._tables: "list[DataTable]" = []
        self._block_tables: "dict[int, DataTable]" = {}
        self.blocks_queued = 0
        from repro.obs.recorder import get_recorder
        from repro.obs.registry import MetricRegistry

        self.recorder = recorder if recorder is not None else get_recorder()
        self.registry = registry if registry is not None else MetricRegistry()
        self._m_blocks_queued = self.registry.counter(
            "transform.blocks_queued_total", "blocks detected cold and enqueued"
        )

    def watch_table(self, table: "DataTable") -> None:
        """Start considering ``table``'s blocks for transformation.

        The paper targets only tables that generate cold data (Section 6.1
        watches ORDER, ORDER_LINE, HISTORY, and ITEM).
        """
        with self._lock:
            self._tables.append(table)

    # ------------------------------------------------------------------ #
    # GarbageCollector's AccessObserver protocol                          #
    # ------------------------------------------------------------------ #

    def observe_modification(self, block: "RawBlock", epoch: int) -> None:
        """Record a modification (the GC already stamped the block)."""
        block.last_modified_epoch = epoch

    def on_gc_pass(self, epoch: int) -> None:
        """Scan watched tables and enqueue blocks that cooled down."""
        with self._lock:
            tables = list(self._tables)
        for table in tables:
            for block in list(table.blocks):
                if self._is_cold(table, block, epoch):
                    if self.queue.push(table, block):
                        self.blocks_queued += 1
                        self._m_blocks_queued.inc()
                        self.recorder.record(
                            "block.queued_cold",
                            block_id=block.block_id,
                            table=table.name,
                            last_modified_epoch=block.last_modified_epoch,
                            gc_epoch=epoch,
                            idle_epochs=epoch - block.last_modified_epoch,
                        )

    def _is_cold(self, table: "DataTable", block: "RawBlock", epoch: int) -> bool:
        if block.state is not BlockState.HOT:
            return False
        if block is table._insertion_block and not self._full(block):
            # Blocks still accepting inserts are hot by definition.
            return False
        return epoch - block.last_modified_epoch >= self.threshold_epochs

    @staticmethod
    def _full(block: "RawBlock") -> bool:
        return block.insert_head >= block.layout.num_slots
