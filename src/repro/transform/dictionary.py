"""The alternative cold format: dictionary compression (Section 4.4).

Instead of one contiguous values buffer, the gather critical section scans
the block twice: the first pass builds a *sorted* set of distinct values
(the dictionary), the second replaces each entry's pointer with a reference
to its dictionary word and emits the array of dictionary codes — the
encoding found in Parquet and ORC.  The extra sort and lookup make this an
order of magnitude more expensive than the plain gather, which Figure 12
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import BlockStateError
from repro.storage.constants import VARLEN_INLINE_LIMIT, BlockState
from repro.storage.varlen import read_entry, read_value, write_gathered_entry
from repro.transform.gather import (
    compute_fixed_metadata,
    live_prefix_length,
    _make_reclaim,
)

if TYPE_CHECKING:
    from repro.storage.block import RawBlock


@dataclass
class DictionaryStats:
    """What one dictionary-compression pass did."""

    live_tuples: int = 0
    dictionary_sizes: dict[int, int] = field(default_factory=dict)
    codes_bytes: int = 0
    values_bytes: int = 0
    null_counts: dict[int, int] = field(default_factory=dict)


def dictionary_compress_block(
    block: "RawBlock",
    defer: Callable[[Callable[[], None]], None] | None = None,
) -> DictionaryStats:
    """Compress every varlen column of ``block`` into codes + dictionary."""
    if block.state is not BlockState.FREEZING:
        raise BlockStateError(
            f"dictionary compression requires FREEZING, block is {block.state.name}"
        )
    n = live_prefix_length(block)
    stats = DictionaryStats(live_tuples=n)
    to_free: list[tuple[int, int]] = []

    for column_id in block.layout.varlen_column_ids():
        heap = block.varlen_heaps[column_id]
        old_gathered = block.gathered.get(column_id)
        old_values = old_gathered[1] if old_gathered is not None else None
        validity = block.validity_bitmaps[column_id]

        # Pass 1: collect distinct values into a sorted dictionary.
        row_values: list[bytes | None] = []
        distinct: set[bytes] = set()
        nulls = 0
        for slot in range(n):
            if not validity.get(slot):
                row_values.append(None)
                nulls += 1
                continue
            value = read_value(
                block.varlen_entry_view(column_id, slot), heap, old_values
            )
            row_values.append(value)
            distinct.add(value)
        words = sorted(distinct)
        code_of = {w: i for i, w in enumerate(words)}
        word_offsets = np.zeros(len(words) + 1, dtype=np.int32)
        np.cumsum([len(w) for w in words], out=word_offsets[1:])
        dict_values = np.frombuffer(b"".join(words), dtype=np.uint8).copy()

        # Pass 2: emit codes and repoint long-value entries at their word.
        codes = np.zeros(n, dtype=np.int32)
        with block.write_latch:
            for slot, value in enumerate(row_values):
                if value is None:
                    continue
                code = code_of[value]
                codes[slot] = code
                if len(value) > VARLEN_INLINE_LIMIT:
                    entry = read_entry(block.varlen_entry_view(column_id, slot))
                    if entry.owns_buffer:
                        to_free.append((column_id, entry.pointer))
                    write_gathered_entry(
                        block.varlen_entry_view(column_id, slot),
                        len(value),
                        value[:4],
                        int(word_offsets[code]),
                    )
            block.replace_gathered(column_id, word_offsets, dict_values)
            block.dictionaries[column_id] = (codes, words)
        stats.dictionary_sizes[column_id] = len(words)
        stats.codes_bytes += codes.nbytes
        stats.values_bytes += int(word_offsets[-1])
        stats.null_counts[column_id] = nulls

    compute_fixed_metadata(block, n, stats.null_counts)
    if to_free:
        reclaim = _make_reclaim(block, to_free)
        if defer is not None:
            defer(reclaim)
        else:
            reclaim()
    return stats
