"""Phase 1 of the transformation: transactional compaction (Section 4.3).

Within a *compaction group* — blocks of the same layout transformed
together — the planner chooses:

- ``F``: the ⌊t/s⌋ blocks that will end completely full,
- ``p``: one block left partially filled with ``t mod s`` tuples, and
- ``E``: the rest, which end empty and are recycled,

then schedules a one-to-one movement of tuples from ``E`` (and ``p``'s
out-of-prefix slots) into the gaps of ``F`` (and ``p``'s prefix).  Choosing
``F`` as the fullest blocks makes the approximate plan within ``t mod s``
movements of optimal; the optimal variant additionally searches every
candidate for ``p``.  Each movement is a transactional delete + insert, so
user transactions conflict cleanly with compaction rather than observing
torn tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.storage.tuple_slot import TupleSlot

if TYPE_CHECKING:
    from repro.storage.block import RawBlock
    from repro.storage.data_table import DataTable
    from repro.txn.context import TransactionContext
    from repro.txn.manager import TransactionManager


@dataclass
class CompactionPlan:
    """A fully determined movement schedule for one compaction group."""

    blocks: list["RawBlock"]
    #: (source, destination) movements; executing them in order empties E.
    moves: list[tuple[TupleSlot, TupleSlot]] = field(default_factory=list)
    filled_blocks: list["RawBlock"] = field(default_factory=list)
    partial_block: "RawBlock | None" = None
    empty_blocks: list["RawBlock"] = field(default_factory=list)
    total_tuples: int = 0

    @property
    def movement_count(self) -> int:
        """Number of tuple movements — each triggers index updates, so this
        is the write amplification measured in Figure 13."""
        return len(self.moves)


def plan_compaction(blocks: list["RawBlock"]) -> CompactionPlan:
    """The approximate planner: ``p`` is chosen arbitrarily (first leftover)."""
    return _plan(blocks, optimal_partial=False)


def plan_compaction_optimal(blocks: list["RawBlock"]) -> CompactionPlan:
    """The optimal planner: tries every candidate for ``p`` and keeps the one
    whose prefix needs the fewest fills (one extra pass over the blocks)."""
    return _plan(blocks, optimal_partial=True)


def _plan(blocks: list["RawBlock"], optimal_partial: bool) -> CompactionPlan:
    if not blocks:
        raise StorageError("empty compaction group")
    layouts = {b.layout.layout_key() for b in blocks}
    if len(layouts) > 1:
        raise StorageError("compaction group mixes block layouts")
    slots_per_block = blocks[0].layout.num_slots
    live = {b.block_id: b.live_slots() for b in blocks}
    total = sum(len(v) for v in live.values())
    plan = CompactionPlan(blocks=list(blocks), total_tuples=total)
    if total == 0:
        plan.empty_blocks = list(blocks)
        return plan

    by_fullness = sorted(blocks, key=lambda b: len(live[b.block_id]), reverse=True)
    full_count, remainder = divmod(total, slots_per_block)
    plan.filled_blocks = by_fullness[:full_count]
    leftovers = by_fullness[full_count:]

    if remainder:
        if optimal_partial:
            # Best p = fewest gaps within its first `remainder` slots.
            plan.partial_block = min(
                leftovers, key=lambda b: _prefix_gaps(live[b.block_id], remainder)
            )
        else:
            plan.partial_block = leftovers[0]
        plan.empty_blocks = [b for b in leftovers if b is not plan.partial_block]
    else:
        plan.empty_blocks = list(leftovers)

    gaps: list[TupleSlot] = []
    sources: list[TupleSlot] = []
    for block in plan.filled_blocks:
        occupied = set(live[block.block_id].tolist())
        gaps.extend(
            TupleSlot(block.block_id, s)
            for s in range(slots_per_block)
            if s not in occupied
        )
    if plan.partial_block is not None:
        occupied = set(live[plan.partial_block.block_id].tolist())
        gaps.extend(
            TupleSlot(plan.partial_block.block_id, s)
            for s in range(remainder)
            if s not in occupied
        )
        sources.extend(
            TupleSlot(plan.partial_block.block_id, s)
            for s in sorted(occupied)
            if s >= remainder
        )
    for block in plan.empty_blocks:
        sources.extend(
            TupleSlot(block.block_id, int(s)) for s in live[block.block_id]
        )

    if len(gaps) != len(sources):
        raise StorageError(
            f"planner invariant violated: {len(gaps)} gaps vs {len(sources)} sources"
        )
    plan.moves = list(zip(sources, gaps))
    return plan


def _prefix_gaps(live_slots, remainder: int) -> int:
    return remainder - int((live_slots < remainder).sum())


def execute_compaction(
    txn_manager: "TransactionManager",
    table: "DataTable",
    plan: CompactionPlan,
) -> "TransactionContext | None":
    """Run the plan's movements inside one transaction.

    Returns the still-open transaction on success (the transformer sets the
    blocks' COOLING flags *before* committing it, which is what makes the
    check-and-miss race of Figure 9 detectable).  Returns ``None`` if a
    conflict with a user transaction forced an abort — the failure mode the
    two-phase design deliberately keeps cheap.
    """
    txn = txn_manager.begin()
    all_columns = list(range(table.layout.num_columns))
    for src, dst in plan.moves:
        row = table.select(txn, src, all_columns)
        conflict = row is None or not table.delete(txn, src)
        if not conflict:
            try:
                table.insert_into(txn, dst, row.to_dict())
            except StorageError:
                # Destination gap had an unpruned chain or got re-used.
                conflict = True
        if conflict:
            if txn.is_active:
                txn_manager.abort(txn)
            return None
    return txn
