"""Hot→cold block transformation (Section 4).

The pipeline of Figure 8: the garbage collector's pass over undo records
feeds the :class:`AccessObserver`, which queues blocks that have not been
modified for a threshold number of GC epochs.  The :class:`BlockTransformer`
pulls from the queue and runs the two-phase algorithm — a transactional
*compaction* that eliminates slot gaps with a provably near-optimal number
of tuple movements, then a short exclusive *gather* that copies varlen
values into canonical Arrow buffers (or dictionary-compresses them), after
which the block is FROZEN and readable in place.
"""

from repro.transform.access_observer import AccessObserver, TransformQueue
from repro.transform.compaction import (
    CompactionPlan,
    execute_compaction,
    plan_compaction,
    plan_compaction_optimal,
)
from repro.transform.gather import gather_block
from repro.transform.dictionary import dictionary_compress_block
from repro.transform.arrow_view import block_to_record_batch, table_schema
from repro.transform.transformer import (
    BlockTransformer,
    inplace_transform,
    snapshot_transform,
)

__all__ = [
    "AccessObserver",
    "BlockTransformer",
    "CompactionPlan",
    "TransformQueue",
    "block_to_record_batch",
    "dictionary_compress_block",
    "execute_compaction",
    "gather_block",
    "inplace_transform",
    "plan_compaction",
    "plan_compaction_optimal",
    "snapshot_transform",
    "table_schema",
]
