"""Zero-copy Arrow views of frozen blocks.

A FROZEN block *is* Arrow data: its fixed-width column regions are valid
Arrow buffers in place, and the gather phase produced canonical offsets and
values buffers for varlen columns.  This module materializes that fact as
:class:`~repro.arrowfmt.table.RecordBatch` objects whose buffers alias the
block's memory — what the export layer ships without serialization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.arrowfmt.array import (
    Array,
    DictionaryArray,
    FixedSizeArray,
    VarBinaryArray,
)
from repro.arrowfmt.buffer import Bitmap, Buffer
from repro.arrowfmt.builder import VarBinaryBuilder
from repro.arrowfmt.datatypes import (
    DictionaryType,
    Field,
    FixedWidthType,
    INT32,
    Schema,
    VarBinaryType,
)
from repro.errors import BlockStateError, StorageError
from repro.storage.constants import BlockState
from repro.storage.layout import BlockLayout
from repro.transform.gather import live_prefix_length

if TYPE_CHECKING:
    from repro.storage.block import RawBlock


def table_schema(layout: BlockLayout, dictionary_columns: set[int] | None = None) -> Schema:
    """The Arrow schema corresponding to a block layout.

    Columns in ``dictionary_columns`` are typed as dictionary-encoded, the
    alternative cold format of Section 4.4.
    """
    dictionary_columns = dictionary_columns or set()
    fields = []
    for column_id, spec in enumerate(layout.columns):
        dtype = spec.dtype
        if column_id in dictionary_columns:
            if not isinstance(dtype, VarBinaryType):
                raise StorageError("only varlen columns can be dictionary-encoded")
            dtype = DictionaryType(INT32, dtype)
        fields.append(Field(spec.name, dtype, nullable=True))
    return Schema(fields)


def block_to_record_batch(block: "RawBlock", require_frozen: bool = True):
    """Expose a frozen block as a record batch without copying buffers.

    Fixed columns alias the block's column regions; varlen columns alias the
    gathered offsets/values buffers; dictionary-compressed columns come back
    as :class:`DictionaryArray`.  Raises :class:`BlockStateError` unless the
    block is FROZEN (pass ``require_frozen=False`` only from the gather
    path, which holds exclusive access).
    """
    from repro.arrowfmt.table import RecordBatch

    if require_frozen and block.state is not BlockState.FROZEN:
        raise BlockStateError(
            f"in-place Arrow access requires FROZEN, block is {block.state.name}"
        )
    layout = block.layout
    n = live_prefix_length(block)
    columns: list[Array] = []
    dictionary_columns = set(block.dictionaries)
    for column_id, spec in enumerate(layout.columns):
        validity = _prefix_validity(block, column_id, n)
        if not spec.is_varlen:
            view = block.column_view(column_id)[:n]
            columns.append(
                FixedSizeArray(spec.dtype, n, Buffer.from_numpy(view), validity)  # type: ignore[arg-type]
            )
        elif column_id in dictionary_columns:
            codes, words = block.dictionaries[column_id]
            word_offsets, dict_values = block.gathered[column_id]
            dictionary = VarBinaryArray(
                spec.dtype,  # type: ignore[arg-type]
                len(words),
                Buffer.from_numpy(word_offsets),
                Buffer.from_numpy(dict_values),
            )
            code_array = FixedSizeArray(INT32, n, Buffer.from_numpy(codes), validity)
            columns.append(
                DictionaryArray(
                    DictionaryType(INT32, spec.dtype), code_array, dictionary, validity
                )
            )
        else:
            if column_id not in block.gathered:
                raise StorageError(
                    f"block {block.block_id} column {spec.name!r} was never gathered"
                )
            offsets, values = block.gathered[column_id]
            columns.append(
                VarBinaryArray(
                    spec.dtype,  # type: ignore[arg-type]
                    n,
                    Buffer.from_numpy(offsets),
                    Buffer.from_numpy(values),
                    validity,
                )
            )
    schema = table_schema(layout, dictionary_columns)
    return RecordBatch(schema, columns)


def rows_to_record_batch(layout: BlockLayout, rows: list[dict]):
    """Build a record batch by *copying* rows (the materialization path for
    hot blocks: a transactional snapshot serialized through builders)."""
    from repro.arrowfmt.builder import FixedSizeBuilder
    from repro.arrowfmt.table import RecordBatch

    columns: list[Array] = []
    for column_id, spec in enumerate(layout.columns):
        if isinstance(spec.dtype, FixedWidthType):
            builder = FixedSizeBuilder(spec.dtype)
        else:
            builder = VarBinaryBuilder(spec.dtype)  # type: ignore[assignment]
        for row in rows:
            builder.append(row[column_id])
        columns.append(builder.finish())
    return RecordBatch(table_schema(layout), columns)


def _prefix_validity(block: "RawBlock", column_id: int, n: int) -> Bitmap | None:
    bitmap = block.validity_bitmaps[column_id]
    if n and int(bitmap.to_numpy()[:n].sum()) == n:
        return None  # no nulls: Arrow allows omitting the validity buffer
    return Bitmap(bitmap.buffer, n)
