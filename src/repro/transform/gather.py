"""Phase 2 of the transformation: the varlen gather (Section 4.3).

With exclusive access to a compacted block (state FREEZING), the gather
walks each variable-length column once, copying every live value into one
contiguous values buffer and building the Arrow offsets array.  Entries for
long values are rewritten in place to reference the gathered buffer (the
ownership bit flips off); short values stay inlined for transactional
readers, while the gathered buffer carries them for Arrow readers.  The old
out-of-line buffers are reclaimed through the GC's deferred-action queue so
no in-flight reader can observe freed memory (Section 4.4).

Reads remain safe throughout: the gather only changes the *physical
location* of values, never the logical content, and each entry rewrite is
atomic with respect to readers (an aligned-store argument in the paper; a
latch-protected store here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import BlockStateError, StorageError
from repro.storage.constants import VARLEN_INLINE_LIMIT, BlockState
from repro.storage.varlen import read_entry, read_value, write_gathered_entry

if TYPE_CHECKING:
    from repro.storage.block import RawBlock


@dataclass
class GatherStats:
    """What one gather pass did (drives Figure 12's breakdown)."""

    live_tuples: int = 0
    values_bytes: int = 0
    entries_rewritten: int = 0
    heap_entries_reclaimed: int = 0
    null_counts: dict[int, int] = field(default_factory=dict)


def live_prefix_length(block: "RawBlock") -> int:
    """Length of the dense tuple prefix; compaction must have produced one.

    Canonical Arrow forbids gaps, so gathering is only legal on blocks whose
    allocated slots are exactly ``0..n-1``.
    """
    live = block.live_slots()
    n = len(live)
    if n and (live[0] != 0 or live[-1] != n - 1):
        raise StorageError(
            f"block {block.block_id} is not compacted: live slots are not a prefix"
        )
    return n


def gather_block(
    block: "RawBlock",
    defer: Callable[[Callable[[], None]], None] | None = None,
) -> GatherStats:
    """Gather every varlen column of ``block`` into canonical Arrow buffers.

    ``defer`` receives the memory-reclamation action (freeing replaced heap
    entries); when ``None`` the action runs immediately — only safe when the
    caller knows no concurrent readers exist (single-threaded benchmarks).
    """
    if block.state is not BlockState.FREEZING:
        raise BlockStateError(
            f"gather requires FREEZING, block is {block.state.name}"
        )
    n = live_prefix_length(block)
    stats = GatherStats(live_tuples=n)
    to_free: list[tuple[int, int]] = []

    for column_id in block.layout.varlen_column_ids():
        heap = block.varlen_heaps[column_id]
        old_gathered = block.gathered.get(column_id)
        old_values = old_gathered[1] if old_gathered is not None else None
        validity = block.validity_bitmaps[column_id]
        offsets = np.zeros(n + 1, dtype=np.int32)
        chunks: list[bytes] = []
        nulls = 0
        cursor = 0
        entry_meta: list[tuple[int, int, int, bytes]] = []  # slot, size, offset, prefix
        for slot in range(n):
            if not validity.get(slot):
                nulls += 1
                offsets[slot + 1] = cursor
                continue
            view = block.varlen_entry_view(column_id, slot)
            value = read_value(view, heap, old_values)
            chunks.append(value)
            if len(value) > VARLEN_INLINE_LIMIT:
                entry = read_entry(view)
                if entry.owns_buffer:
                    to_free.append((column_id, entry.pointer))
                entry_meta.append((slot, len(value), cursor, value[:4]))
            cursor += len(value)
            offsets[slot + 1] = cursor
        values = np.frombuffer(b"".join(chunks), dtype=np.uint8).copy()
        # Rewrite long-value entries to reference the gathered buffer; each
        # 16-byte store happens under the write latch so readers never see
        # a torn entry.
        with block.write_latch:
            for slot, size, offset, prefix in entry_meta:
                write_gathered_entry(
                    block.varlen_entry_view(column_id, slot), size, prefix, offset
                )
            block.replace_gathered(column_id, offsets, values)
        stats.values_bytes += cursor
        stats.entries_rewritten += len(entry_meta)
        stats.null_counts[column_id] = nulls

    compute_fixed_metadata(block, n, stats.null_counts)

    stats.heap_entries_reclaimed = len(to_free)
    if to_free:
        reclaim = _make_reclaim(block, to_free)
        if defer is not None:
            defer(reclaim)
        else:
            reclaim()
    return stats


def compute_fixed_metadata(
    block: "RawBlock", n: int, null_counts: dict[int, int]
) -> None:
    """Null counts and zone maps for fixed-width columns.

    Computed in the same pass as the gather (the paper: "it also computes
    metadata information, such as null count, for Arrow's metadata").
    Shared by the plain gather and the dictionary-compression variant so a
    re-frozen block never carries stale zone maps.
    """
    block.zone_maps.clear()
    # The exact frozen maps supersede the widen-only hot maps; a later
    # FROZEN→HOT transition re-seeds them (RawBlock._seed_hot_zone_maps).
    block.hot_zone_maps.clear()
    for column_id in block.layout.fixed_column_ids():
        validity = block.validity_bitmaps[column_id]
        valid_mask = validity.to_numpy()[:n] if n else None
        live_valid = int(valid_mask.sum()) if valid_mask is not None else 0
        null_counts[column_id] = n - live_valid
        spec = block.layout.columns[column_id]
        if live_valid and spec.dtype.numpy_dtype.kind in "iuf":  # type: ignore[union-attr]
            values = block.column_view(column_id)[:n][valid_mask]
            block.zone_maps[column_id] = (values.min().item(), values.max().item())


def _make_reclaim(block: "RawBlock", to_free: list[tuple[int, int]]):
    def _reclaim() -> None:
        for column_id, heap_id in to_free:
            block.varlen_heaps[column_id].free(heap_id)

    return _reclaim
