"""The block transformer: orchestrating the two-phase pipeline (Fig. 8).

``process_queue`` pulls cooled blocks off the access observer's queue,
groups them by table into compaction groups, and runs Phase 1 (compaction).
Following the race-avoidance protocol of Section 4.3, each block's flag is
set to COOLING *after* the shuffle but *before* the compaction transaction
commits; the group then waits in ``freeze_pending`` until the GC has pruned
the compaction transaction's own version records — the signal that every
transaction that overlapped it has ended.  ``process_freeze_pending`` then
takes the short exclusive FREEZING section, gathers (or dictionary-
compresses), and marks blocks FROZEN.

Also implemented here are the two baselines of Section 6.2:
``snapshot_transform`` (copy the whole block through a transactional read)
and ``inplace_transform`` (do everything as transactional updates).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal

from repro.fault.crashpoints import crash_point
from repro.gc_engine.collector import GarbageCollector
from repro.obs import trace
from repro.obs.recorder import Recorder, get_recorder
from repro.obs.registry import STATE, MetricRegistry
from repro.storage.constants import BlockState
from repro.transform.access_observer import AccessObserver
from repro.transform.arrow_view import rows_to_record_batch
from repro.transform.compaction import (
    CompactionPlan,
    execute_compaction,
    plan_compaction,
    plan_compaction_optimal,
)
from repro.transform.dictionary import dictionary_compress_block
from repro.transform.gather import gather_block

if TYPE_CHECKING:
    from repro.storage.block import RawBlock
    from repro.storage.data_table import DataTable
    from repro.txn.manager import TransactionManager


@dataclass
class TransformStats:
    """Cumulative pipeline counters (Figures 10b, 12, 13, 14)."""

    groups_attempted: int = 0
    groups_compacted: int = 0
    groups_aborted: int = 0
    tuples_moved: int = 0
    blocks_frozen: int = 0
    blocks_freed: int = 0
    freeze_retries: int = 0
    freezes_preempted: int = 0
    compaction_write_set_ops: int = 0
    compaction_seconds: float = 0.0
    gather_seconds: float = 0.0


@dataclass
class GroupResult:
    """Outcome of one compaction-group pass."""

    plan: CompactionPlan
    compacted: bool
    frozen_later: list["RawBlock"] = field(default_factory=list)


class BlockTransformer:
    """Runs the hot→cold pipeline for one DBMS instance."""

    def __init__(
        self,
        txn_manager: "TransactionManager",
        gc: GarbageCollector,
        observer: AccessObserver,
        compaction_group_size: int = 50,
        cold_format: Literal["gather", "dictionary"] = "gather",
        optimal_compaction: bool = False,
        group_policy=None,
        registry: MetricRegistry | None = None,
        recorder: Recorder | None = None,
        arena=None,
    ) -> None:
        self.txn_manager = txn_manager
        self.gc = gc
        self.observer = observer
        #: Shared-memory arena (:class:`repro.parallel.SharedMemoryArena`);
        #: when present, freshly frozen blocks are placed into it so worker
        #: processes can scan/serialize them.  ``None`` keeps every block
        #: process-private (the serial configuration).
        self.arena = arena
        self.recorder = recorder if recorder is not None else get_recorder()
        self.compaction_group_size = compaction_group_size
        #: Group-formation policy; defaults to fixed-size chunks (the
        #: paper's evaluated configuration).  See transform/policy.py.
        if group_policy is None:
            from repro.transform.policy import FixedGroupPolicy

            group_policy = FixedGroupPolicy(compaction_group_size)
        self.group_policy = group_policy
        self.cold_format = cold_format
        self.optimal_compaction = optimal_compaction
        self.stats = TransformStats()
        self._stats_lock = threading.Lock()
        #: (table, block) pairs compacted and awaiting the freeze attempt.
        self.freeze_pending: list[tuple["DataTable", "RawBlock"]] = []
        self._pending_lock = threading.Lock()
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._m_groups_compacted = reg.counter(
            "transform.groups_compacted_total", "compaction groups committed"
        )
        self._m_groups_aborted = reg.counter(
            "transform.groups_aborted_total", "compaction groups lost to conflicts"
        )
        self._m_tuples_moved = reg.counter(
            "transform.tuples_moved_total", "tuples relocated by compaction"
        )
        self._m_blocks_frozen = reg.counter(
            "transform.blocks_frozen_total", "blocks reaching FROZEN"
        )
        self._m_blocks_freed = reg.counter(
            "transform.blocks_freed_total", "emptied blocks returned to the store"
        )
        self._m_freezes_preempted = reg.counter(
            "transform.freezes_preempted_total", "freeze attempts bounced by writers"
        )
        self._m_freeze_retries = reg.counter(
            "transform.freeze_retries_total", "freeze attempts deferred to next pass"
        )
        self._m_compaction_seconds = reg.histogram(
            "transform.compaction_seconds", "phase-1 duration per compaction group"
        )
        self._m_gather_seconds = reg.histogram(
            "transform.gather_seconds", "phase-2 gather duration per block"
        )
        self._m_dictionary_seconds = reg.histogram(
            "transform.dictionary_seconds", "phase-2 dictionary duration per block"
        )
        reg.gauge(
            "transform.queue_depth",
            "cooled blocks awaiting transformation",
            callback=lambda: len(self.observer.queue),
        )
        reg.gauge(
            "transform.freeze_pending",
            "compacted blocks awaiting the freeze attempt",
            callback=lambda: len(self.freeze_pending),
        )

    # ------------------------------------------------------------------ #
    # phase 1: drain queue, compact groups                                #
    # ------------------------------------------------------------------ #

    def process_queue(self) -> list[GroupResult]:
        """Compact every queued block, grouped per table by the policy."""
        per_table: dict[int, tuple["DataTable", list["RawBlock"]]] = {}
        for table, block in self.observer.queue.drain():
            per_table.setdefault(id(table), (table, []))[1].append(block)
        results = []
        for table, blocks in per_table.values():
            for group in self.group_policy.form_groups(blocks):
                results.append(self.transform_group(table, group))
        return results

    def process_queue_parallel(self, num_threads: int = 2) -> list[GroupResult]:
        """Compact queued blocks with ``num_threads`` workers.

        Compaction groups are isolated units of work that never interfere
        with each other (Section 4.4), so the partitioning is free: groups
        are dealt round-robin to the workers.
        """
        per_table: dict[int, tuple["DataTable", list["RawBlock"]]] = {}
        for table, block in self.observer.queue.drain():
            per_table.setdefault(id(table), (table, []))[1].append(block)
        groups: list[tuple["DataTable", list["RawBlock"]]] = []
        for table, blocks in per_table.values():
            for group in self.group_policy.form_groups(blocks):
                groups.append((table, group))
        results: list[GroupResult | None] = [None] * len(groups)

        def worker(indices: list[int]) -> None:
            for i in indices:
                table, blocks = groups[i]
                results[i] = self.transform_group(table, blocks)

        shards = [list(range(len(groups)))[i::num_threads] for i in range(num_threads)]
        threads = [
            threading.Thread(target=worker, args=(shard,), name=f"transform-{i}")
            for i, shard in enumerate(shards)
            if shard
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [r for r in results if r is not None]

    def transform_group(
        self, table: "DataTable", blocks: list["RawBlock"]
    ) -> GroupResult:
        """Run Phase 1 on one compaction group."""
        with self._stats_lock:
            self.stats.groups_attempted += 1
        blocks = [b for b in blocks if b.state is BlockState.HOT]
        planner = plan_compaction_optimal if self.optimal_compaction else plan_compaction
        began = time.perf_counter()
        with trace.span("transform.compaction"):
            plan = planner(blocks) if blocks else CompactionPlan(blocks=[])
            if not blocks:
                return GroupResult(plan, compacted=False)
            txn = execute_compaction(self.txn_manager, table, plan)
            if txn is None:
                with self._stats_lock:
                    self.stats.groups_aborted += 1
                self._m_groups_aborted.inc()
                return GroupResult(plan, compacted=False)
            # Flag flips happen before the commit: any transaction that slips a
            # write past the COOLING check must overlap this transaction, so the
            # GC cannot prune our records until it ends — the freeze attempt's
            # version-pointer scan will see the interloper (Figure 9's fix).
            keep = plan.filled_blocks + (
                [plan.partial_block] if plan.partial_block is not None else []
            )
            cooled = [
                b for b in keep if b.compare_and_swap_state(BlockState.HOT, BlockState.COOLING)
            ]
            commit_ts = self.txn_manager.commit(txn)
        elapsed = time.perf_counter() - began
        with self._stats_lock:
            self.stats.groups_compacted += 1
            self.stats.tuples_moved += plan.movement_count
            self.stats.compaction_write_set_ops += len(txn.undo_buffer)
            self.stats.compaction_seconds += elapsed
        if STATE.enabled:
            self._m_groups_compacted.inc()
            self._m_tuples_moved.inc(plan.movement_count)
            self._m_compaction_seconds.observe(elapsed)
            epoch = self.gc.epoch
            for block in cooled:
                # HOT → COOLING, with the heat statistics that justified it.
                self.recorder.record(
                    "block.cooling",
                    block_id=block.block_id,
                    table=table.name,
                    last_modified_epoch=block.last_modified_epoch,
                    gc_epoch=epoch,
                    idle_epochs=epoch - block.last_modified_epoch,
                )
            self.recorder.record(
                "transform.compacted",
                table=table.name,
                blocks=len(plan.blocks),
                tuples_moved=plan.movement_count,
                emptied=len(plan.empty_blocks),
                duration_seconds=elapsed,
            )
        for block in plan.empty_blocks:
            self._schedule_block_release(table, block, commit_ts)
        with self._pending_lock:
            self.freeze_pending.extend((table, b) for b in cooled)
        return GroupResult(plan, compacted=True, frozen_later=cooled)

    def _schedule_block_release(
        self, table: "DataTable", block: "RawBlock", commit_ts: int
    ) -> None:
        """Free an emptied block once no snapshot can still read it."""

        def _release() -> None:
            if block.is_empty() and block.block_id in table._blocks_by_id:
                table.drop_block(block)
                self.stats.blocks_freed += 1
                self._m_blocks_freed.inc()

        self.gc.deferred.register(commit_ts, _release)

    # ------------------------------------------------------------------ #
    # phase 2: freeze compacted blocks                                    #
    # ------------------------------------------------------------------ #

    def process_freeze_pending(self) -> int:
        """Attempt the gather on every block waiting since compaction.

        Returns the number of blocks frozen this pass.  Blocks whose
        version-pointer scan still finds records (the compaction records
        themselves, or an interloping writer's) stay pending; blocks a user
        transaction preempted back to HOT are abandoned to be re-observed.
        """
        frozen = 0
        still_pending: list[tuple["DataTable", "RawBlock"]] = []
        with self._pending_lock:
            pending, self.freeze_pending = self.freeze_pending, []
        for table, block in pending:
            if block.state is not BlockState.COOLING:
                self.stats.freezes_preempted += 1
                self._m_freezes_preempted.inc()
                self._record_preempted(table, block, "left_cooling")
                continue
            if block.has_active_versions():
                self.stats.freeze_retries += 1
                self._m_freeze_retries.inc()
                self.recorder.record(
                    "block.freeze_retry", block_id=block.block_id, table=table.name
                )
                still_pending.append((table, block))
                continue
            if not block.compare_and_swap_state(BlockState.COOLING, BlockState.FREEZING):
                self.stats.freezes_preempted += 1
                self._m_freezes_preempted.inc()
                self._record_preempted(table, block, "cas_lost")
                continue
            self.recorder.record(
                "block.freezing",
                block_id=block.block_id,
                table=table.name,
                gc_epoch=self.gc.epoch,
            )
            if block.has_active_versions():
                # An interloper slipped in between scan and CAS; back off.
                block.set_state(BlockState.HOT)
                self.stats.freezes_preempted += 1
                self._m_freezes_preempted.inc()
                self._record_preempted(table, block, "interloper")
                continue
            began = time.perf_counter()
            unlink_ts = self.txn_manager.timestamps.checkpoint()
            defer = lambda action, ts=unlink_ts: self.gc.deferred.register(ts, action)
            crash_point("transform.gather")
            if self.cold_format == "dictionary":
                with trace.span("transform.dictionary"):
                    dictionary_compress_block(block, defer)
            else:
                with trace.span("transform.gather"):
                    gather_block(block, defer)
            block.frozen_at = self.txn_manager.timestamps.checkpoint()
            if self.arena is not None:
                self._place_in_arena(table, block)
            block.set_state(BlockState.FROZEN)
            elapsed = time.perf_counter() - began
            self.stats.gather_seconds += elapsed
            self.stats.blocks_frozen += 1
            if STATE.enabled:
                self._m_blocks_frozen.inc()
                if self.cold_format == "dictionary":
                    self._m_dictionary_seconds.observe(elapsed)
                else:
                    self._m_gather_seconds.observe(elapsed)
                self.recorder.record(
                    "block.frozen",
                    block_id=block.block_id,
                    table=table.name,
                    format=self.cold_format,
                    frozen_at=block.frozen_at,
                    duration_seconds=elapsed,
                )
            frozen += 1
        with self._pending_lock:
            self.freeze_pending = still_pending + self.freeze_pending
        return frozen

    def _place_in_arena(self, table: "DataTable", block: "RawBlock") -> None:
        """Copy the frozen payload into shared memory (best-effort).

        Runs inside the FREEZING exclusive section, after the gather and
        the ``frozen_at`` stamp: the copy is consistent by construction and
        the descriptor's stamp proves it.  Any failure (arena full, shm
        error) leaves the block process-private — scans fall back to the
        in-process path for it.
        """
        from repro.parallel.placement import place_block

        try:
            with trace.span("transform.shm_place"):
                place_block(self.arena, block)
        except Exception as exc:
            block.shm_descriptor = None
            self.recorder.record(
                "parallel.placement_failed",
                block_id=block.block_id,
                table=table.name,
                error=f"{type(exc).__name__}: {exc}",
            )

    def _record_preempted(self, table: "DataTable", block: "RawBlock", why: str) -> None:
        self.recorder.record(
            "block.freeze_preempted",
            block_id=block.block_id,
            table=table.name,
            reason=why,
            state=block.state.name,
        )

    def run_pass(self) -> int:
        """One full pipeline turn: GC feeds the queue, compaction runs, GC
        prunes the compaction records, freezes complete.  Returns blocks
        frozen.  (A deployment runs these pieces on background threads; the
        sequential form is deterministic for tests and benchmarks.)"""
        self.gc.run()
        self.process_queue()
        self.gc.run()
        frozen = self.process_freeze_pending()
        self.gc.run()
        return frozen


# ---------------------------------------------------------------------- #
# baselines (Section 6.2)                                                 #
# ---------------------------------------------------------------------- #


def snapshot_transform(
    txn_manager: "TransactionManager", table: "DataTable", block: "RawBlock"
):
    """Baseline 1: copy a transactional snapshot into fresh Arrow buffers.

    Every live tuple is read through the Data Table API and appended to
    builders — simple, but it copies the whole block and (because the copy
    lives at new addresses) would invalidate every index entry, the cost
    Figure 13 charges it for.
    """
    txn = txn_manager.begin()
    column_ids = list(range(table.layout.num_columns))
    rows = []
    from repro.storage.tuple_slot import TupleSlot

    for offset in range(block.insert_head):
        row = table.select(txn, TupleSlot(block.block_id, offset), column_ids)
        if row is not None:
            rows.append(row.to_dict())
    txn_manager.commit(txn)
    return rows_to_record_batch(table.layout, rows)


def inplace_transform(
    txn_manager: "TransactionManager",
    table: "DataTable",
    blocks: list["RawBlock"],
) -> bool:
    """Baseline 2: perform the entire transformation transactionally.

    Movements *and* the varlen rewrites run as ordinary updates, so every
    touched tuple pays version maintenance (undo + redo + chain install).
    Returns ``False`` if a conflict aborted the attempt.
    """
    plan = plan_compaction(blocks)
    txn = execute_compaction(txn_manager, table, plan)
    if txn is None:
        return False
    varlen_ids = table.layout.varlen_column_ids()
    from repro.storage.tuple_slot import TupleSlot

    for block in plan.filled_blocks + (
        [plan.partial_block] if plan.partial_block is not None else []
    ):
        for offset in block.live_slots():
            slot = TupleSlot(block.block_id, int(offset))
            row = table.select(txn, slot, varlen_ids)
            if row is None:
                continue
            delta = {c: row.get(c) for c in varlen_ids}
            if delta and not table.update(txn, slot, delta):
                txn_manager.abort(txn)
                return False
    txn_manager.commit(txn)
    return True
