"""Open-loop (constant-arrival-rate) load generation for the front door.

The YCSB measurement discipline: a *closed-loop* client (issue, wait,
issue) slows down exactly when the server does, hiding overload behind
coordinated omission.  This generator is **open-loop** — request start
times are fixed on a constant-rate schedule before the server's behaviour
is known, every scheduled request fires whether or not earlier ones have
returned, and latency is measured from the *scheduled* start.  Pushed
past the admission limit, the offered rate keeps arriving and the server
must shed; the interesting outputs are therefore

- admitted-request p50/p99 latency (does the bounded queue keep latency
  bounded?), and
- the shed rate (is overload rejected explicitly rather than absorbed?).

Run it against a live server with ``python -m repro.service loadgen``;
:func:`run_loadgen` is the library entry the benchmark and the CI smoke
job call.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any

from repro.service.client import AsyncServiceClient
from repro.service.protocol import Request
from repro.workloads.ycsb import ZipfianGenerator


@dataclass(frozen=True)
class LoadgenConfig:
    """Offered load shape."""

    host: str = "127.0.0.1"
    port: int = 0
    rate: float = 200.0          # offered requests/second (open loop)
    duration: float = 2.0        # seconds of offered load
    connections: int = 16        # client connection pool size
    read_fraction: float = 0.5   # rest are writes
    keys: int = 1000             # key space (zipfian-skewed)
    zipf_theta: float = 0.9
    table: str = "usertable"
    index: str = "by_key"
    key_column: str = "key"
    value_column: str = "field0"
    deadline_ms: float = 1000.0
    tenant: str = "default"
    seed: int = 1


@dataclass
class LoadgenResult:
    """What one run measured.

    Served and shed requests are reported as *separate* latency
    populations: a shed answers in microseconds, and folding it into the
    served percentiles would make overload look like a latency
    improvement.  When the server attaches trace ids to responses (the
    exemplar flow), each served sample keeps its trace id, so the p99 line
    can name an actual offending request to look up at ``/request/<id>``.
    """

    offered: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    shed_reasons: dict[str, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)
    shed_latencies_ms: list[float] = field(default_factory=list)
    #: ``(latency_ms, trace_id_hex | None)`` per served request.
    served_samples: list[tuple[float, str | None]] = field(default_factory=list)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @staticmethod
    def _rank(ordered_len: int, q: float) -> int:
        return min(ordered_len - 1, int(q * ordered_len))

    def percentile(self, q: float) -> float:
        """Latency percentile (ms) over *admitted, completed* requests."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[self._rank(len(ordered), q)]

    def shed_percentile(self, q: float) -> float:
        """Latency percentile (ms) over *shed* requests — how fast the
        server says no, the number the fast-rejection contract is about."""
        if not self.shed_latencies_ms:
            return 0.0
        ordered = sorted(self.shed_latencies_ms)
        return ordered[self._rank(len(ordered), q)]

    def percentile_trace(self, q: float) -> str | None:
        """The trace id of the served request sitting at percentile ``q``
        (``None`` when the server sent no trace ids)."""
        if not self.served_samples:
            return None
        ordered = sorted(self.served_samples, key=lambda s: s[0])
        return ordered[self._rank(len(ordered), q)][1]

    @property
    def p50_ms(self) -> float:
        return self.percentile(0.50)

    @property
    def p99_ms(self) -> float:
        return self.percentile(0.99)

    def summary(self) -> dict[str, Any]:
        out = {
            "offered": self.offered,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "shed_rate": round(self.shed_rate, 4),
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "shed_p50_ms": round(self.shed_percentile(0.50), 3),
            "shed_p99_ms": round(self.shed_percentile(0.99), 3),
        }
        traces = {
            f"p{int(q * 100)}": trace
            for q in (0.50, 0.99)
            if (trace := self.percentile_trace(q)) is not None
        }
        if traces:
            out["percentile_traces"] = traces
        return out


async def run_loadgen(config: LoadgenConfig) -> LoadgenResult:
    """Offer ``rate`` req/s for ``duration`` seconds; return measurements."""
    loop = asyncio.get_running_loop()
    rng = random.Random(config.seed)
    zipf = ZipfianGenerator(config.keys, config.zipf_theta, seed=config.seed)
    result = LoadgenResult()

    # A fixed pool of connections handed out round-robin; a request whose
    # connection is still busy waits on that connection's lock — the wait
    # counts against its latency, exactly as a stalled driver would.
    pool = [
        await AsyncServiceClient.connect(config.host, config.port)
        for _ in range(config.connections)
    ]
    locks = [asyncio.Lock() for _ in pool]

    def next_request() -> Request:
        key = zipf.next()
        if rng.random() < config.read_fraction:
            return Request(
                op="read", table=config.table, index=config.index,
                key=(key,), deadline_ms=config.deadline_ms,
                tenant=config.tenant,
            )
        return Request(
            op="write", table=config.table, index=config.index, key=(key,),
            values={
                config.key_column: key,
                config.value_column: f"v{key}-{rng.randrange(1 << 30)}",
            },
            deadline_ms=config.deadline_ms, tenant=config.tenant,
        )

    async def fire(sequence: int, scheduled_at: float) -> None:
        request = next_request()
        slot = sequence % len(pool)
        try:
            async with locks[slot]:
                response = await pool[slot].request(request)
        except Exception:
            result.errors += 1
            return
        finished = loop.time()
        latency_ms = (finished - scheduled_at) * 1000.0
        if response.ok:
            result.ok += 1
            # Open-loop latency: from the *scheduled* arrival, so time a
            # request spent waiting to even be sent is charged too.
            result.latencies_ms.append(latency_ms)
            result.served_samples.append((latency_ms, response.trace_id))
        elif response.shed:
            result.shed += 1
            result.shed_latencies_ms.append(latency_ms)
            code = response.code or "unknown"
            result.shed_reasons[code] = result.shed_reasons.get(code, 0) + 1
        else:
            result.errors += 1

    interval = 1.0 / config.rate
    total = int(config.rate * config.duration)
    start = loop.time()
    tasks = []
    for sequence in range(total):
        scheduled_at = start + sequence * interval
        delay = scheduled_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        result.offered += 1
        tasks.append(loop.create_task(fire(sequence, scheduled_at)))
    if tasks:
        await asyncio.gather(*tasks)
    for client in pool:
        await client.close()
    return result


def run_loadgen_sync(config: LoadgenConfig) -> LoadgenResult:
    """:func:`run_loadgen` from synchronous code (its own event loop)."""
    return asyncio.run(run_loadgen(config))
