"""The transactional front door: an asyncio server built to survive overload.

One :class:`TransactionalServer` fronts one engine — a plain
:class:`~repro.db.Database` or a :class:`~repro.cluster.sharded.ShardedDatabase`
(the request path only touches the surface the two share) — and speaks the
framed protocol of :mod:`repro.service.protocol`: point reads and scans
answered through the postgres-wire row codec, whole-table exports through
the Arrow-IPC path, and simple write transactions (upsert/delete through
an index) run under :func:`~repro.txn.retry.retry_transaction`.

The interesting part is not the request dispatch but the failure shape:

- every request passes the :class:`~repro.service.admission.AdmissionController`
  first, so overload produces *fast explicit sheds* instead of unbounded
  queues;
- writes additionally pass the :class:`~repro.service.gate.HealthGate`,
  which watches ``db.health()`` and flips the server read-only (with
  hysteresis) while the WAL is backlogged or the engine degraded;
- the client's ``deadline_ms`` is enforced at admission, inside the retry
  loop (via ``retry_transaction``'s ``deadline``), and again before the
  response is written out;
- a write is acknowledged only after ``txn.wait_durable()`` — the
  speculative-visibility rule of Section 3.2 at the network boundary —
  which is what makes the drain guarantee ("never drop an acknowledged
  commit") achievable at all;
- :meth:`drain` (wired to SIGTERM by ``python -m repro.service serve``)
  stops accepting, sheds new work with ``draining``, waits out in-flight
  requests up to a bounded timeout, and flushes the log before exit.

Engine calls are blocking, so they run on a thread pool sized exactly to
``max_inflight`` — the admission controller's slot count and the
executor's worker count are the same number, meaning an admitted request
never queues *again* behind the executor.

Every request is also *attributed*: it gets a server-assigned request id,
a phase-stamped :class:`~repro.obs.slo.RequestLifecycle` (queue wait, slot
wait, engine time, and the engine-internal waits stamped by deeper layers
— retry backoff, fsync waits, worker fragments, 2PC phases — plus the
response write), and a root ``service.request`` trace span whose id rides
the response envelope and the latency histogram's exemplars.  Completions
feed the engine's per-tenant :class:`~repro.obs.slo.SloTracker` and its
request log, so ``/slo`` and ``/request/<id>`` on ``db.serve_obs()``
answer "who is burning budget" and "where did this request's time go".
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable

from repro.errors import (
    DegradedError,
    ReproError,
    SerializationError,
    ServiceOverload,
    TransactionAborted,
    TwoPhaseInDoubt,
)
from repro.export import postgres_wire
from repro.obs.registry import STATE
from repro.obs.slo import RequestLifecycle, RequestLog, SloTracker
from repro.obs.trace import TailSampler, current_context, get_tracer, span
from repro.service import protocol
from repro.service.admission import AdmissionController
from repro.service.gate import HealthGate
from repro.service.protocol import Request
from repro.txn.retry import retry_transaction


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the front door, with overload-safe defaults."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral; read server.port
    max_connections: int = 256
    max_inflight: int = 8               # execution slots == executor threads
    max_queue: int = 16                 # bounded accept queue behind the slots
    tenant_rate: float | None = None    # req/s per tenant (None = unlimited)
    tenant_burst: float | None = None
    backlog_high: int = 256             # WAL backlog closing the write gate
    backlog_low: int | None = None      # reopen watermark (default high // 4)
    reopen_after: int = 3               # consecutive healthy checks to reopen
    health_interval: float = 0.05       # seconds between health() polls
    default_deadline_ms: float | None = 5_000.0
    retries: int = 5                    # conflict-retry budget per write
    durability_timeout: float = 5.0     # bound on wait_durable per write
    drain_timeout: float = 10.0         # bound on SIGTERM drain
    slo_target_ms: float = 250.0        # per-tenant latency objective
    slo_availability: float = 0.999     # per-tenant availability objective
    exemplars: bool = True              # trace ids on p99 histogram buckets
    tail_sample_threshold_ms: float | None = None  # keep traces slower than
                                        # this (None = keep every trace)


def _layout(db: Any, table_name: str):
    """The block layout for ``table_name`` on either engine flavour (a
    sharded catalog's table objects carry no layout; shard 0's does)."""
    table = db.catalog.table(table_name)
    layout = getattr(table, "layout", None)
    if layout is None:
        layout = db.shards[0].catalog.table(table_name).layout
    return layout


class TransactionalServer:
    """The asyncio front door over one database (or sharded cluster)."""

    def __init__(self, db: Any, config: ServiceConfig | None = None) -> None:
        self.db = db
        self.config = config or ServiceConfig()
        self.registry = db.obs
        self.recorder = getattr(db, "recorder", None)
        cfg = self.config
        self.admission = AdmissionController(
            max_inflight=cfg.max_inflight,
            max_queue=cfg.max_queue,
            max_connections=cfg.max_connections,
            tenant_rate=cfg.tenant_rate,
            tenant_burst=cfg.tenant_burst,
            registry=self.registry,
            recorder=self.recorder,
        )
        self.gate = HealthGate(
            backlog_high=cfg.backlog_high,
            backlog_low=cfg.backlog_low,
            reopen_after=cfg.reopen_after,
            registry=self.registry,
            recorder=self.recorder,
        )
        # Request attribution: ids are minted here, lifecycles live in the
        # engine's request log (so /request/<id> works on db.serve_obs()),
        # and completions feed the engine's per-tenant SLO tracker.
        self._request_ids = itertools.count(1)
        # NB: ``is None`` checks — an empty RequestLog is falsy (len 0),
        # and the whole point is sharing the engine's (initially empty) one.
        db_request_log = getattr(db, "request_log", None)
        self.request_log: RequestLog = (
            db_request_log if db_request_log is not None else RequestLog()
        )
        db_slo = getattr(db, "slo", None)
        self.slo: SloTracker = (
            db_slo if db_slo is not None else SloTracker(registry=self.registry)
        )
        self.slo.configure_defaults(
            target_latency=cfg.slo_target_ms / 1e3,
            availability=cfg.slo_availability,
        )
        self._sampler: TailSampler | None = None
        self._prev_exemplars: bool | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=cfg.max_inflight, thread_name_prefix="service"
        )
        self._server: asyncio.AbstractServer | None = None
        self._health_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight_requests = 0
        self._draining = False
        self._stopped = False
        self.unhandled_exceptions = 0
        reg = self.registry
        self._m_latency = reg.histogram(
            "service.request_seconds", "admitted-request latency by outcome"
        )
        self._m_responses: dict[str, Any] = {}
        self._m_unhandled = reg.counter(
            "service.unhandled_exceptions_total",
            "handler exceptions that reached the catch-all (bugs, not load)",
        )
        reg.gauge(
            "service.draining",
            "1 while the server is draining toward shutdown",
            callback=lambda: 1.0 if self._draining else 0.0,
        )
        reg.gauge(
            "service.up",
            "1 while the front door accepts connections",
            callback=lambda: 1.0 if self._server is not None else 0.0,
        )

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    async def start(self) -> "TransactionalServer":
        if self._server is not None:
            return self
        if self.config.exemplars:
            self._prev_exemplars = STATE.exemplars
            STATE.exemplars = True
        if self.config.tail_sample_threshold_ms is not None:
            self._sampler = TailSampler(
                threshold=self.config.tail_sample_threshold_ms / 1e3,
                registry=self.registry,
            )
            get_tracer().set_tail_sampler(self._sampler)
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )
        if self.recorder is not None:
            self.recorder.record("service.start", port=self.port)
        return self

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def _health_loop(self) -> None:
        """Poll ``db.health()`` and feed the write gate.

        Deliberately *not* on the executor: under saturation every executor
        thread is busy with admitted requests, and the gate must keep
        updating precisely then.  ``health()`` only reads counters.
        """
        while True:
            try:
                self.gate.observe(self.db.health())
            except Exception:
                self._m_unhandled.inc()
                self.unhandled_exceptions += 1
            await asyncio.sleep(self.config.health_interval)

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting, shed new requests, wait out in-flight work.

        Returns ``True`` when every in-flight request finished inside the
        bound.  Acknowledged commits are never dropped either way: a write
        is only acknowledged after it is durable, and the final log flush
        below persists anything still buffered.
        """
        timeout = self.config.drain_timeout if timeout is None else timeout
        self._draining = True
        if self.recorder is not None:
            self.recorder.record("service.drain", timeout=timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + timeout
        clean = True
        while self._inflight_requests > 0:
            if time.monotonic() >= deadline:
                clean = False
                break
            await asyncio.sleep(0.005)
        # Connections themselves may idle past the in-flight work; closing
        # them now is safe (no request is mid-execution unless we timed out).
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        try:
            flush = getattr(self.db, "flush_all", None)
            if flush is None:
                lm = getattr(self.db, "log_manager", None)
                flush = lm.flush if lm is not None else None
            if flush is not None:
                await loop.run_in_executor(self._executor, flush)
        except Exception:
            # A failing final flush cannot retract already-sent acks (they
            # were durable before being sent); it is not a drain failure.
            pass
        if self.recorder is not None:
            self.recorder.record("service.drained", clean=clean)
        return clean

    async def stop(self) -> None:
        """Drain (bounded) then release every resource; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        await self.drain()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        self._server = None
        self._executor.shutdown(wait=True)
        if self._sampler is not None:
            get_tracer().set_tail_sampler(None)
            self._sampler.flush_pending()
            self._sampler = None
        if self._prev_exemplars is not None:
            STATE.exemplars = self._prev_exemplars
            self._prev_exemplars = None
        self.unregister_metrics()

    def unregister_metrics(self) -> None:
        """Drop every callback gauge this server (and its admission
        controller and gate) registered; idempotent."""
        self.admission.unregister_metrics()
        self.gate.unregister_metrics()
        self.registry.unregister("service.draining")
        self.registry.unregister("service.up")

    # ------------------------------------------------------------------ #
    # connection handling                                                 #
    # ------------------------------------------------------------------ #

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        if self._draining:
            await self._reject_connection(writer, "draining", "server is draining")
            return
        if not self.admission.try_connection():
            await self._reject_connection(
                writer, "connections", "connection limit reached"
            )
            return
        try:
            await self._serve_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        except Exception:
            self._m_unhandled.inc()
            self.unhandled_exceptions += 1
        finally:
            self.admission.release_connection()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _reject_connection(
        self, writer: asyncio.StreamWriter, code: str, message: str
    ) -> None:
        try:
            writer.write(protocol.encode_error(code, message))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                frame = await protocol.read_frame(reader)
            except SerializationError as exc:
                writer.write(protocol.encode_error("bad_request", str(exc)))
                await writer.drain()
                return
            if frame is None:
                return
            kind, payload = frame
            if kind != protocol.KIND_REQUEST:
                writer.write(
                    protocol.encode_error(
                        "bad_request", f"expected request frame, got {kind!r}"
                    )
                )
                await writer.drain()
                return
            self._inflight_requests += 1
            try:
                response, lifecycle = await self._handle(payload)
            finally:
                self._inflight_requests -= 1
            try:
                write_began = perf_counter()
                writer.write(response)
                await writer.drain()
                lifecycle.stamp(
                    "response.write", write_began, perf_counter()
                )
            finally:
                self._complete(lifecycle)

    # ------------------------------------------------------------------ #
    # request handling                                                    #
    # ------------------------------------------------------------------ #

    async def _handle(
        self, payload: bytes
    ) -> tuple[bytes, RequestLifecycle]:
        started = time.monotonic()
        lifecycle = RequestLifecycle(next(self._request_ids))
        try:
            request = Request.decode(payload)
        except SerializationError as exc:
            return self._finish(lifecycle, "bad_request", str(exc))
        lifecycle.op = request.op
        lifecycle.tenant = request.tenant
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.default_deadline_ms
        )
        deadline = (
            started + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        if request.op == "ping":
            # Liveness probes bypass admission: they must answer precisely
            # when the server is saturated.
            return self._finish(
                lifecycle, None, None,
                protocol.encode_result(
                    {
                        "rows": 0, "op": "ping", "draining": self._draining,
                        "request_id": lifecycle.request_id,
                    }
                ),
            )
        if self._draining:
            return self._finish(
                lifecycle, "draining", "server is draining",
                terminal_phase="admission",
            )
        if request.op in protocol.WRITE_OPS and not self.gate.open:
            # Backpressure: writes shed while the engine is unhealthy,
            # reads below keep flowing.
            return self._finish(
                lifecycle, "degraded",
                f"writes rejected: {self.gate.reason or 'engine unhealthy'}",
                retry_after_ms=1000.0 * self.config.health_interval
                * self.gate.reopen_after,
                terminal_phase="admission",
            )
        try:
            ticket = await self.admission.admit(
                request.tenant, deadline, lifecycle=lifecycle
            )
        except ServiceOverload as exc:
            retry_after = getattr(exc, "retry_after", None)
            return self._finish(
                lifecycle, exc.reason, str(exc),
                retry_after_ms=retry_after * 1000.0 if retry_after else None,
                terminal_phase="admission",
            )
        loop = asyncio.get_running_loop()
        try:
            run = self._execute(request, deadline, lifecycle)
            response = await loop.run_in_executor(self._executor, run)
        except ServiceOverload as exc:
            return self._finish(lifecycle, exc.reason, str(exc))
        except SerializationError as exc:
            return self._finish(lifecycle, "bad_request", str(exc))
        except DegradedError as exc:
            return self._finish(lifecycle, "degraded", str(exc))
        except TwoPhaseInDoubt as exc:
            return self._finish(lifecycle, "unknown", str(exc))
        except TransactionAborted as exc:
            return self._finish(lifecycle, "aborted", str(exc))
        except ReproError as exc:
            return self._finish(lifecycle, "bad_request", str(exc))
        except Exception as exc:
            self._m_unhandled.inc()
            self.unhandled_exceptions += 1
            return self._finish(lifecycle, "internal", repr(exc))
        finally:
            ticket.release()
        if (
            deadline is not None
            and time.monotonic() >= deadline
            and request.op not in protocol.WRITE_OPS
        ):
            # Write-out enforcement: a read result arriving after its
            # deadline is dead weight — shed it instead of shipping bytes
            # nobody waits for.  Completed *writes* still report ok: the
            # commit is durable and the client must learn that.
            return self._finish(lifecycle, "deadline", "deadline expired")
        return self._finish(lifecycle, None, None, response)

    def _execute(
        self,
        request: Request,
        deadline: float | None,
        lifecycle: RequestLifecycle,
    ) -> Callable[[], bytes]:
        """Wrap the dispatched engine work with request attribution: the
        executor handoff (``slot_wait``), the lifecycle's thread binding,
        the root ``service.request`` span (whose trace id the envelope and
        exemplars carry), and the ``engine`` phase window that deep stamps
        (backoff, fsync waits, fragments, 2PC) are subtracted from."""
        work = self._dispatch(request, deadline, lifecycle)
        slot_granted = perf_counter()

        def run() -> bytes:
            lifecycle.stamp("slot_wait", slot_granted, perf_counter())
            with lifecycle.activate():
                with span(
                    "service.request",
                    op=request.op,
                    tenant=request.tenant,
                    request_id=lifecycle.request_id,
                ):
                    ctx = current_context()
                    if ctx is not None:
                        lifecycle.trace_id = ctx.trace_id
                    try:
                        with lifecycle.phase("engine"):
                            response = work()
                    except BaseException:
                        # Mark before the root span closes: the tail
                        # sampler decides keep/drop exactly then.
                        self._mark_trace(lifecycle, "error")
                        raise
                    if deadline is not None and time.monotonic() >= deadline:
                        self._mark_trace(lifecycle, "deadline")
                    return response

        return run

    def _mark_trace(self, lifecycle: RequestLifecycle, reason: str) -> None:
        sampler = self._sampler
        if sampler is not None and lifecycle.trace_id is not None:
            sampler.mark(lifecycle.trace_id, reason)

    def _finish(
        self,
        lifecycle: RequestLifecycle,
        code: str | None,
        message: str | None,
        response: bytes | None = None,
        retry_after_ms: float | None = None,
        terminal_phase: str | None = None,
    ) -> tuple[bytes, RequestLifecycle]:
        lifecycle.finish(code or "ok", terminal_phase=terminal_phase)
        outcome = code or "ok"
        counter = self._m_responses.get(outcome)
        if counter is None:
            counter = self._m_responses[outcome] = self.registry.counter(
                "service.responses_total",
                "responses by outcome code",
                labels={"code": outcome},
            )
        counter.inc()
        if code is None:
            assert response is not None
            return response, lifecycle
        return (
            protocol.encode_error(
                code, message or code, retry_after_ms,
                request_id=lifecycle.request_id,
                trace_id=lifecycle.trace_hex,
            ),
            lifecycle,
        )

    def _complete(self, lifecycle: RequestLifecycle) -> None:
        """Post-write bookkeeping: seal the latency clock, feed the
        histogram (with the trace id as its exemplar) and the SLO tracker,
        journal a completion event, and file the lifecycle for
        ``/request/<id>``.  Pings stay out of the SLO and the request log —
        they are liveness probes, not served work."""
        lifecycle.close()
        outcome = lifecycle.outcome or "unknown"
        self._m_latency.observe(
            lifecycle.total_seconds, exemplar=lifecycle.trace_hex
        )
        if lifecycle.op != "ping":
            self.slo.record(
                lifecycle.tenant,
                lifecycle.total_seconds,
                ok=outcome == "ok",
                shed=outcome in protocol.SHED_CODES,
            )
            self.request_log.add(lifecycle)
        if self.recorder is not None:
            self.recorder.record(
                "service.response",
                request_id=lifecycle.request_id,
                op=lifecycle.op,
                tenant=lifecycle.tenant,
                outcome=outcome,
                duration_seconds=lifecycle.total_seconds,
                trace_id=lifecycle.trace_id,
                dominant_phase=lifecycle.dominant_phase(),
            )

    # ------------------------------------------------------------------ #
    # engine work (executor threads)                                      #
    # ------------------------------------------------------------------ #

    def _dispatch(
        self,
        request: Request,
        deadline: float | None,
        lifecycle: RequestLifecycle,
    ) -> Callable[[], bytes]:
        op = request.op
        if op == "read":
            return lambda: self._do_read(request, lifecycle)
        if op == "scan":
            return lambda: self._do_scan(request, lifecycle)
        if op == "export":
            return lambda: self._do_export(request, lifecycle)
        if op == "write":
            return lambda: self._do_write(request, deadline, lifecycle)
        if op == "delete":
            return lambda: self._do_delete(request, deadline, lifecycle)
        raise SerializationError(f"unknown operation {op!r}")

    def _encode_result(
        self, lifecycle: RequestLifecycle, meta: dict[str, Any]
    ) -> bytes:
        """An ok header carrying the request's attribution handles."""
        meta = dict(meta)
        meta["request_id"] = lifecycle.request_id
        if lifecycle.trace_hex is not None:
            meta["trace_id"] = lifecycle.trace_hex
        return protocol.encode_result(meta)

    def _require(self, request: Request, *fields: str) -> None:
        for name in fields:
            if getattr(request, name) is None:
                raise SerializationError(f"operation {request.op!r} needs {name!r}")

    def _column_ids(self, info: Any, names: list[str] | None) -> list[int] | None:
        if names is None:
            return None
        return [info.column_id(name) for name in names]

    def _do_read(self, request: Request, lifecycle: RequestLifecycle) -> bytes:
        self._require(request, "table", "index", "key")
        with span("service.read", table=request.table):
            info = self.db.catalog.get(request.table)
            index = self.db.catalog.index(request.table, request.index)
            column_ids = self._column_ids(info, request.columns)
            with self.db.transaction() as txn:
                matches = index.lookup(txn, request.key, column_ids)
                self._record_txn(request, txn)
            rows = [self._row_values(row, column_ids) for _, row in matches]
        payload, count = postgres_wire.encode_rows(rows)
        return self._encode_result(
            lifecycle, {"rows": count, "format": "postgres_wire"}
        ) + protocol.encode_frame(protocol.KIND_ROWS, payload)

    def _do_scan(self, request: Request, lifecycle: RequestLifecycle) -> bytes:
        self._require(request, "table")
        with span("service.scan", table=request.table):
            info = self.db.catalog.get(request.table)
            column_ids = self._column_ids(info, request.columns)
            rows = []
            with self.db.transaction() as txn:
                for _, row in info.table.scan(txn, column_ids):
                    rows.append(self._row_values(row, column_ids))
                    if request.limit is not None and len(rows) >= request.limit:
                        break
                self._record_txn(request, txn)
        payload, count = postgres_wire.encode_rows(rows)
        return self._encode_result(
            lifecycle, {"rows": count, "format": "postgres_wire"}
        ) + protocol.encode_frame(protocol.KIND_ROWS, payload)

    def _do_export(self, request: Request, lifecycle: RequestLifecycle) -> bytes:
        """Whole-table export as one Arrow IPC stream (a transactional
        materialization — works identically on both engine flavours)."""
        from repro.arrowfmt import ipc
        from repro.arrowfmt.table import Table
        from repro.transform.arrow_view import rows_to_record_batch, table_schema

        self._require(request, "table")
        with span("service.export", table=request.table):
            layout = _layout(self.db, request.table)
            table = self.db.catalog.table(request.table)
            with self.db.transaction() as txn:
                rows = [row.to_dict() for _, row in table.scan(txn)]
                self._record_txn(request, txn)
            batch_rows = 4096
            batches = [
                rows_to_record_batch(layout, rows[start : start + batch_rows])
                for start in range(0, len(rows), batch_rows)
            ]
            payload = ipc.write_table(Table(table_schema(layout), batches))
        return self._encode_result(
            lifecycle, {"rows": len(rows), "format": "arrow_ipc"}
        ) + protocol.encode_frame(protocol.KIND_ARROW, payload)

    def _do_write(
        self,
        request: Request,
        deadline: float | None,
        lifecycle: RequestLifecycle,
    ) -> bytes:
        """Upsert through an index key, retried on conflict within the
        request's deadline, acknowledged only once durable."""
        self._require(request, "table", "index", "key")
        if not request.values:
            raise SerializationError("operation 'write' needs non-empty 'values'")
        info = self.db.catalog.get(request.table)
        index = self.db.catalog.index(request.table, request.index)
        updates = {
            info.column_id(name): value for name, value in request.values.items()
        }
        committed: dict[str, Any] = {}

        def body(txn: Any) -> str:
            self._record_txn(request, txn)
            matches = index.lookup(txn, request.key, [0])
            if matches:
                slot = matches[0][0]
                if not info.table.update(txn, slot, updates):
                    raise TransactionAborted("write-write conflict on update")
                committed["txn"] = txn
                return "updated"
            committed["txn"] = txn
            info.table.insert(txn, updates)
            return "inserted"

        with span("service.write", table=request.table, tenant=request.tenant):
            action = retry_transaction(
                self.db, body, retries=self.config.retries, deadline=deadline
            )
            txn = committed["txn"]
            durable = txn.wait_durable(self._durability_budget(deadline))
        if not durable:
            # The commit record is written but not yet confirmed on the
            # device — reporting ok here could acknowledge a commit a crash
            # may still lose, so report the outcome as unknown.
            raise TwoPhaseInDoubt(
                "commit applied but durability confirmation timed out"
            )
        return self._encode_result(
            lifecycle,
            {"rows": 0, "action": action, "txn_id": txn.txn_id, "durable": True},
        )

    def _do_delete(
        self,
        request: Request,
        deadline: float | None,
        lifecycle: RequestLifecycle,
    ) -> bytes:
        self._require(request, "table", "index", "key")
        info = self.db.catalog.get(request.table)
        index = self.db.catalog.index(request.table, request.index)
        committed: dict[str, Any] = {}

        def body(txn: Any) -> int:
            self._record_txn(request, txn)
            committed["txn"] = txn
            deleted = 0
            for slot, _ in index.lookup(txn, request.key, [0]):
                if not info.table.delete(txn, slot):
                    raise TransactionAborted("write-write conflict on delete")
                deleted += 1
            return deleted

        with span("service.delete", table=request.table, tenant=request.tenant):
            deleted = retry_transaction(
                self.db, body, retries=self.config.retries, deadline=deadline
            )
            txn = committed["txn"]
            durable = txn.wait_durable(self._durability_budget(deadline))
        if not durable:
            raise TwoPhaseInDoubt(
                "commit applied but durability confirmation timed out"
            )
        return self._encode_result(
            lifecycle,
            {
                "rows": 0, "deleted": deleted,
                "txn_id": txn.txn_id, "durable": True,
            },
        )

    def _durability_budget(self, deadline: float | None) -> float:
        budget = self.config.durability_timeout
        if deadline is not None:
            # Even a tight deadline grants a small durability grace: the
            # alternative is answering "unknown" for commits that were a
            # millisecond from durable.
            budget = min(budget, max(0.05, deadline - time.monotonic()))
        return budget

    def _row_values(self, row: Any, column_ids: list[int] | None) -> list[Any]:
        values = row.to_dict()
        ids = column_ids if column_ids is not None else sorted(values)
        return [values[column_id] for column_id in ids]

    def _record_txn(self, request: Request, txn: Any) -> None:
        """Link this request to the transaction it spawned in the journal
        (the span → txn edge the flight recorder's timeline view joins)."""
        if self.recorder is not None:
            self.recorder.record(
                "service.request",
                txn_id=getattr(txn, "txn_id", None),
                op=request.op,
                tenant=request.tenant,
                table=request.table,
            )


class ServerThread:
    """A :class:`TransactionalServer` on its own event-loop thread.

    The synchronous face of the service for tests, the CLI, and anything
    else that is not itself async: ``start()`` blocks until the port is
    bound, ``stop()`` runs the bounded drain.  The CLI's SIGTERM handler
    calls :meth:`request_drain` from the signal frame and joins.
    """

    def __init__(self, db: Any, config: ServiceConfig | None = None) -> None:
        self.db = db
        self.config = config or ServiceConfig()
        self.server: TransactionalServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None

    def start(self) -> "ServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="service", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            raise self._start_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot() -> None:
            try:
                self.server = TransactionalServer(self.db, self.config)
                await self.server.start()
            except BaseException as exc:  # surface bind errors to start()
                self._start_error = exc
            finally:
                self._started.set()

        loop.run_until_complete(boot())
        if self._start_error is None:
            loop.run_forever()
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.close()

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def request_drain(self) -> None:
        """Signal-safe: schedule the drain+stop on the server loop."""
        loop = self._loop
        if loop is not None:
            asyncio.run_coroutine_threadsafe(self._shutdown(), loop)

    async def _shutdown(self) -> None:
        if self.server is not None:
            await self.server.stop()
        assert self._loop is not None
        self._loop.stop()

    def stop(self, timeout: float | None = None) -> None:
        """Drain and join; idempotent."""
        thread = self._thread
        if thread is None:
            return
        self.request_drain()
        thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
