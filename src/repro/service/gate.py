"""The write gate: backpressure keyed off the engine's own health report.

``db.health()`` already distils the durability story — WAL backlog,
flush-failure streaks, sticky degraded read-only mode.  The gate turns
that report into a single boolean the request path consults per write:
open (writes flow) or closed (writes shed with ``degraded`` while reads
keep being served).

Two robustness details matter more than the boolean itself:

**Hysteresis.**  A gate that closes at backlog ≥ N and reopens at
backlog < N flaps at the boundary — every drained entry reopens it, the
next admitted write closes it again, and clients see an alternating
accept/reject pattern that defeats their retry backoff.  So the gate
closes at ``backlog_high`` but reopens only once backlog has drained to
``backlog_low`` *and* stayed healthy for ``reopen_after`` consecutive
checks.

**Sharded health.**  On a :class:`~repro.cluster.sharded.ShardedDatabase`
the top-level report carries ``wal: None`` with per-shard reports nested
under ``shards``; one shard over the watermark closes the gate for the
whole cluster (a 2PC write touching that shard would stall anyway).

A sticky-degraded engine (``status != "ok"``) keeps the gate closed no
matter the backlog — that state never self-heals, and the gate mirrors
it honestly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.registry import MetricRegistry

if TYPE_CHECKING:
    from repro.obs.recorder import Recorder


def wal_backlog(health: dict[str, Any]) -> int:
    """Worst WAL backlog in a health report (max across shards when the
    top-level ``wal`` section is absent, as on a sharded cluster)."""
    wal = health.get("wal")
    if wal is not None:
        return int(wal.get("backlog", 0))
    worst = 0
    for shard in (health.get("shards") or {}).values():
        shard_wal = shard.get("wal") or {}
        worst = max(worst, int(shard_wal.get("backlog", 0)))
    return worst


class HealthGate:
    """Hysteretic open/closed decision over ``db.health()`` reports."""

    def __init__(
        self,
        backlog_high: int = 256,
        backlog_low: int | None = None,
        reopen_after: int = 3,
        registry: MetricRegistry | None = None,
        recorder: "Recorder | None" = None,
    ) -> None:
        if backlog_high < 1:
            raise ValueError("backlog_high must be at least 1")
        self.backlog_high = backlog_high
        self.backlog_low = (
            backlog_low if backlog_low is not None else max(0, backlog_high // 4)
        )
        if self.backlog_low >= self.backlog_high:
            raise ValueError("backlog_low must be below backlog_high")
        if reopen_after < 1:
            raise ValueError("reopen_after must be at least 1")
        self.reopen_after = reopen_after
        self.recorder = recorder
        self._open = True
        self._healthy_streak = 0
        self._last_reason = ""
        self.registry = registry if registry is not None else MetricRegistry()
        self.registry.gauge(
            "service.write_gate_open",
            "1 while the service accepts writes",
            callback=lambda: 1.0 if self._open else 0.0,
        )
        self._m_closed = self.registry.counter(
            "service.write_gate_closed_total", "write-gate close transitions"
        )
        self._m_reopened = self.registry.counter(
            "service.write_gate_reopened_total", "write-gate reopen transitions"
        )

    @property
    def open(self) -> bool:
        return self._open

    @property
    def reason(self) -> str:
        """Why the gate last closed (empty while it has never closed)."""
        return self._last_reason

    def observe(self, health: dict[str, Any]) -> bool:
        """Feed one health report; returns the resulting open state."""
        status = health.get("status", "ok")
        backlog = wal_backlog(health)
        unhealthy = status != "ok" or backlog >= self.backlog_high
        if self._open:
            if unhealthy:
                self._close(status, backlog)
            return self._open
        # Closed: demand sustained health below the low watermark.
        if status == "ok" and backlog <= self.backlog_low:
            self._healthy_streak += 1
            if self._healthy_streak >= self.reopen_after:
                self._reopen(backlog)
        else:
            self._healthy_streak = 0
        return self._open

    def _close(self, status: str, backlog: int) -> None:
        self._open = False
        self._healthy_streak = 0
        self._last_reason = (
            f"status={status}" if status != "ok" else f"wal backlog {backlog}"
        )
        self._m_closed.inc()
        if self.recorder is not None:
            self.recorder.record(
                "service.write_gate", state="closed",
                status=status, backlog=backlog,
            )

    def _reopen(self, backlog: int) -> None:
        self._open = True
        self._healthy_streak = 0
        self._m_reopened.inc()
        if self.recorder is not None:
            self.recorder.record(
                "service.write_gate", state="open", backlog=backlog,
            )

    def unregister_metrics(self) -> None:
        """Drop the callback gauge (idempotent) — it pins ``self``."""
        self.registry.unregister("service.write_gate_open")
