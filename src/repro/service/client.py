"""Clients for the transactional front door.

Two flavours over the same framed protocol:

- :class:`ServiceClient` — synchronous, one blocking socket.  The shape
  tests and simple scripts want: ``client.write(...)`` returns a decoded
  :class:`~repro.service.protocol.Response`, ``response.shed`` says
  whether the server rejected it for load.
- :class:`AsyncServiceClient` — asyncio streams, used by the open-loop
  load generator where thousands of requests are in flight at once.

Neither client retries: the service's whole point is that overload is
*explicitly visible* to callers, and auto-retrying inside the client
would hide exactly the signal (shed codes, ``retry_after_ms``) the
robustness story is about.  Callers that want retry semantics layer it
on top, honouring ``retry_after_ms``.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any

from repro.errors import SerializationError, ServiceError
from repro.service import protocol
from repro.service.protocol import Request, Response


def _parse_response(kind: bytes, payload: bytes) -> Response:
    try:
        body = json.loads(payload)
    except ValueError as exc:
        raise SerializationError(f"response header is not JSON: {exc}") from exc
    if kind == protocol.KIND_ERROR:
        return Response(
            status="error",
            code=body.get("code", "internal"),
            message=body.get("message"),
            retry_after_ms=body.get("retry_after_ms"),
            request_id=body.get("request_id"),
            trace_id=body.get("trace_id"),
        )
    if kind != protocol.KIND_RESULT:
        raise SerializationError(f"expected result frame, got {kind!r}")
    meta = {k: v for k, v in body.items() if k != "status"}
    return Response(
        status="ok",
        meta=meta,
        request_id=meta.get("request_id"),
        trace_id=meta.get("trace_id"),
    )


class ServiceClient:
    """Blocking client over one TCP connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 10.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buf = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._buf.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _read_frame(self) -> tuple[bytes, bytes] | None:
        header = self._buf.read(5)
        if not header:
            return None
        if len(header) < 5:
            raise SerializationError("connection closed mid-frame-header")
        kind, length = protocol._HEADER.unpack(header)
        if length > protocol.MAX_FRAME_BYTES:
            raise SerializationError(f"frame of {length} bytes exceeds limit")
        payload = self._buf.read(length) if length else b""
        if len(payload) < length:
            raise SerializationError("connection closed mid-frame")
        return kind, payload

    def request(self, request: Request) -> Response:
        """Send one request and read its full response."""
        self._sock.sendall(request.encode())
        frame = self._read_frame()
        if frame is None:
            raise ServiceError("server closed the connection")
        response = _parse_response(*frame)
        if response.ok and response.meta.get("rows", 0):
            payload_frame = self._read_frame()
            if payload_frame is None:
                raise SerializationError("connection closed before payload frame")
            response.payload_kind, response.payload = payload_frame
        return response

    # Convenience wrappers ------------------------------------------------

    def ping(self) -> Response:
        return self.request(Request(op="ping"))

    def read(
        self,
        table: str,
        index: str,
        key: tuple,
        columns: list[str] | None = None,
        deadline_ms: float | None = None,
        tenant: str = "default",
    ) -> Response:
        return self.request(Request(
            op="read", table=table, index=index, key=key,
            columns=columns, deadline_ms=deadline_ms, tenant=tenant,
        ))

    def scan(
        self,
        table: str,
        columns: list[str] | None = None,
        limit: int | None = None,
        deadline_ms: float | None = None,
        tenant: str = "default",
    ) -> Response:
        return self.request(Request(
            op="scan", table=table, columns=columns, limit=limit,
            deadline_ms=deadline_ms, tenant=tenant,
        ))

    def write(
        self,
        table: str,
        index: str,
        key: tuple,
        values: dict[str, Any],
        deadline_ms: float | None = None,
        tenant: str = "default",
    ) -> Response:
        return self.request(Request(
            op="write", table=table, index=index, key=key, values=values,
            deadline_ms=deadline_ms, tenant=tenant,
        ))

    def delete(
        self,
        table: str,
        index: str,
        key: tuple,
        deadline_ms: float | None = None,
        tenant: str = "default",
    ) -> Response:
        return self.request(Request(
            op="delete", table=table, index=index, key=key,
            deadline_ms=deadline_ms, tenant=tenant,
        ))

    def export(self, table: str, deadline_ms: float | None = None) -> Response:
        return self.request(Request(
            op="export", table=table, deadline_ms=deadline_ms,
        ))


class AsyncServiceClient:
    """Asyncio client over one connection; one request in flight at a time
    per instance (the load generator opens a pool of these)."""

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "AsyncServiceClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        return client

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
            self._writer = None
            self._reader = None

    async def request(self, request: Request) -> Response:
        assert self._reader is not None and self._writer is not None
        self._writer.write(request.encode())
        await self._writer.drain()
        response = await protocol.read_response(self._reader)
        if response is None:
            raise ServiceError("server closed the connection")
        return response
