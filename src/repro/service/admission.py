"""Admission control: bounded concurrency, bounded queueing, explicit sheds.

The robustness contract of the front door is that *overload produces fast
rejections, not collapse*: every resource a client can consume is bounded,
and crossing a bound raises :class:`~repro.errors.ServiceOverload` with a
machine-readable reason that travels to the client as the explicit
too-busy response.  Three bounds:

- **connections** — checked at accept; over the limit the server writes
  one error frame and closes instead of keeping the socket,
- **in-flight transactions** — a slot pool sized to the executor; when
  full, requests wait in a *bounded* FIFO queue (the "accept queue"), and
  a full queue sheds immediately,
- **per-tenant rate** — a token bucket per tenant, so one aggressive
  tenant exhausts its own budget, not the server.

Queued requests respect their deadline: a waiter whose deadline expires
before a slot frees is shed with ``deadline`` having held no resources.
Every admission decision is counted (``service.admitted_total``,
``service.shed_total{reason=...}``, per-tenant ``service.requests_total``)
and journaled to the flight recorder, so a shed spike is attributable
after the fact.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Callable

from repro.errors import ServiceOverload
from repro.obs.registry import MetricRegistry

if TYPE_CHECKING:
    from repro.obs.recorder import Recorder
    from repro.obs.slo import RequestLifecycle


class TokenBucket:
    """The standard token bucket: ``rate`` tokens/sec, ``burst`` capacity.

    ``clock`` is injectable so tests drive refill deterministically.
    Single-threaded by design — the admission controller calls it only
    from the event loop.
    """

    __slots__ = ("rate", "burst", "tokens", "_last", "clock")

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self.tokens = self.burst
        self.clock = clock
        self._last = clock()

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def seconds_until(self, n: float = 1.0) -> float:
        """How long until ``n`` tokens will have refilled (retry hint)."""
        deficit = n - self.tokens
        return max(0.0, deficit / self.rate)


class AdmissionTicket:
    """One admitted request's slot; release exactly once."""

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release_slot()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Bounded connection/in-flight admission with per-tenant rate limits.

    All async methods must run on one event loop (the server's); the
    bookkeeping is deliberately lock-free because of that.
    """

    def __init__(
        self,
        max_inflight: int = 32,
        max_queue: int = 64,
        max_connections: int = 256,
        tenant_rate: float | None = None,
        tenant_burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricRegistry | None = None,
        recorder: "Recorder | None" = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.max_connections = max_connections
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.clock = clock
        self.recorder = recorder
        self._inflight = 0
        self._connections = 0
        self._waiters: deque[asyncio.Future] = deque()
        self._buckets: dict[str, TokenBucket] = {}
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._m_admitted = reg.counter(
            "service.admitted_total", "requests admitted past the front door"
        )
        self._m_shed = {
            reason: reg.counter(
                "service.shed_total",
                "requests shed with an explicit too-busy response",
                labels={"reason": reason},
            )
            for reason in (
                "too_busy", "queue_timeout", "tenant_rate",
                "connections", "deadline",
            )
        }
        self._m_queue_wait = reg.histogram(
            "service.queue_wait_seconds", "time admitted requests spent queued"
        )
        reg.gauge(
            "service.inflight",
            "requests holding an execution slot",
            callback=lambda: self._inflight,
        )
        reg.gauge(
            "service.queue_depth",
            "requests waiting for an execution slot",
            callback=lambda: len(self._waiters),
        )
        reg.gauge(
            "service.connections",
            "open client connections",
            callback=lambda: self._connections,
        )

    # ------------------------------------------------------------------ #
    # connection accounting                                               #
    # ------------------------------------------------------------------ #

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    @property
    def connections(self) -> int:
        return self._connections

    def try_connection(self) -> bool:
        """Claim a connection slot at accept time; ``False`` = shed."""
        if self._connections >= self.max_connections:
            self._shed("connections", tenant=None)
            return False
        self._connections += 1
        return True

    def release_connection(self) -> None:
        self._connections = max(0, self._connections - 1)

    # ------------------------------------------------------------------ #
    # request admission                                                   #
    # ------------------------------------------------------------------ #

    async def admit(
        self,
        tenant: str = "default",
        deadline: float | None = None,
        lifecycle: "RequestLifecycle | None" = None,
    ) -> AdmissionTicket:
        """Admit one request or raise :class:`ServiceOverload`.

        ``deadline`` is an absolute ``clock()`` timestamp.  Order of the
        checks matters: an already-dead request must not consume rate
        tokens, and a rate-limited one must not occupy queue space.

        ``lifecycle`` (when given) has any slot-queue wait stamped as its
        ``admission.queue_wait`` phase — admission runs on the event loop,
        not the request's executor thread, so the phase is stamped
        explicitly rather than through the thread-local helper.
        """
        if deadline is not None and self.clock() >= deadline:
            raise self._shed("deadline", tenant)
        if self.tenant_rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.tenant_rate, self.tenant_burst, self.clock
                )
            if not bucket.try_take():
                raise self._shed(
                    "tenant_rate", tenant,
                    retry_after=bucket.seconds_until(),
                )
        if self._inflight < self.max_inflight:
            self._inflight += 1
        else:
            if len(self._waiters) >= self.max_queue:
                raise self._shed("too_busy", tenant)
            waiter: asyncio.Future = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            queued_at = self.clock()
            wait_began = perf_counter()
            try:
                timeout = (
                    None if deadline is None else max(0.0, deadline - queued_at)
                )
                try:
                    await asyncio.wait_for(waiter, timeout)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    # wait_for cancelled the future; a cancelled entry is
                    # skipped by _release_slot, and one may already have been
                    # popped for us — if the slot was handed over in the race,
                    # give it back.
                    if waiter.cancelled() or not waiter.done():
                        try:
                            self._waiters.remove(waiter)
                        except ValueError:
                            pass
                        reason = (
                            "deadline" if timeout is not None else "queue_timeout"
                        )
                        raise self._shed(reason, tenant) from None
                    # The slot arrived between timeout and cleanup: keep it.
            finally:
                if lifecycle is not None:
                    lifecycle.stamp(
                        "admission.queue_wait", wait_began, perf_counter()
                    )
            self._m_queue_wait.observe(self.clock() - queued_at)
        self._m_admitted.inc()
        self.registry.counter(
            "service.requests_total",
            "admitted requests per tenant",
            labels={"tenant": tenant},
        ).inc()
        return AdmissionTicket(self)

    def _release_slot(self) -> None:
        # Hand the slot to the oldest live waiter (FIFO): the in-flight
        # count is unchanged because the slot never becomes free.
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return
        self._inflight = max(0, self._inflight - 1)

    def _shed(
        self, reason: str, tenant: str | None, retry_after: float | None = None
    ) -> ServiceOverload:
        self._m_shed[reason].inc()
        if tenant is not None:
            self.registry.counter(
                "service.shed_by_tenant_total",
                "sheds per tenant",
                labels={"tenant": tenant, "reason": reason},
            ).inc()
        if self.recorder is not None:
            self.recorder.record(
                "service.shed", reason=reason, tenant=tenant,
                inflight=self._inflight, queued=len(self._waiters),
            )
        exc = ServiceOverload(reason)
        if retry_after is not None:
            exc.retry_after = retry_after  # type: ignore[attr-defined]
        return exc

    def unregister_metrics(self) -> None:
        """Drop this controller's callback gauges from the registry
        (idempotent) — they capture ``self`` and must not outlive the
        server that owns the controller."""
        for name in (
            "service.inflight", "service.queue_depth", "service.connections",
        ):
            self.registry.unregister(name)
