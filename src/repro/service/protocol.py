"""The front-door wire protocol: framed requests over the existing codecs.

One connection carries a sequence of request/response exchanges.  Every
message is a frame — a one-byte kind tag plus a little-endian ``uint32``
payload length — exactly the envelope shape of the postgres v3 protocol
this repo's row codec already mimics:

``Q`` (request)
    A JSON document naming the operation (see :class:`Request`): point
    reads and scans, simple write transactions (upsert/delete through an
    index), whole-table Arrow-IPC export, and ping.

``R`` (result header)
    A JSON document: ``{"status": "ok", "rows": N, "format": ..., ...}``.
    When ``rows > 0`` it is followed by exactly one payload frame.

``D`` (row payload)
    A stream of DataRow messages as produced by
    :func:`repro.export.postgres_wire.encode_rows` — the same row codec
    (and the same per-value text cost) as the Figure 15 baseline.

``A`` (Arrow payload)
    An Arrow IPC stream (``repro.arrowfmt.ipc``) — the columnar export
    path; frozen blocks ship through the zero-copy Flight serializer.

``E`` (error)
    A JSON document ``{"status": "error", "code": ..., "message": ...}``.
    Codes in :data:`SHED_CODES` are the explicit 503/too-busy family: the
    server rejected the request *fast* instead of queuing it unboundedly,
    and the client may retry after ``retry_after_ms``.

The deadline rides in the request (``deadline_ms``, relative — wire
clients and servers share no clock) and is enforced at admission, inside
the transaction retry loop, and on response write-out.

Every response envelope — ok headers and error bodies alike — carries the
server-assigned ``request_id`` and, when tracing is on, the hex
``trace_id`` of the request's root span.  Those are the handles the
observability endpoints resolve: ``/request/<id>`` returns the request's
critical-path breakdown, ``/events?request=<id>`` its journal slice, and
``/trace?trace=<id>`` its Chrome-trace waterfall.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SerializationError

_HEADER = struct.Struct("<cI")

#: Refuse to buffer absurd frames (a corrupt length prefix must not OOM
#: the server); Arrow exports of demo-sized tables stay far below this.
MAX_FRAME_BYTES = 64 * 1024 * 1024

KIND_REQUEST = b"Q"
KIND_RESULT = b"R"
KIND_ROWS = b"D"
KIND_ARROW = b"A"
KIND_ERROR = b"E"

_KNOWN_KINDS = (KIND_REQUEST, KIND_RESULT, KIND_ROWS, KIND_ARROW, KIND_ERROR)

#: The explicit-rejection family (the wire analogue of HTTP 503/429):
#: every code the admission controller, health gate, or drain path can
#: shed with.  Anything else under ``E`` is a request-level failure.
SHED_CODES = frozenset(
    {
        "too_busy",        # in-flight limit hit and the bounded queue is full
        "queue_timeout",   # queued, but a slot never freed inside the deadline
        "tenant_rate",     # per-tenant token bucket empty
        "connections",     # connection limit reached at accept
        "degraded",        # health gate: WAL backlog / degraded read-only mode
        "draining",        # SIGTERM received; server no longer admits work
        "deadline",        # the request's deadline expired before completion
    }
)

ERROR_CODES = SHED_CODES | {
    "bad_request",   # malformed frame or unknown operation/table/index
    "aborted",       # conflict aborts persisted across the retry budget
    "unknown",       # commit outcome unknown (durability wait timed out)
    "internal",      # unexpected server-side failure (counted, never silent)
}

OPS = ("ping", "read", "scan", "write", "delete", "export")

#: Ops the health gate applies to (reads keep flowing while writes shed).
WRITE_OPS = frozenset({"write", "delete"})


@dataclass(frozen=True)
class Request:
    """One decoded front-door request."""

    op: str
    table: str | None = None
    index: str | None = None
    key: tuple | None = None
    values: dict[str, Any] = field(default_factory=dict)
    columns: list[str] | None = None
    limit: int | None = None
    tenant: str = "default"
    deadline_ms: float | None = None

    def encode(self) -> bytes:
        body: dict[str, Any] = {"op": self.op}
        if self.table is not None:
            body["table"] = self.table
        if self.index is not None:
            body["index"] = self.index
        if self.key is not None:
            body["key"] = list(self.key)
        if self.values:
            body["values"] = self.values
        if self.columns is not None:
            body["columns"] = self.columns
        if self.limit is not None:
            body["limit"] = self.limit
        if self.tenant != "default":
            body["tenant"] = self.tenant
        if self.deadline_ms is not None:
            body["deadline_ms"] = self.deadline_ms
        return encode_frame(KIND_REQUEST, json.dumps(body).encode("utf-8"))

    @staticmethod
    def decode(payload: bytes) -> "Request":
        try:
            body = json.loads(payload)
        except ValueError as exc:
            raise SerializationError(f"request is not JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise SerializationError("request must be a JSON object")
        op = body.get("op")
        if op not in OPS:
            raise SerializationError(f"unknown operation {op!r}")
        key = body.get("key")
        if key is not None:
            if not isinstance(key, list):
                raise SerializationError("'key' must be a JSON array")
            key = tuple(key)
        values = body.get("values") or {}
        if not isinstance(values, dict):
            raise SerializationError("'values' must be a JSON object")
        columns = body.get("columns")
        if columns is not None and not isinstance(columns, list):
            raise SerializationError("'columns' must be a JSON array")
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                raise SerializationError("'deadline_ms' must be a positive number")
        limit = body.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise SerializationError("'limit' must be a non-negative integer")
        return Request(
            op=op,
            table=body.get("table"),
            index=body.get("index"),
            key=key,
            values=values,
            columns=columns,
            limit=limit,
            tenant=str(body.get("tenant", "default")),
            deadline_ms=deadline_ms,
        )


@dataclass
class Response:
    """One decoded response: a header plus at most one payload frame."""

    status: str                      # "ok" | "error"
    code: str | None = None          # error code (see ERROR_CODES)
    message: str | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    payload_kind: bytes | None = None
    payload: bytes = b""
    retry_after_ms: float | None = None
    request_id: int | None = None    # server-assigned; resolves /request/<id>
    trace_id: str | None = None      # hex root-span id; resolves /trace?trace=

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def shed(self) -> bool:
        """Whether this is an explicit overload rejection (retryable)."""
        return self.status == "error" and self.code in SHED_CODES

    def rows(self) -> list[tuple]:
        """Decode a ``D`` payload through the postgres-wire row codec."""
        from repro.export import postgres_wire

        if self.payload_kind != KIND_ROWS:
            return []
        return postgres_wire.decode_rows(self.payload)

    def arrow_table(self):
        """Decode an ``A`` payload into an Arrow table."""
        from repro.arrowfmt import ipc

        if self.payload_kind != KIND_ARROW:
            raise SerializationError("response carries no Arrow payload")
        return ipc.read_table(self.payload)


def encode_frame(kind: bytes, payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME_BYTES:
        raise SerializationError(f"frame of {len(payload)} bytes exceeds limit")
    return _HEADER.pack(kind, len(payload)) + payload


def encode_result(meta: dict[str, Any]) -> bytes:
    body = {"status": "ok", **meta}
    return encode_frame(KIND_RESULT, json.dumps(body).encode("utf-8"))


def encode_error(
    code: str,
    message: str,
    retry_after_ms: float | None = None,
    request_id: int | None = None,
    trace_id: str | None = None,
) -> bytes:
    body: dict[str, Any] = {"status": "error", "code": code, "message": message}
    if retry_after_ms is not None:
        body["retry_after_ms"] = retry_after_ms
    if request_id is not None:
        body["request_id"] = request_id
    if trace_id is not None:
        body["trace_id"] = trace_id
    return encode_frame(KIND_ERROR, json.dumps(body).encode("utf-8"))


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[bytes, bytes] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise SerializationError("connection closed mid-frame-header")
        header += more
    kind, length = _HEADER.unpack(header)
    if kind not in _KNOWN_KINDS:
        raise SerializationError(f"unknown frame kind {kind!r}")
    if length > MAX_FRAME_BYTES:
        raise SerializationError(f"frame of {length} bytes exceeds limit")
    payload = await reader.readexactly(length) if length else b""
    return kind, payload


async def read_response(reader: asyncio.StreamReader) -> Response | None:
    """Read one full response (header + optional payload frame)."""
    frame = await read_frame(reader)
    if frame is None:
        return None
    kind, payload = frame
    try:
        body = json.loads(payload)
    except ValueError as exc:
        raise SerializationError(f"response header is not JSON: {exc}") from exc
    if kind == KIND_ERROR:
        return Response(
            status="error",
            code=body.get("code", "internal"),
            message=body.get("message"),
            retry_after_ms=body.get("retry_after_ms"),
            request_id=body.get("request_id"),
            trace_id=body.get("trace_id"),
        )
    if kind != KIND_RESULT:
        raise SerializationError(f"expected result frame, got {kind!r}")
    meta = {k: v for k, v in body.items() if k != "status"}
    response = Response(
        status="ok",
        meta=meta,
        request_id=meta.get("request_id"),
        trace_id=meta.get("trace_id"),
    )
    if meta.get("rows", 0):
        payload_frame = await read_frame(reader)
        if payload_frame is None:
            raise SerializationError("connection closed before payload frame")
        response.payload_kind, response.payload = payload_frame
    return response
