"""``python -m repro.service`` — the front door from the command line.

Three subcommands:

``serve``
    Boot an engine (``--shards N`` for a sharded cluster) with a
    YCSB-style ``usertable``, start the transactional server, and run
    until SIGTERM/SIGINT — on which it *drains*: stops accepting, sheds
    new requests with ``draining``, waits out in-flight work up to
    ``--drain-timeout``, flushes the log, exits.  ``--obs-port`` also
    serves the monitoring endpoints (``/healthz`` mirrors the same
    ``db.health()`` the write gate watches).

``loadgen``
    The open-loop (constant-arrival-rate) load generator against a
    running server: offered rate is fixed, admitted-request p50/p99 and
    the shed rate are reported.  See :mod:`repro.service.loadgen`.

``smoke``
    The CI path: boot a 1-shard then a 2-shard server in-process with a
    small admission limit, preload keys, offer ~2x the admission limit,
    assert nonzero sheds + zero unhandled server exceptions + bounded
    p99, then SIGTERM-style drain mid-load and assert every acknowledged
    commit survived.  Exits non-zero on any failed check.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time


def _build_db(shards: int, logging_enabled: bool = True):
    from repro import ColumnSpec, Database
    from repro.arrowfmt.datatypes import INT64, UTF8

    columns = [ColumnSpec("key", INT64), ColumnSpec("field0", UTF8)]
    if shards > 1:
        from repro.cluster import ShardedDatabase

        db = ShardedDatabase(n_shards=shards, logging_enabled=logging_enabled)
        db.create_table("usertable", columns, shard_key="key")
    else:
        db = Database(logging_enabled=logging_enabled)
        db.create_table("usertable", columns)
    db.create_index("usertable", "by_key", ["key"])
    return db


def _preload(db, keys: int) -> None:
    info = db.catalog.get("usertable")
    with db.transaction() as txn:
        for key in range(keys):
            info.table.insert(txn, {0: key, 1: f"v{key}"})


def _serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service.server import ServerThread, ServiceConfig

    db = _build_db(args.shards)
    _preload(db, args.keys)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_connections=args.max_connections,
        tenant_rate=args.tenant_rate,
        drain_timeout=args.drain_timeout,
    )
    server = ServerThread(db, config).start()
    if args.obs_port is not None:
        obs = db.serve_obs(port=args.obs_port)
        print(f"monitoring at {obs.url}")
    print(
        f"serving usertable ({args.keys} keys, {args.shards} shard(s)) "
        f"on {args.host}:{server.port}"
    )
    done = threading.Event()

    def on_signal(signum, frame) -> None:
        print(f"signal {signum}: draining ...")
        done.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    done.wait()
    server.stop(timeout=args.drain_timeout + 5.0)
    db.close()
    print("drained clean")
    return 0


def _loadgen(args: argparse.Namespace) -> int:
    from repro.service.loadgen import LoadgenConfig, run_loadgen_sync

    result = run_loadgen_sync(
        LoadgenConfig(
            host=args.host,
            port=args.port,
            rate=args.rate,
            duration=args.duration,
            connections=args.connections,
            read_fraction=args.read_fraction,
            keys=args.keys,
            deadline_ms=args.deadline_ms,
            tenant=args.tenant,
        )
    )
    print(json.dumps(result.summary(), indent=2))
    return 0


def _check(ok: bool, label: str, failures: list[str]) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        failures.append(label)


def _smoke_one(shards: int, failures: list[str]) -> None:
    from repro.service.client import ServiceClient
    from repro.service.loadgen import LoadgenConfig, run_loadgen_sync
    from repro.service.server import ServerThread, ServiceConfig

    print(f"\nsmoke phase: {shards} shard(s) ...")
    db = _build_db(shards)
    keys = 200
    _preload(db, keys)
    # The admission limit for this phase is the tenant rate: 200 req/s.
    # The loadgen below offers 400 req/s — 2x the limit — so roughly half
    # the offered load must come back as explicit sheds.
    config = ServiceConfig(
        max_inflight=2, max_queue=4, health_interval=0.02,
        tenant_rate=200.0, tenant_burst=40.0,
    )
    server = ServerThread(db, config).start()

    with ServiceClient(port=server.port) as client:
        pong = client.ping()
        _check(pong.ok, "ping answers", failures)
        row = client.read("usertable", "by_key", (3,))
        _check(
            row.ok and row.meta["rows"] == 1 and row.rows()[0][1] == "v3",
            "point read through the row codec",
            failures,
        )
        wrote = client.write(
            "usertable", "by_key", (3,), {"key": 3, "field0": "updated"}
        )
        _check(
            wrote.ok and wrote.meta["durable"],
            "write acknowledged only once durable",
            failures,
        )
        exported = client.export("usertable")
        _check(
            exported.ok and exported.arrow_table().num_rows == keys,
            f"Arrow export round-trips {keys} rows",
            failures,
        )

    # Offer 2x the 200 req/s admission (tenant-rate) limit.
    result = run_loadgen_sync(
        LoadgenConfig(
            port=server.port, rate=400.0, duration=1.5,
            connections=16, keys=keys, deadline_ms=250.0, seed=7,
        )
    )
    print(f"  loadgen: {result.summary()}")
    _check(result.ok > 0, "overload run still admits work", failures)
    _check(result.shed > 0, "overload run sheds explicitly", failures)
    _check(
        result.errors == 0,
        "no protocol/transport errors under overload",
        failures,
    )
    _check(
        result.p99_ms < 5000.0,
        f"admitted p99 bounded ({result.p99_ms:.1f} ms)",
        failures,
    )
    assert server.server is not None
    _check(
        server.server.unhandled_exceptions == 0,
        "zero unhandled server exceptions",
        failures,
    )

    summary = result.summary()
    _check(
        result.shed == 0 or "shed_p99_ms" in summary,
        "loadgen reports shed percentiles alongside served ones",
        failures,
    )
    traces = summary.get("percentile_traces") or {}
    print(f"  percentile traces: {traces}")
    _check(
        bool(traces.get("p99")),
        "a trace id stands behind the served p99",
        failures,
    )

    # Scrape the SLO and exemplar surface over live HTTP: the loadgen
    # just generated real traffic, so /slo must account for it and the
    # OpenMetrics exposition must carry parseable exemplars.
    import re
    import urllib.request

    obs_server = db.serve_obs()
    with urllib.request.urlopen(obs_server.url + "/slo", timeout=5) as resp:
        slo = json.loads(resp.read().decode())
    tenant = slo["tenants"].get("default")
    _check(
        tenant is not None and tenant["windows"]["60s"]["total"] > 0,
        "/slo tracks the loadgen tenant",
        failures,
    )
    _check(
        tenant is not None and 0.0 <= tenant["error_budget_remaining"] <= 1.0,
        "error budget stays a fraction",
        failures,
    )
    with urllib.request.urlopen(
        obs_server.url + "/metrics?format=openmetrics", timeout=5
    ) as resp:
        om = resp.read().decode()
    _check(
        om.rstrip().endswith("# EOF"),
        "OpenMetrics exposition terminates with # EOF",
        failures,
    )
    exemplar_re = re.compile(
        r'_bucket\{[^}]*\} \S+ # \{trace_id="[0-9a-f]+"\} \S+ \S+$'
    )
    exemplar_lines = [line for line in om.splitlines() if " # {" in line]
    _check(
        bool(exemplar_lines)
        and all(exemplar_re.search(line) for line in exemplar_lines),
        f"exemplar lines parse ({len(exemplar_lines)} found)",
        failures,
    )

    # SIGTERM-style drain under live load: acked commits must survive.
    acked: list[int] = []
    stop = threading.Event()

    def writer() -> None:
        with ServiceClient(port=server.port) as client:
            key = 10_000
            while not stop.is_set():
                try:
                    response = client.write(
                        "usertable", "by_key", (key,),
                        {"key": key, "field0": f"drain-{key}"},
                    )
                except Exception:
                    return  # connection torn by the drain: expected
                if response.ok:
                    acked.append(key)
                elif response.code == "draining":
                    return
                key += 1

    thread = threading.Thread(target=writer, name="drain-writer")
    thread.start()
    time.sleep(0.3)
    server.stop(timeout=15.0)
    stop.set()
    thread.join(timeout=5.0)
    _check(len(acked) > 0, f"writes acked before drain ({len(acked)})", failures)
    info = db.catalog.get("usertable")
    with db.transaction() as txn:
        index = db.catalog.index("usertable", "by_key")
        missing = [
            key for key in acked if not index.lookup(txn, (key,), [0])
        ]
    _check(
        not missing,
        f"zero acknowledged commits lost across drain ({len(acked)} acked)",
        failures,
    )
    db.close()


def _smoke(args: argparse.Namespace) -> int:
    failures: list[str] = []
    _smoke_one(1, failures)
    _smoke_one(2, failures)
    if failures:
        print(f"\nsmoke FAILED: {failures}")
        return 1
    print("\nsmoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service", description="the transactional front door"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve usertable until SIGTERM")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8650)
    serve.add_argument("--shards", type=int, default=1)
    serve.add_argument("--keys", type=int, default=1000)
    serve.add_argument("--max-inflight", type=int, default=8)
    serve.add_argument("--max-queue", type=int, default=16)
    serve.add_argument("--max-connections", type=int, default=256)
    serve.add_argument("--tenant-rate", type=float, default=None)
    serve.add_argument("--drain-timeout", type=float, default=10.0)
    serve.add_argument("--obs-port", type=int, default=None)

    loadgen = sub.add_parser("loadgen", help="open-loop load against a server")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8650)
    loadgen.add_argument("--rate", type=float, default=200.0)
    loadgen.add_argument("--duration", type=float, default=2.0)
    loadgen.add_argument("--connections", type=int, default=16)
    loadgen.add_argument("--read-fraction", type=float, default=0.5)
    loadgen.add_argument("--keys", type=int, default=1000)
    loadgen.add_argument("--deadline-ms", type=float, default=1000.0)
    loadgen.add_argument("--tenant", default="default")

    sub.add_parser("smoke", help="CI smoke: overload + drain on 1 and 2 shards")

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command == "loadgen":
        return _loadgen(args)
    return _smoke(args)


if __name__ == "__main__":
    sys.exit(main())
