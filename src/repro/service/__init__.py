"""The transactional network service (the repo's robust "front door").

Everything upstream of the engine that a client on a socket touches:

- :mod:`repro.service.protocol` — the framed wire protocol (postgres-wire
  rows, Arrow-IPC exports, explicit shed/error codes),
- :mod:`repro.service.admission` — bounded connections, bounded in-flight
  slots with a bounded FIFO accept queue, per-tenant token buckets,
- :mod:`repro.service.gate` — the hysteretic write gate keyed off
  ``db.health()`` (WAL backlog / degraded mode ⇒ writes shed, reads flow),
- :mod:`repro.service.server` — the asyncio server tying it together with
  deadline propagation and graceful SIGTERM drain,
- :mod:`repro.service.client` — sync and async clients,
- :mod:`repro.service.loadgen` — the YCSB-style open-loop load generator.

CLI: ``python -m repro.service serve|loadgen|smoke``.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.gate import HealthGate
from repro.service.loadgen import LoadgenConfig, LoadgenResult, run_loadgen_sync
from repro.service.protocol import Request, Response
from repro.service.server import ServerThread, ServiceConfig, TransactionalServer

__all__ = [
    "AdmissionController",
    "AsyncServiceClient",
    "HealthGate",
    "LoadgenConfig",
    "LoadgenResult",
    "Request",
    "Response",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "TokenBucket",
    "TransactionalServer",
    "run_loadgen_sync",
]
