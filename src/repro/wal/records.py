"""On-disk log record encoding.

The serialized form of one transaction is::

    'TXN<'  commit_ts:u64  op_count:u32
    per op: op_tag:u8  table_len:u16 table:utf8  slot:u64  value_count:u16
            per value: column_id:u16  type_tag:u8  payload
    '>TXN'

Values are self-describing (type tags) so recovery needs no catalog access
to parse the stream.  Read-only transactions produce no bytes at all: their
commit records exist only for the in-memory callback protocol.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.errors import RecoveryError
from repro.storage.projection import ProjectedRow
from repro.storage.tuple_slot import TupleSlot
from repro.txn.context import TransactionContext
from repro.txn.redo import RedoRecord

_TXN_BEGIN = b"TXN<"
_TXN_END = b">TXN"

_OP_TAGS = {RedoRecord.INSERT: 0, RedoRecord.UPDATE: 1, RedoRecord.DELETE: 2}
_OP_NAMES = {v: k for k, v in _OP_TAGS.items()}

_T_NULL, _T_INT, _T_FLOAT, _T_BOOL, _T_BYTES, _T_STR = range(6)


def _normalize(value: Any) -> Any:
    """Fold numpy scalars into Python primitives before tagging."""
    import numpy as np

    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


@dataclass
class LoggedOperation:
    """One decoded operation from the log."""

    op: str
    table_name: str
    slot: TupleSlot
    values: dict[int, Any] = field(default_factory=dict)


@dataclass
class LoggedTransaction:
    """One decoded committed transaction."""

    commit_ts: int
    operations: list[LoggedOperation] = field(default_factory=list)


def _encode_value(out: io.BytesIO, column_id: int, value: Any) -> None:
    value = _normalize(value)
    out.write(struct.pack("<H", column_id))
    if value is None:
        out.write(struct.pack("<B", _T_NULL))
    elif isinstance(value, bool):
        out.write(struct.pack("<B?", _T_BOOL, value))
    elif isinstance(value, int):
        out.write(struct.pack("<Bq", _T_INT, value))
    elif isinstance(value, float):
        out.write(struct.pack("<Bd", _T_FLOAT, value))
    elif isinstance(value, bytes):
        out.write(struct.pack("<BI", _T_BYTES, len(value)))
        out.write(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.write(struct.pack("<BI", _T_STR, len(raw)))
        out.write(raw)
    else:
        raise RecoveryError(f"cannot log value of type {type(value).__name__}")


def _decode_value(stream: io.BytesIO) -> tuple[int, Any]:
    (column_id,) = struct.unpack("<H", _read(stream, 2))
    (tag,) = struct.unpack("<B", _read(stream, 1))
    if tag == _T_NULL:
        return column_id, None
    if tag == _T_BOOL:
        return column_id, struct.unpack("<?", _read(stream, 1))[0]
    if tag == _T_INT:
        return column_id, struct.unpack("<q", _read(stream, 8))[0]
    if tag == _T_FLOAT:
        return column_id, struct.unpack("<d", _read(stream, 8))[0]
    if tag in (_T_BYTES, _T_STR):
        (length,) = struct.unpack("<I", _read(stream, 4))
        raw = _read(stream, length)
        return column_id, raw.decode("utf-8") if tag == _T_STR else raw
    raise RecoveryError(f"unknown value tag {tag}")


def encode_transaction(txn: TransactionContext) -> bytes:
    """Serialize a committed transaction's redo stream.

    Returns ``b''`` for read-only transactions — the log manager skips
    writing their commit records (Section 3.4).
    """
    if txn.commit_ts is None:
        raise RecoveryError("cannot encode an uncommitted transaction")
    if len(txn.redo_buffer) == 0:
        return b""
    out = io.BytesIO()
    out.write(_TXN_BEGIN)
    out.write(struct.pack("<QI", txn.commit_ts, len(txn.redo_buffer)))
    for record in txn.redo_buffer:
        _encode_record(out, record)
    out.write(_TXN_END)
    return out.getvalue()


def _encode_record(out: io.BytesIO, record: RedoRecord) -> None:
    table_raw = record.table_name.encode("utf-8")
    out.write(struct.pack("<BH", _OP_TAGS[record.op], len(table_raw)))
    out.write(table_raw)
    out.write(struct.pack("<Q", record.slot.pack()))
    values = list(record.after.items()) if record.after is not None else []
    out.write(struct.pack("<H", len(values)))
    for column_id, value in values:
        _encode_value(out, column_id, value)


def decode_stream(
    raw: bytes, tolerate_torn_tail: bool = False
) -> list[LoggedTransaction]:
    """Parse a log produced by concatenating :func:`encode_transaction`
    outputs; transactions come back in commit (write) order.

    With ``tolerate_torn_tail=True``, a truncated *final* transaction —
    what a crash mid-flush leaves behind — is silently dropped: its commit
    record never fully reached the device, so it never committed.  Damage
    anywhere before the tail is still an error.
    """
    stream = io.BytesIO(raw)
    transactions: list[LoggedTransaction] = []
    while True:
        marker = stream.read(4)
        if not marker:
            return transactions
        try:
            if marker != _TXN_BEGIN:
                raise RecoveryError(f"bad transaction marker {marker!r}")
            commit_ts, op_count = struct.unpack("<QI", _read(stream, 12))
            txn = LoggedTransaction(commit_ts)
            for _ in range(op_count):
                tag, table_len = struct.unpack("<BH", _read(stream, 3))
                if tag not in _OP_NAMES:
                    raise RecoveryError(f"unknown operation tag {tag}")
                table_name = _read(stream, table_len).decode("utf-8")
                (packed_slot,) = struct.unpack("<Q", _read(stream, 8))
                (value_count,) = struct.unpack("<H", _read(stream, 2))
                values = dict(_decode_value(stream) for _ in range(value_count))
                txn.operations.append(
                    LoggedOperation(
                        _OP_NAMES[tag], table_name, TupleSlot.unpack(packed_slot), values
                    )
                )
            if _read(stream, 4) != _TXN_END:
                raise RecoveryError("missing transaction end marker")
        except RecoveryError:
            if tolerate_torn_tail and stream.read(1) == b"":
                # The failure consumed the rest of the stream: a torn tail.
                return transactions
            raise
        transactions.append(txn)


def redo_from_row(op: str, table_name: str, slot: TupleSlot, row: ProjectedRow | None) -> RedoRecord:
    """Convenience constructor used by the engine's write paths."""
    return RedoRecord(table_name, slot, op, row)


def _read(stream: io.BytesIO, n: int) -> bytes:
    raw = stream.read(n)
    if len(raw) != n:
        raise RecoveryError("truncated log stream")
    return raw
