"""On-disk log record encoding.

The serialized form of one transaction is::

    'TXN<'  commit_ts:u64  op_count:u32
    per op: op_tag:u8  table_len:u16 table:utf8  slot:u64  value_count:u16
            per value: column_id:u16  type_tag:u8  payload
    '>TXN'

Values are self-describing (type tags) so recovery needs no catalog access
to parse the stream.  Read-only transactions produce no bytes at all: their
commit records exist only for the in-memory callback protocol.

Two-phase commit (see :mod:`repro.cluster`) adds two more record kinds:

    'PRP<'  gid_len:u16 gid:utf8  op_count:u32  [ops as above]  '>PRP'
    'DEC<'  gid_len:u16 gid:utf8  decision:u8  commit_ts:u64    '>DEC'

A ``PRP`` record is a participant's durable yes-vote: the full redo stream
of a prepared-but-undecided transaction, written (and fsynced) before the
participant acks prepare.  A ``DEC`` record resolves it — decision 1 is
commit (with the participant's commit timestamp), 0 is abort.  The same
``DEC`` framing doubles as the coordinator log's decision records.
Recovery follows presumed-abort: a prepare without a commit decision is
*in doubt* and resolves to abort unless the coordinator log says commit.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.errors import RecoveryError
from repro.storage.projection import ProjectedRow
from repro.storage.tuple_slot import TupleSlot
from repro.txn.context import TransactionContext
from repro.txn.redo import RedoRecord

_TXN_BEGIN = b"TXN<"
_TXN_END = b">TXN"

_PRP_BEGIN = b"PRP<"
_PRP_END = b">PRP"

_DEC_BEGIN = b"DEC<"
_DEC_END = b">DEC"

DECISION_ABORT = 0
DECISION_COMMIT = 1

_OP_TAGS = {RedoRecord.INSERT: 0, RedoRecord.UPDATE: 1, RedoRecord.DELETE: 2}
_OP_NAMES = {v: k for k, v in _OP_TAGS.items()}

_T_NULL, _T_INT, _T_FLOAT, _T_BOOL, _T_BYTES, _T_STR = range(6)


def _normalize(value: Any) -> Any:
    """Fold numpy scalars into Python primitives before tagging."""
    import numpy as np

    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


@dataclass
class LoggedOperation:
    """One decoded operation from the log."""

    op: str
    table_name: str
    slot: TupleSlot
    values: dict[int, Any] = field(default_factory=dict)


@dataclass
class LoggedTransaction:
    """One decoded committed transaction."""

    commit_ts: int
    operations: list[LoggedOperation] = field(default_factory=list)


@dataclass
class LoggedPrepare:
    """A decoded PREPARE record: a durable yes-vote awaiting a decision."""

    gid: str
    operations: list[LoggedOperation] = field(default_factory=list)


@dataclass
class LoggedDecision:
    """A decoded DECISION record resolving a prepared transaction."""

    gid: str
    decision: int
    commit_ts: int

    @property
    def is_commit(self) -> bool:
        return self.decision == DECISION_COMMIT


class LogMarker:
    """A pre-encoded entry queued on the log alongside transactions.

    The log manager derives a committed transaction's bytes itself via
    :func:`encode_transaction`.  Two-phase commit needs to append records
    that are *not* commit records — a participant's ``PRP`` yes-vote, a
    ``DEC`` resolution — so those are wrapped in a marker the flush path
    treats uniformly: write ``payload``, then ``signal_durable()``.  When
    ``txn`` is given, its durability callbacks fire once the marker's
    bytes are fsynced (used to tie a commit decision's durability back to
    the distributed transaction that produced it).
    """

    __slots__ = ("payload", "is_read_only", "_txn", "_durable")

    def __init__(self, payload: bytes, txn: TransactionContext | None = None):
        self.payload = payload
        # An empty payload is skipped by the flush path, mirroring
        # read-only transactions.
        self.is_read_only = len(payload) == 0
        self._txn = txn
        self._durable = False

    @property
    def durable(self) -> bool:
        return self._durable

    def signal_durable(self) -> None:
        self._durable = True
        if self._txn is not None:
            self._txn.signal_durable()


def _encode_value(out: io.BytesIO, column_id: int, value: Any) -> None:
    value = _normalize(value)
    out.write(struct.pack("<H", column_id))
    if value is None:
        out.write(struct.pack("<B", _T_NULL))
    elif isinstance(value, bool):
        out.write(struct.pack("<B?", _T_BOOL, value))
    elif isinstance(value, int):
        out.write(struct.pack("<Bq", _T_INT, value))
    elif isinstance(value, float):
        out.write(struct.pack("<Bd", _T_FLOAT, value))
    elif isinstance(value, bytes):
        out.write(struct.pack("<BI", _T_BYTES, len(value)))
        out.write(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.write(struct.pack("<BI", _T_STR, len(raw)))
        out.write(raw)
    else:
        raise RecoveryError(f"cannot log value of type {type(value).__name__}")


def _decode_value(stream: io.BytesIO) -> tuple[int, Any]:
    (column_id,) = struct.unpack("<H", _read(stream, 2))
    (tag,) = struct.unpack("<B", _read(stream, 1))
    if tag == _T_NULL:
        return column_id, None
    if tag == _T_BOOL:
        return column_id, struct.unpack("<?", _read(stream, 1))[0]
    if tag == _T_INT:
        return column_id, struct.unpack("<q", _read(stream, 8))[0]
    if tag == _T_FLOAT:
        return column_id, struct.unpack("<d", _read(stream, 8))[0]
    if tag in (_T_BYTES, _T_STR):
        (length,) = struct.unpack("<I", _read(stream, 4))
        raw = _read(stream, length)
        return column_id, raw.decode("utf-8") if tag == _T_STR else raw
    raise RecoveryError(f"unknown value tag {tag}")


def encode_transaction(txn: TransactionContext) -> bytes:
    """Serialize a committed transaction's redo stream.

    Returns ``b''`` for read-only transactions — the log manager skips
    writing their commit records (Section 3.4).
    """
    if txn.commit_ts is None:
        raise RecoveryError("cannot encode an uncommitted transaction")
    if len(txn.redo_buffer) == 0:
        return b""
    out = io.BytesIO()
    out.write(_TXN_BEGIN)
    out.write(struct.pack("<QI", txn.commit_ts, len(txn.redo_buffer)))
    for record in txn.redo_buffer:
        _encode_record(out, record)
    out.write(_TXN_END)
    return out.getvalue()


def encode_prepare(txn: TransactionContext, gid: str) -> bytes:
    """Serialize a prepared transaction's redo stream under its global id.

    Returns ``b''`` for read-only participants: a transaction with no
    writes needs no durable vote (aborting it is indistinguishable from
    committing it), and its commit decision is likewise never logged.
    """
    if len(txn.redo_buffer) == 0:
        return b""
    out = io.BytesIO()
    out.write(_PRP_BEGIN)
    raw_gid = gid.encode("utf-8")
    out.write(struct.pack("<H", len(raw_gid)))
    out.write(raw_gid)
    out.write(struct.pack("<I", len(txn.redo_buffer)))
    for record in txn.redo_buffer:
        _encode_record(out, record)
    out.write(_PRP_END)
    return out.getvalue()


def encode_decision(gid: str, decision: int, commit_ts: int = 0) -> bytes:
    """Serialize a decision record for ``gid``.

    ``commit_ts`` is meaningful only for commit decisions on participant
    logs (it is the timestamp recovery replays the prepared operations
    under); coordinator-log decisions leave it zero.
    """
    if decision not in (DECISION_ABORT, DECISION_COMMIT):
        raise RecoveryError(f"invalid decision {decision!r}")
    out = io.BytesIO()
    out.write(_DEC_BEGIN)
    raw_gid = gid.encode("utf-8")
    out.write(struct.pack("<H", len(raw_gid)))
    out.write(raw_gid)
    out.write(struct.pack("<BQ", decision, commit_ts))
    out.write(_DEC_END)
    return out.getvalue()


def _encode_record(out: io.BytesIO, record: RedoRecord) -> None:
    table_raw = record.table_name.encode("utf-8")
    out.write(struct.pack("<BH", _OP_TAGS[record.op], len(table_raw)))
    out.write(table_raw)
    out.write(struct.pack("<Q", record.slot.pack()))
    values = list(record.after.items()) if record.after is not None else []
    out.write(struct.pack("<H", len(values)))
    for column_id, value in values:
        _encode_value(out, column_id, value)


def _decode_operation(stream: io.BytesIO) -> LoggedOperation:
    tag, table_len = struct.unpack("<BH", _read(stream, 3))
    if tag not in _OP_NAMES:
        raise RecoveryError(f"unknown operation tag {tag}")
    table_name = _read(stream, table_len).decode("utf-8")
    (packed_slot,) = struct.unpack("<Q", _read(stream, 8))
    (value_count,) = struct.unpack("<H", _read(stream, 2))
    values = dict(_decode_value(stream) for _ in range(value_count))
    return LoggedOperation(
        _OP_NAMES[tag], table_name, TupleSlot.unpack(packed_slot), values
    )


def _decode_gid(stream: io.BytesIO) -> str:
    (gid_len,) = struct.unpack("<H", _read(stream, 2))
    return _read(stream, gid_len).decode("utf-8")


def decode_entries(
    raw: bytes, tolerate_torn_tail: bool = False
) -> list[LoggedTransaction | LoggedPrepare | LoggedDecision]:
    """Parse every physical record in ``raw``, in log order.

    With ``tolerate_torn_tail=True``, a truncated *final* record — what a
    crash mid-flush leaves behind — is silently dropped: its bytes never
    fully reached the device, so whatever it recorded never happened.
    Damage anywhere before the tail is still an error.
    """
    stream = io.BytesIO(raw)
    entries: list[LoggedTransaction | LoggedPrepare | LoggedDecision] = []
    while True:
        marker = stream.read(4)
        if not marker:
            return entries
        try:
            entry: LoggedTransaction | LoggedPrepare | LoggedDecision
            if marker == _TXN_BEGIN:
                commit_ts, op_count = struct.unpack("<QI", _read(stream, 12))
                txn = LoggedTransaction(commit_ts)
                for _ in range(op_count):
                    txn.operations.append(_decode_operation(stream))
                if _read(stream, 4) != _TXN_END:
                    raise RecoveryError("missing transaction end marker")
                entry = txn
            elif marker == _PRP_BEGIN:
                gid = _decode_gid(stream)
                (op_count,) = struct.unpack("<I", _read(stream, 4))
                prepare = LoggedPrepare(gid)
                for _ in range(op_count):
                    prepare.operations.append(_decode_operation(stream))
                if _read(stream, 4) != _PRP_END:
                    raise RecoveryError("missing prepare end marker")
                entry = prepare
            elif marker == _DEC_BEGIN:
                gid = _decode_gid(stream)
                decision, commit_ts = struct.unpack("<BQ", _read(stream, 9))
                if decision not in (DECISION_ABORT, DECISION_COMMIT):
                    raise RecoveryError(f"unknown decision value {decision}")
                if _read(stream, 4) != _DEC_END:
                    raise RecoveryError("missing decision end marker")
                entry = LoggedDecision(gid, decision, commit_ts)
            else:
                raise RecoveryError(f"bad record marker {marker!r}")
        except RecoveryError:
            if tolerate_torn_tail and stream.read(1) == b"":
                # The failure consumed the rest of the stream: a torn tail.
                return entries
            raise
        entries.append(entry)


def decode_with_indoubt(
    raw: bytes, tolerate_torn_tail: bool = False
) -> tuple[list[LoggedTransaction], list[LoggedPrepare]]:
    """Resolve a participant log into committed and in-doubt transactions.

    A prepare followed by a commit decision becomes a committed
    transaction, positioned at the decision (not the prepare) so replay
    order matches commit order.  A prepare followed by an abort decision
    vanishes.  A prepare with no decision at all is *in doubt*; the
    caller consults the coordinator log (presumed abort) to resolve it.

    An abort decision with no matching prepare is ignored — it is what a
    lazily-logged abort looks like when the prepare itself was resolved
    by an earlier recovery.  A *commit* decision with no matching prepare
    is corruption: commit decisions only exist after the prepare was
    forced durable.
    """
    pending: dict[str, LoggedPrepare] = {}
    committed: list[LoggedTransaction] = []
    for entry in decode_entries(raw, tolerate_torn_tail):
        if isinstance(entry, LoggedTransaction):
            committed.append(entry)
        elif isinstance(entry, LoggedPrepare):
            pending[entry.gid] = entry
        else:
            prepare = pending.pop(entry.gid, None)
            if entry.is_commit:
                if prepare is None:
                    raise RecoveryError(
                        f"commit decision for unknown gid {entry.gid!r}"
                    )
                committed.append(
                    LoggedTransaction(entry.commit_ts, prepare.operations)
                )
    return committed, list(pending.values())


def decode_stream(
    raw: bytes, tolerate_torn_tail: bool = False
) -> list[LoggedTransaction]:
    """Parse a log into its committed transactions, in commit order.

    Prepared-but-undecided transactions are dropped (presumed abort);
    use :func:`decode_with_indoubt` when the caller can resolve them
    against a coordinator log.
    """
    committed, _ = decode_with_indoubt(raw, tolerate_torn_tail)
    return committed


def redo_from_row(op: str, table_name: str, slot: TupleSlot, row: ProjectedRow | None) -> RedoRecord:
    """Convenience constructor used by the engine's write paths."""
    return RedoRecord(table_name, slot, op, row)


def _read(stream: io.BytesIO, n: int) -> bytes:
    raw = stream.read(n)
    if len(raw) != n:
        raise RecoveryError("truncated log stream")
    return raw
